//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! `Criterion::benchmark_group`/`bench_function`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with single-shot wall-clock timing printed
//! to stderr. Statistical sampling, plots, and baselines are out of
//! scope; the goal is that `cargo bench` runs and reports something
//! useful, offline.

use std::fmt::Display;
use std::time::Instant;

/// Bench registry handle (stateless in this stub).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Ignored in this stub (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain name within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: Display>(function: &str, p: P) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

/// Passed to the benchmark closure; routine registration point.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Times one invocation of `routine` (single-shot in this stub).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns = start.elapsed().as_nanos();
        drop(out);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher { elapsed_ns: 0 };
    f(&mut b);
    eprintln!("bench {name}: {} ns (single shot)", b.elapsed_ns);
}

/// Declares a bench entry point over a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` executes harness-less bench binaries
            // with `--test`; skip the workload there.
            if std::env::args().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}
