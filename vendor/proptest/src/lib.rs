//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `collection::vec`, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros. Cases are sampled from a generator seeded
//! deterministically from the test name, so runs are reproducible;
//! failing cases are reported by panic (no shrinking).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds a generator seeded from `name` (typically the test's name),
    /// so every run of a given test sees the same case sequence.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample_value(rng)).sample_value(rng)
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // A wide but finite spread; real proptest biases toward special
        // values, which no caller in this workspace relies on.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy {}..{}", self.start, self.end);
                (self.start as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                assert!(span > 0, "empty range strategy");
                (*self.start() as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($t:ident . $n:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification: fixed or ranged.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.min..self.size.max_exclusive).sample_value(rng);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// The commonly imported surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body (panics on failure; no
/// shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let __strategies = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) = $crate::Strategy::sample_value(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}
