//! Offline stand-in for `serde_json`: renders the serde stub's `Value`
//! tree as JSON text. Only serialization is supported.

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error. The stub serializer is total, so this is only ever
/// constructed for non-finite floats encountered where JSON has no
/// representation — mirroring `serde_json`'s behavior of rejecting nothing
/// and emitting `null` instead keeps callers simple, so in practice this
/// error is never produced; it exists for API compatibility.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_str(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            });
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        newline(out, indent, depth + 1);
        write_item(out, i);
    }
    newline(out, indent, depth);
    out.push(close);
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing `.0` so floats round-trip as floats.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
