//! Offline stand-in for `serde_json`: renders the serde stub's `Value`
//! tree as JSON text, and parses JSON text back into a `Value` tree
//! ([`from_str`]) for consumers like the bench harness's checkpoint
//! journal. There is no typed `Deserialize` path — callers walk the
//! parsed `Value` with its accessor methods.

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error. The stub serializer is total, so this is only ever
/// constructed for non-finite floats encountered where JSON has no
/// representation — mirroring `serde_json`'s behavior of rejecting nothing
/// and emitting `null` instead keeps callers simple, so in practice this
/// error is never produced; it exists for API compatibility.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_str(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            });
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        newline(out, indent, depth + 1);
        write_item(out, i);
    }
    newline(out, indent, depth);
    out.push(close);
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing `.0` so floats round-trip as floats.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

/// Parses one JSON document into a [`Value`] tree.
///
/// Numbers keep the `Value` variant their lexical form implies: a token
/// with a fraction or exponent becomes `Float` (via Rust's shortest
/// round-trip `f64` parser, so text this crate rendered parses back to
/// the bit-identical `f64`), a bare `-`-prefixed integer becomes `Int`,
/// and any other integer becomes `UInt`; integers too large for 64 bits
/// fall back to `Float`.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON document",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, what: &str) -> Error {
        Error(format!("{what} at byte {}", self.pos))
    }

    fn expect(&mut self, token: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{token}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect("null").map(|()| Value::Null),
            Some(b't') => self.expect("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.pos += 1; // consume `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.pos += 1; // consume `{`
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.pos += 1; // consume opening `"`
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: a second \uXXXX must follow
                                self.expect("\\u")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid; find the next char boundary)
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            return text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"));
        }
        if text.starts_with('-') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        // integer too wide for 64 bits: degrade to float like serde_json's
        // arbitrary-precision-off mode
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
