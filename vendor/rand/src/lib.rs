//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Backed by xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically strong enough for the workspace's synthetic
//! dataset generators and property tests. Only the API surface the
//! workspace uses is provided: `StdRng`/`SmallRng`, [`SeedableRng`],
//! [`Rng::gen`], `distributions::{Distribution, Standard, Uniform}`, and
//! `seq::SliceRandom::shuffle`.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferred type from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Samples a value in `[low, high)` (convenience mirror of
    /// `Uniform::new(low, high).sample(rng)`).
    fn gen_range<T>(&mut self, range: std::ops::Range<T>) -> T
    where
        T: distributions::SampleUniform,
        Self: Sized,
    {
        use distributions::Distribution as _;
        distributions::Uniform::new(range.start, range.end).sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The xoshiro256++ generator state.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn from_seed_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// The default deterministic generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256PlusPlus);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256PlusPlus::from_seed_u64(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small-footprint generator; identical to [`StdRng`] in this stub.
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256PlusPlus::from_seed_u64(state))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Distributions over value types.
pub mod distributions {
    use super::RngCore;

    /// Types that can sample a `T` from an [`RngCore`].
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution per type: uniform unit interval for
    /// floats, full range for integers, fair coin for bools.
    #[derive(Debug, Clone, Copy)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    /// Marker + constructor support for [`Uniform`].
    pub trait SampleUniform: Copy {
        /// Samples uniformly from `[low, high)` (`inclusive` widens the
        /// upper bound to `high` itself).
        fn sample_range<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let span = (high as i128 - low as i128) + i128::from(inclusive);
                    assert!(span > 0, "Uniform::new called with empty range");
                    let v = (rng.next_u64() as u128 % span as u128) as i128;
                    (low as i128 + v) as $t
                }
            }
        )*};
    }
    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_range<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            _inclusive: bool,
            rng: &mut R,
        ) -> Self {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            low + (high - low) * unit
        }
    }

    impl SampleUniform for f32 {
        fn sample_range<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            _inclusive: bool,
            rng: &mut R,
        ) -> Self {
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            low + (high - low) * unit
        }
    }

    /// Uniform distribution over a range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<X: SampleUniform> {
        low: X,
        high: X,
        inclusive: bool,
    }

    impl<X: SampleUniform> Uniform<X> {
        /// Uniform over `[low, high)`.
        pub fn new(low: X, high: X) -> Self {
            Uniform {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: X, high: X) -> Self {
            Uniform {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<X: SampleUniform> Distribution<X> for Uniform<X> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
            X::sample_range(self.low, self.high, self.inclusive, rng)
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
