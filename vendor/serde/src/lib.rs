//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal, API-compatible subset of serde: a
//! [`Serialize`] trait that lowers values into a JSON-like [`Value`] tree
//! (consumed by the sibling `serde_json` stub), a no-op [`Deserialize`]
//! marker, and re-exported derive macros. The derive macros are hand-written
//! in `serde_derive` without `syn`/`quote`.
//!
//! Only the surface this workspace actually uses is provided.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like tree — the target of [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Map(Vec<(String, Value)>),
}

/// Types that can be lowered into a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Marker trait mirroring serde's `Deserialize`; this stub never
/// deserializes, so the trait carries no methods.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_int!(i8, i16, i32, i64, isize);
impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl<'de> Deserialize<'de> for f32 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}
impl<'de> Deserialize<'de> for std::path::PathBuf {}

impl Serialize for std::path::Path {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {}
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
