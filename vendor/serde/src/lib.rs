//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal, API-compatible subset of serde: a
//! [`Serialize`] trait that lowers values into a JSON-like [`Value`] tree
//! (consumed by the sibling `serde_json` stub), a no-op [`Deserialize`]
//! marker, and re-exported derive macros. The derive macros are hand-written
//! in `serde_derive` without `syn`/`quote`.
//!
//! Only the surface this workspace actually uses is provided.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like tree — the target of [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key`, if `self` is a map containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `f64` (floats, plus lossless integer widening).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a sequence slice.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The value's map entries, in insertion order.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Types that can be lowered into a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for Value {}

/// Marker trait mirroring serde's `Deserialize`; this stub never
/// deserializes, so the trait carries no methods.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_int!(i8, i16, i32, i64, isize);
impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl<'de> Deserialize<'de> for f32 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}
impl<'de> Deserialize<'de> for std::path::PathBuf {}

impl Serialize for std::path::Path {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {}
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
