//! Hand-written `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde stand-in.
//!
//! The container environment cannot reach a registry, so `syn`/`quote` are
//! unavailable; this macro parses the item's `TokenStream` directly. It
//! supports the shapes this workspace derives on: named-field structs,
//! tuple structs, unit structs, and enums whose variants are unit,
//! tuple, or struct-like. Generic types are intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Parsed shape of the item the derive is attached to.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` by lowering the value into a `serde::Value`
/// tree (externally-tagged encoding for enums, like real serde's default).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("serde::Value::Map(vec![");
            for f in fields {
                let _ = write!(
                    s,
                    "({f:?}.to_string(), serde::Serialize::to_value(&self.{f})),"
                );
            }
            s.push_str("])");
            s
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let mut s = String::from("serde::Value::Seq(vec![");
            for i in 0..*n {
                let _ = write!(s, "serde::Serialize::to_value(&self.{i}),");
            }
            s.push_str("])");
            s
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let name = &item.name;
            let mut s = String::from("match self {");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = write!(s, "{name}::{vn} => serde::Value::Str({vn:?}.to_string()),");
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let mut t = String::from("serde::Value::Seq(vec![");
                            for b in &binds {
                                let _ = write!(t, "serde::Serialize::to_value({b}),");
                            }
                            t.push_str("])");
                            t
                        };
                        let _ = write!(
                            s,
                            "{name}::{vn}({bl}) => serde::Value::Map(vec![({vn:?}.to_string(), {inner})]),",
                            bl = binds.join(", ")
                        );
                    }
                    VariantFields::Named(fields) => {
                        let mut inner = String::from("serde::Value::Map(vec![");
                        for f in fields {
                            let _ = write!(
                                inner,
                                "({f:?}.to_string(), serde::Serialize::to_value({f})),"
                            );
                        }
                        inner.push_str("])");
                        let _ = write!(
                            s,
                            "{name}::{vn} {{ {bl} }} => serde::Value::Map(vec![({vn:?}.to_string(), {inner})]),",
                            bl = fields.join(", ")
                        );
                    }
                }
            }
            s.push('}');
            s
        }
    };
    let out = format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        {body}\n    }}\n}}\n",
        name = item.name
    );
    out.parse()
        .expect("derive(Serialize): generated impl parses")
}

/// Derives the no-op `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl<'de> serde::Deserialize<'de> for {} {{}}", item.name)
        .parse()
        .expect("derive(Deserialize): generated impl parses")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stand-in: generic types are not supported (derived on `{name}`)");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: enum `{name}` has no body: {other:?}"),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

/// Advances `i` past any leading `#[...]` attributes and a `pub` /
/// `pub(...)` visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => break,
        }
    }
}

/// Splits a field/variant list on top-level commas. Groups (`(..)`,
/// `{..}`, `[..]`) arrive as single tokens, but `<`/`>` in generic types
/// are plain puncts, so angle-bracket depth must be tracked explicitly.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|field| {
            let mut i = 0;
            skip_attrs_and_vis(&field, &mut i);
            match &field[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde derive: expected field name, got {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|var| {
            let mut i = 0;
            skip_attrs_and_vis(&var, &mut i);
            let name = match &var[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde derive: expected variant name, got {other}"),
            };
            i += 1;
            let fields = match var.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantFields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantFields::Tuple(count_tuple_fields(g.stream()))
                }
                None => VariantFields::Unit,
                Some(other) => {
                    panic!("serde derive: unsupported variant syntax after `{name}`: {other}")
                }
            };
            Variant { name, fields }
        })
        .collect()
}
