//! Offline stand-in for the `crossbeam` crate: `crossbeam::thread::scope`
//! implemented over `std::thread::scope` (Rust ≥ 1.63).
//!
//! Only the scoped-thread API the workspace uses is provided. Semantics
//! differ from real crossbeam in one way: a panicking spawned thread
//! propagates its panic out of `scope` (std behavior) instead of being
//! returned as an `Err`, which is strictly stricter — callers `.expect()`
//! the result anyway.

/// Scoped threads.
pub mod thread {
    /// A scope handle; spawned closures receive a reference to it,
    /// mirroring crossbeam's `Scope` (the argument is conventionally
    /// ignored as `|_|` in this workspace).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The join handle is intentionally not
        /// returned: the scope joins all threads on exit, and this
        /// workspace never joins individually.
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope));
        }
    }

    /// Runs `f` with a scope in which threads borrowing from the
    /// environment can be spawned; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
