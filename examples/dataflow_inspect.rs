//! Dataflow inspector: print, for every benchmark application, what the
//! frontend's analysis and compiler produced — fusion groups, the OEI
//! subgraph (or why there is none), semiring opcodes, and the compiled
//! E-Wise core instruction stream.
//!
//! ```text
//! cargo run --release --example dataflow_inspect
//! ```

use sparsepipe::apps::registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for app in registry::all() {
        let program = app.compile()?;
        let profile = &program.profile;
        println!("=== {} ({:?}, {}) ===", app.name, app.domain, app.semiring);
        println!(
            "  graph: {} ops, {} tensors, {} loop-carried edges",
            app.graph.n_ops(),
            app.graph.n_tensors(),
            app.graph.carries().len()
        );
        match &program.analysis.oei {
            Some(oei) => println!(
                "  OEI: OS op {:?} → {} e-wise op(s) → IS op {:?} ({})",
                oei.os_op,
                oei.path.len(),
                oei.is_op,
                if oei.cross_iteration {
                    "across iterations"
                } else {
                    "within one iteration"
                }
            ),
            None => println!("  OEI: none (producer-consumer reuse only)"),
        }
        println!(
            "  profile: {} matrix pass(es)/iter, feature dim {}, {} e-wise instr/element",
            profile.matrix_passes,
            profile.feature_dim,
            program.ewise_arithmetic_per_element()
        );
        println!(
            "  vector passes/iter: {:.0} fused vs {:.0} unfused",
            profile.fused_vector_reads + profile.fused_vector_writes,
            profile.unfused_vector_reads + profile.unfused_vector_writes
        );
        for (gi, (ewise, iface)) in program.ewise_programs.iter().enumerate() {
            println!(
                "  e-wise group {gi}: {} inputs, {} outputs, {} accumulators, {} params",
                ewise.n_inputs(),
                ewise.n_outputs(),
                ewise.n_accumulators(),
                ewise.n_params()
            );
            for instr in ewise.instrs() {
                println!("    {instr:?}");
            }
            let _ = iface;
        }
        println!();
    }
    Ok(())
}
