//! Design-space exploration: how buffer capacity, sub-tensor width, eager
//! CSR loading, and the eviction policy shape Sparsepipe's performance on
//! a hostile (scattered, anti-diagonal-heavy) matrix — the `bu`-style
//! worst case where 90% of the non-zeros are live at the peak OEI step.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use sparsepipe::core::{EvictionPolicy, Preprocessing, ReorderKind};
use sparsepipe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // bu-like structure: mostly anti-diagonal mass (worst-case reuse
    // distance) with some scatter.
    let matrix = sparsepipe::tensor::gen::locality_mix(
        60_000,
        1_200_000,
        sparsepipe::tensor::gen::LocalityMix {
            long_frac: 0.15,
            anti_frac: 0.80,
            local_span_frac: 0.02,
            skew: 0.0,
        },
        11,
    );
    let live = sparsepipe::tensor::livesweep::sweep(&matrix);
    println!(
        "matrix: n={}, nnz={}, peak live set {:.0}% of nnz ({:.1} MB)\n",
        matrix.nrows(),
        matrix.nnz(),
        live.max_percent(),
        live.max_live as f64 * 10.5 / 1e6
    );
    let app = sparsepipe::apps::sssp::app(16);
    let program = app.compile()?;
    let base = SparsepipeConfig::iso_gpu().with_preprocessing(Preprocessing {
        blocked: true,
        reorder: ReorderKind::None,
    });

    println!("--- buffer capacity sweep (eviction ping-pong sets in when the live set spills) ---");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "buffer", "runtime", "evictions", "refetch MB", "bw util"
    );
    for mb in [1, 2, 4, 8, 16, 32] {
        let cfg = base.with_buffer(mb << 20);
        let r = SimRequest::new(&program, &matrix)
            .iterations(16)
            .config(cfg)
            .run()?
            .report;
        println!(
            "{:>7} MB {:>9.3} ms {:>12} {:>14.2} {:>11.1}%",
            mb,
            r.runtime_s * 1e3,
            r.evicted_elements,
            r.traffic.refetch_bytes / 1e6,
            r.avg_bw_utilization * 100.0
        );
    }

    println!("\n--- sub-tensor width sweep (T) ---");
    println!("{:>8} {:>12} {:>10}", "T cols", "runtime", "steps");
    for t in [4usize, 16, 64, 256, 1024] {
        let cfg = SparsepipeConfig {
            subtensor_cols: t,
            ..base.with_buffer(8 << 20)
        };
        let r = SimRequest::new(&program, &matrix)
            .iterations(16)
            .config(cfg)
            .run()?
            .report;
        println!(
            "{:>8} {:>9.3} ms {:>10}",
            t,
            r.runtime_s * 1e3,
            matrix.ncols().div_ceil(t as u32)
        );
    }

    // The policy comparison needs real buffer pressure (2 MB « the live
    // set) and a skewed matrix so some steps have bandwidth slack for the
    // eager CSR loader to reclaim.
    println!("\n--- eager CSR loading and eviction policy (2 MB buffer, skewed matrix) ---");
    let skewed = sparsepipe::tensor::gen::power_law(60_000, 1_200_000, 1.6, 0.5, 13);
    for (name, eager, policy) in [
        (
            "eager + highest-row-first",
            true,
            EvictionPolicy::HighestRowFirst,
        ),
        (
            "no eager CSR loading",
            false,
            EvictionPolicy::HighestRowFirst,
        ),
        ("eager + oldest-first", true, EvictionPolicy::OldestFirst),
    ] {
        let cfg = SparsepipeConfig {
            eviction: policy,
            ..base.with_buffer(2 << 20).with_eager_csr(eager)
        };
        let r = SimRequest::new(&program, &skewed)
            .iterations(16)
            .config(cfg)
            .run()?
            .report;
        println!(
            "{:<28} {:>9.3} ms  (refetch {:>7.2} MB, eager {:>7.2} MB)",
            name,
            r.runtime_s * 1e3,
            r.traffic.refetch_bytes / 1e6,
            r.traffic.csr_eager_bytes / 1e6
        );
    }
    Ok(())
}
