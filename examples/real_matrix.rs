//! Run the full stack on a *real* MatrixMarket file — the bundled
//! `data/sample.mtx` (a 500-vertex graph). The same path serves actual
//! SuiteSparse downloads: point `mm::read` (or the experiments CLI's
//! `--mtx` flag) at any `.mtx` file.
//!
//! ```text
//! cargo run --release --example real_matrix [path/to/matrix.mtx]
//! ```

use std::io::BufReader;

use sparsepipe::prelude::*;
use sparsepipe::tensor::{livesweep, mm, reorder, MatrixStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "data/sample.mtx".to_string());
    let file = std::fs::File::open(&path)?;
    let matrix = mm::read(BufReader::new(file))?;
    let stats = MatrixStats::compute(&matrix);
    println!(
        "{path}: {}x{}, {} non-zeros, avg degree {:.1}, skew {:.1}",
        matrix.nrows(),
        matrix.ncols(),
        matrix.nnz(),
        stats.avg_row_nnz,
        stats.row_skew
    );

    // Table-I-style live-set analysis, before and after GraphOrder.
    let before = livesweep::sweep(&matrix);
    let perm = reorder::graph_order(&matrix.to_csr(), 64);
    let reordered = matrix.permute_symmetric(&perm);
    let after = livesweep::sweep(&reordered);
    println!(
        "OEI live set: max {:.1}% / avg {:.1}% of nnz (after GraphOrder: {:.1}% / {:.1}%)",
        before.max_percent(),
        before.avg_percent(),
        after.max_percent(),
        after.avg_percent()
    );

    // PageRank, functionally and on the simulated architecture.
    let app = sparsepipe::apps::pagerank::app(20);
    let out = sparsepipe::frontend::interp::run(&app.graph, &app.bindings(&matrix), 20)?;
    let pr = out["pr"].as_vector().expect("pr is a vector");
    let mut ranked: Vec<(usize, f64)> = pr.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite ranks"));
    println!("top-3 vertices by rank:");
    for (v, r) in ranked.iter().take(3) {
        println!("  vertex {v:>4}: {r:.4}");
    }

    let program = app.compile()?;
    let report = SimRequest::new(&program, &reordered)
        .iterations(20)
        .config(SparsepipeConfig::iso_gpu().with_buffer(256 << 10))
        .run()?
        .report;
    println!(
        "simulated on Sparsepipe: {:.1} µs, {:.2} matrix loads/iteration, {:.0}% bandwidth",
        report.runtime_s * 1e6,
        report.matrix_loads_per_iteration,
        report.avg_bw_utilization * 100.0
    );
    Ok(())
}
