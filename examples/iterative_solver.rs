//! Iterative solver study: conjugate gradient on an SPD system.
//!
//! CG is one of the two paper workloads that *cannot* use the OEI dataflow
//! (Table III): its step size `α = rᵀr / pᵀAp` is a scalar computed from
//! this iteration's `vxm` output and consumed by this iteration's vector
//! updates — a full-vector dependency on the path between consecutive
//! `vxm`s. This example shows (a) the analysis detecting that, (b) the
//! functional solve converging, and (c) the simulator falling back to
//! per-iteration matrix streaming (producer-consumer reuse only).
//!
//! ```text
//! cargo run --release --example iterative_solver
//! ```

use sparsepipe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An SPD system A·x = 1 (diagonally dominant, symmetric).
    let a = sparsepipe::apps::cg::spd_matrix(50_000, 3);
    println!("SPD system: n={}, nnz={}", a.nrows(), a.nnz());

    // (a) dataflow analysis
    let app = sparsepipe::apps::cg::app(24);
    let program = app.compile()?;
    println!(
        "OEI admitted: {}   (the dot-derived α gates the vxm-to-vxm path)",
        program.profile.has_oei
    );
    println!(
        "e-wise fusion still applies: {} fused groups, {} vector passes/iter fused vs {} unfused",
        program.ewise_programs.len(),
        program.profile.fused_vector_reads + program.profile.fused_vector_writes,
        program.profile.unfused_vector_reads + program.profile.unfused_vector_writes,
    );

    // (b) functional solve via the scalar reference
    for iters in [4, 12, 24] {
        let x = sparsepipe::apps::cg::reference(&a, iters);
        let ax = a.to_csc().vxm::<sparsepipe::semiring::MulAdd>(&x)?;
        let resid = ax.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
        println!("after {iters:>2} iterations: max residual {resid:.3e}");
    }

    // (c) simulation: the matrix streams once per iteration
    let report = SimRequest::new(&program, &a).iterations(24).run()?.report;
    println!(
        "\nsimulated 24 iterations: {:.3} ms, matrix loads/iteration = {:.2} (no cross-iteration reuse)",
        report.runtime_s * 1e3,
        report.matrix_loads_per_iteration
    );

    // contrast with an OEI app on the same matrix
    let pr = sparsepipe::apps::pagerank::app(24);
    let pr_prog = pr.compile()?;
    let pr_report = SimRequest::new(&pr_prog, &a).iterations(24).run()?.report;
    println!(
        "PageRank on the same matrix: matrix loads/iteration = {:.2} (OEI halves it)",
        pr_report.matrix_loads_per_iteration
    );
    Ok(())
}
