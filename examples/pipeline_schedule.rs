//! Visualize the OEI pipeline schedule (the paper's Fig 13) on a small
//! matrix: which sub-tensor each stage processes at each step, what the
//! loaders fetch, and how the buffer occupancy evolves — alongside the
//! *functional* sub-tensor execution proving the schedule computes the
//! same values as sequential operators.
//!
//! ```text
//! cargo run --release --example pipeline_schedule
//! ```

use sparsepipe::core::oei;
use sparsepipe::core::pipeline::{PassParams, PassRequest};
use sparsepipe::core::plan::PassPlan;
use sparsepipe::core::{Preprocessing, ReorderKind, SparsepipeConfig};
use sparsepipe::semiring::SemiringOp;
use sparsepipe::tensor::{gen, DenseVector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = gen::power_law(4096, 32_768, 1.0, 0.5, 9);
    let t_cols = 256;
    let plan = PassPlan::build(&m, t_cols);
    println!(
        "matrix n={} nnz={}, sub-tensor T={} → {} steps + 3 fill/drain\n",
        m.nrows(),
        m.nnz(),
        t_cols,
        plan.steps
    );

    // ---- Fig 13: stage occupancy per step ----
    println!("step | CSC loader | OS core   | E-Wise    | IS core   ");
    println!("-----+------------+-----------+-----------+-----------");
    let show = |i: i64| -> String {
        if i >= 0 && (i as usize) < plan.steps {
            format!("subtensor {i:<2}")
        } else {
            "idle".into()
        }
    };
    for s in 0..(plan.steps as i64 + 3).min(10) {
        println!(
            "{:>4} | {:<10} | {:<9} | {:<9} | {:<9}",
            s,
            show(s), // CSC loader fetches step s's columns one step early…
            show(s - 1),
            show(s - 2),
            show(s - 3),
        );
    }
    println!("  …  (all four stages busy on different sub-tensors in steady state)\n");

    // ---- timing: per-step demand and buffer occupancy ----
    let config = SparsepipeConfig {
        subtensor_cols: t_cols,
        ..SparsepipeConfig::iso_gpu()
            .with_buffer(256 << 10)
            .with_preprocessing(Preprocessing {
                blocked: true,
                reorder: ReorderKind::None,
            })
    };
    let params = PassParams {
        feature: 1.0,
        ewise_arith_per_elem: 3.0,
        ewise_iterations: 2.0,
        dense_flops_per_element: 0.0,
        vec_read_passes: 3.0,
        vec_write_passes: 2.0,
    };
    let result = PassRequest::new(&plan, &config).params(params).run();
    println!(
        "timing: {:.0} cycles for one pass (= two fused iterations)",
        result.cycles
    );
    println!("step | cycles | csc KB | eager KB | occupancy KB");
    for (i, s) in result.steps.iter().enumerate().step_by(plan.steps / 8) {
        println!(
            "{:>4} | {:>6.1} | {:>6.2} | {:>8.2} | {:>8.1}",
            i,
            s.cycles,
            s.csc_bytes / 1024.0,
            s.csr_bytes / 1024.0,
            s.occupancy_bytes / 1024.0
        );
    }
    println!(
        "evictions: {}, repacks: {}, peak occupancy {:.1} KB of {} KB\n",
        result.evictions,
        result.repacks,
        result.buffer_peak_bytes / 1024.0,
        config.buffer_bytes / 1024
    );

    // ---- functional: the same schedule computes the right values ----
    let (csc, csr) = (m.to_csc(), m.to_csr());
    let x = DenseVector::filled(m.nrows() as usize, 1.0 / m.nrows() as f64);
    let wide = oei::fused_pass_subtensor(
        &csc,
        &csr,
        &x,
        |_, v| v * 0.85 + 0.15,
        SemiringOp::MulAdd,
        SemiringOp::MulAdd,
        t_cols,
    )?;
    let y1 = csc.vxm::<sparsepipe::semiring::MulAdd>(&x)?;
    let x2: DenseVector = y1.iter().map(|&v| v * 0.85 + 0.15).collect();
    let y2 = csc.vxm::<sparsepipe::semiring::MulAdd>(&x2)?;
    let err = wide.y2.max_abs_diff(&y2)?;
    println!(
        "functional check: sub-tensor OEI schedule vs sequential operators: max |Δ| = {err:.2e}"
    );
    assert!(err < 1e-9);
    Ok(())
}
