//! Quickstart: express PageRank as a tensor dataflow graph, verify the
//! OEI analysis, and simulate it on the Sparsepipe architecture.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sparsepipe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic power-law graph (64k vertices, ~10 edges/vertex).
    let graph = sparsepipe::tensor::gen::power_law(65_536, 655_360, 1.2, 0.4, 42);
    println!("graph: {} vertices, {} edges", graph.nrows(), graph.nnz());

    // 2. PageRank's inner loop as a dataflow graph (the apps crate builds
    //    it; see `sparsepipe::frontend::GraphBuilder` to write your own).
    let app = sparsepipe::apps::pagerank::app(20);
    let program = app.compile()?;
    println!(
        "compiled: OS semiring = {}, OEI = {}, cross-iteration = {}, {} e-wise instr/element",
        program.os_semiring,
        program.profile.has_oei,
        program.profile.cross_iteration,
        program.ewise_arithmetic_per_element(),
    );

    // 3. Functional run through the reference interpreter.
    let bindings = app.bindings(&graph);
    let out = sparsepipe::frontend::interp::run(&app.graph, &bindings, 20)?;
    let pr = out["pr"].as_vector().expect("pr is a vector");
    let top = pr
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite ranks"))
        .expect("non-empty");
    println!("highest-rank vertex: {} (rank {:.5})", top.0, top.1);

    // 4. Performance simulation on the Sparsepipe architecture.
    let config = SparsepipeConfig::iso_gpu();
    let outcome = SimRequest::new(&program, &graph)
        .iterations(20)
        .config(config)
        .run()?;
    let report = outcome.report;
    println!("\n--- Sparsepipe (iso-GPU, 64 MB buffer) ---");
    println!("cycles:              {}", report.total_cycles);
    println!("runtime:             {:.3} ms", report.runtime_s * 1e3);
    println!(
        "matrix loads/iter:   {:.3}  (cross-iteration reuse: 1 fetch serves 2 iterations)",
        report.matrix_loads_per_iteration
    );
    println!(
        "bandwidth util:      {:.1}%",
        report.avg_bw_utilization * 100.0
    );
    println!(
        "DRAM traffic:        {:.2} MB ({:.2} MB refetched after eviction)",
        report.traffic.total_bytes() / 1e6,
        report.traffic.refetch_bytes / 1e6
    );
    println!(
        "energy:              {:.3} mJ ({:.0}% memory)",
        report.energy.total_j() * 1e3,
        100.0 * report.energy.memory_pj / report.energy.total_pj()
    );
    for note in &outcome.diagnostics {
        println!("schedule:            {note}");
    }
    println!(
        "host:                {:.1} ms wall, {} pipeline steps, {} modeled passes",
        outcome.telemetry.wall_s * 1e3,
        outcome.telemetry.sim_steps,
        outcome.telemetry.modeled_passes
    );
    Ok(())
}
