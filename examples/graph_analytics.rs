//! Graph-analytics workload study: run BFS, SSSP, PageRank, and k-core on
//! a road-network-like graph and compare Sparsepipe against the idealized
//! sparse accelerator and the CPU model — a miniature of the paper's
//! Fig 14/16 for one dataset.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use sparsepipe::baselines::cpu::CpuModel;
use sparsepipe::baselines::ideal::IdealAccelerator;
use sparsepipe::baselines::WorkloadInstance;
use sparsepipe::prelude::*;
use sparsepipe::tensor::MatrixStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A road-network-like graph: short edges, near-uniform degree — the
    // friendliest structure for OEI (tiny live windows).
    let graph = sparsepipe::tensor::gen::road(200_000, 1_200_000, 0.01, 7);
    let stats = MatrixStats::compute(&graph);
    println!(
        "road graph: n={}, nnz={}, mean span={:.0}, skew={:.1}",
        graph.nrows(),
        graph.nnz(),
        stats.mean_span,
        stats.row_skew
    );
    // OEI live-set: how much of the matrix must stay on chip?
    let live = sparsepipe::tensor::livesweep::sweep(&graph);
    println!(
        "OEI live set: max {:.1}% / avg {:.1}% of nnz\n",
        live.max_percent(),
        live.avg_percent()
    );

    let config = SparsepipeConfig::iso_gpu();
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>12} {:>10}",
        "app", "sparsepipe", "ideal-accel", "speedup-ideal", "cpu-model", "vs-cpu"
    );
    for app in [
        sparsepipe::apps::bfs::app(12),
        sparsepipe::apps::sssp::app(16),
        sparsepipe::apps::pagerank::app(20),
        sparsepipe::apps::kcore::app(16),
    ] {
        let program = app.compile()?;
        let report = SimRequest::new(&program, &graph)
            .iterations(app.default_iterations)
            .config(config)
            .run()?
            .report;
        let w = WorkloadInstance {
            profile: &program.profile,
            n: graph.nrows() as u64,
            nnz: graph.nnz() as u64,
            stats: &stats,
            iterations: app.default_iterations,
            mxm: None,
        };
        let ideal = IdealAccelerator::new(config).evaluate(&w);
        let cpu = CpuModel::default().evaluate(&w);
        println!(
            "{:<8} {:>9.3} ms {:>9.3} ms {:>13.2}x {:>9.2} ms {:>9.1}x",
            app.name,
            report.runtime_s * 1e3,
            ideal.runtime_s * 1e3,
            ideal.runtime_s / report.runtime_s,
            cpu.runtime_s * 1e3,
            cpu.runtime_s / report.runtime_s,
        );
    }
    println!(
        "\ncross-iteration reuse halves matrix traffic for every OEI app; the\n\
         ideal accelerator re-reads the matrix each iteration (its roofline)."
    );
    Ok(())
}
