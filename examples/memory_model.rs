//! Derive the achieved-bandwidth constants the baseline cost models
//! assume, from the GDDR6X memory-controller model: streams (CSC column
//! data, vector writes) ride open rows near peak; sparse gathers (SpMV's
//! `x[r]` reads, scatter updates) pay precharge/activate on nearly every
//! access.
//!
//! ```text
//! cargo run --release --example memory_model
//! ```

use sparsepipe::core::memctrl::{
    effective_utilization, scattered_accesses, stream_accesses, Access, MemControllerConfig,
};

fn main() {
    let cfg = MemControllerConfig::default();
    println!(
        "GDDR6X model: {} channels x {} banks, {} B pages, {} B bursts, {:.0} B/cycle peak\n",
        cfg.channels,
        cfg.banks_per_channel,
        cfg.row_bytes,
        cfg.burst_bytes,
        cfg.peak_bytes_per_cycle()
    );

    println!("{:<46} {:>12}", "access pattern", "utilization");
    let patterns: Vec<(&str, Vec<Access>)> = vec![
        (
            "pure stream (CSC column data, 256 B reqs)",
            stream_accesses(0, 8 << 20, 256),
        ),
        (
            "pure stream, small 32 B requests",
            stream_accesses(0, 8 << 20, 32),
        ),
        (
            "random 8 B gathers over 256 MB (x[r] reads)",
            scattered_accesses(0, 256 << 20, 100_000, 8),
        ),
        (
            "random 8 B gathers over 2 MB (cached window)",
            scattered_accesses(0, 2 << 20, 100_000, 8),
        ),
        ("SpMV mix: matrix stream + x gathers", {
            let mut v = stream_accesses(0, 6 << 20, 96);
            v.extend(scattered_accesses(1 << 30, 128 << 20, 60_000, 8));
            v
        }),
        ("scatter updates (IS partial sums, 8 B writes)", {
            scattered_accesses(0, 64 << 20, 100_000, 8)
                .into_iter()
                .map(|a| Access::write(a.addr, a.bytes))
                .collect()
        }),
    ];
    for (name, accesses) in &patterns {
        let util = effective_utilization(cfg, accesses);
        println!("{:<46} {:>11.1}%", name, util * 100.0);
    }

    println!(
        "\nThese are the numbers behind the baseline models' constants:\n\
         - GPU/CPU 'stream_utilization' ≈ the pure-stream rows,\n\
         - 'gather_utilization' ≈ the SpMV-mix row,\n\
         and behind Sparsepipe's design: the dual-storage buffer turns the\n\
         IS core's would-be scattered row accesses into on-chip reads, so\n\
         its DRAM traffic is stream-shaped on both the CSC and CSR paths."
    );
}
