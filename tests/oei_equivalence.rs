//! Cross-crate integration tests for the central correctness claim of the
//! paper (§III): the OEI dataflow's reordered, partially-computed schedule
//! produces exactly the same values as sequential operator execution —
//! for every application, every semiring, and arbitrary iteration counts.

use sparsepipe::apps::registry;
use sparsepipe::frontend::interp::{self, Bindings, Value};
use sparsepipe::semiring::SemiringOp;
use sparsepipe::tensor::{gen, DenseVector};

/// Running the interpreter for `k` iterations must equal running it one
/// iteration at a time, re-binding the loop-carried state — i.e. the loop
/// semantics are well-defined and composable for every app.
#[test]
fn iteration_composition_for_all_apps() {
    let m = gen::uniform(40, 40, 240, 77);
    for app in registry::all() {
        let bindings = app.bindings(&m);
        let all_at_once =
            interp::run(&app.graph, &bindings, 3).unwrap_or_else(|e| panic!("{}: {e}", app.name));

        // one iteration at a time, carrying state forward by re-binding
        let mut state = bindings.clone();
        for _ in 0..3 {
            let out =
                interp::run(&app.graph, &state, 1).unwrap_or_else(|e| panic!("{}: {e}", app.name));
            for (id, node) in app.graph.tensors() {
                let _ = id;
                if matches!(node.role, sparsepipe::frontend::TensorRole::Input) {
                    if let Some(v) = out.get(&node.name) {
                        state.insert(node.name.clone(), v.clone());
                    }
                }
            }
        }
        for (id, node) in app.graph.tensors() {
            let _ = id;
            if !matches!(node.role, sparsepipe::frontend::TensorRole::Input) {
                continue;
            }
            let (a, b) = (&all_at_once[&node.name], &state[&node.name]);
            assert_values_close(a, b, &format!("{}:{}", app.name, node.name));
        }
    }
}

fn assert_values_close(a: &Value, b: &Value, ctx: &str) {
    match (a, b) {
        (Value::Vector(x), Value::Vector(y)) => {
            for (p, q) in x.iter().zip(y.iter()) {
                assert!(
                    (p - q).abs() < 1e-9 || (p.is_infinite() && q.is_infinite()),
                    "{ctx}: {p} vs {q}"
                );
            }
        }
        (Value::Scalar(x), Value::Scalar(y)) => {
            assert!((x - y).abs() < 1e-9, "{ctx}: {x} vs {y}");
        }
        (Value::Dense(x), Value::Dense(y)) => {
            for (p, q) in x.as_slice().iter().zip(y.as_slice()) {
                assert!((p - q).abs() < 1e-9, "{ctx}: {p} vs {q}");
            }
        }
        // mxm-family apps carry sparse matrices across iterations
        (Value::Sparse(x), Value::Sparse(y)) => {
            let (cx, cy) = (x.to_coo(), y.to_coo());
            assert_eq!(cx.entries().len(), cy.entries().len(), "{ctx}: nnz differs");
            for (&(r1, c1, v1), &(r2, c2, v2)) in cx.entries().iter().zip(cy.entries()) {
                assert_eq!((r1, c1), (r2, c2), "{ctx}: coordinate drift");
                assert!((v1 - v2).abs() < 1e-9, "{ctx}: ({r1},{c1}): {v1} vs {v2}");
            }
        }
        _ => panic!("{ctx}: kind mismatch"),
    }
}

/// The fused OEI pass equals two sequential interpreter iterations for a
/// PageRank-shaped loop — end to end, through the public API.
#[test]
fn fused_pass_equals_two_interpreter_iterations() {
    let m = gen::power_law(96, 800, 1.0, 0.4, 5);
    let t = sparsepipe::apps::pagerank::transition_matrix(&m);
    let (csc, csr) = (t.to_csc(), t.to_csr());
    let d = sparsepipe::apps::pagerank::DAMPING;
    let x0 = DenseVector::filled(96, 1.0 / 96.0);

    let pass = sparsepipe::core::oei::fused_pass(
        &csc,
        &csr,
        &x0,
        |_, v| d * v + 0.15,
        SemiringOp::MulAdd,
        SemiringOp::MulAdd,
    )
    .expect("square matrix");
    let after_two: DenseVector = pass.y2.iter().map(|&v| d * v + 0.15).collect();

    let app = sparsepipe::apps::pagerank::app(2);
    let mut bindings = Bindings::new();
    bindings.insert("pr".into(), Value::Vector(x0));
    bindings.insert("L".into(), Value::sparse(&t));
    let out = interp::run(&app.graph, &bindings, 2).expect("bindings complete");
    let expected = out["pr"].as_vector().expect("vector");
    assert!(after_two.max_abs_diff(expected).expect("same length") < 1e-10);
}

/// OEI equivalence holds on every dataset family the harness generates.
#[test]
fn fused_pass_equivalence_across_dataset_families() {
    for (name, m) in [
        ("uniform", gen::uniform(80, 80, 600, 1)),
        ("banded", gen::banded(80, 600, 5, 2)),
        ("power_law", gen::power_law(80, 600, 1.5, 0.3, 3)),
        ("road", gen::road(80, 400, 0.02, 4)),
        ("mesh", gen::mesh2d(9, 0.1, 5)),
    ] {
        let (csc, csr) = (m.to_csc(), m.to_csr());
        let n = m.nrows() as usize;
        let x: DenseVector = (0..n).map(|i| (i % 5) as f64 * 0.3).collect();
        let out = sparsepipe::core::oei::fused_pass(
            &csc,
            &csr,
            &x,
            |_, v| v * 0.5 + 0.1,
            SemiringOp::MulAdd,
            SemiringOp::MulAdd,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let y1 = csc.vxm::<sparsepipe::semiring::MulAdd>(&x).expect("square");
        let x2: DenseVector = y1.iter().map(|&v| v * 0.5 + 0.1).collect();
        let y2 = csc
            .vxm::<sparsepipe::semiring::MulAdd>(&x2)
            .expect("square");
        for (a, b) in out.y2.iter().zip(y2.iter()) {
            assert!((a - b).abs() < 1e-9, "{name}: {a} vs {b}");
        }
    }
}
