//! End-to-end integration: every application, compiled and simulated on
//! multiple dataset families, must exhibit the paper's headline behaviors.

use sparsepipe::apps::{registry, ReusePattern};
use sparsepipe::core::{Preprocessing, ReorderKind, SimRequest, SparsepipeConfig};
use sparsepipe::tensor::gen;

fn simulate(
    program: &sparsepipe::frontend::SparsepipeProgram,
    matrix: &sparsepipe::tensor::CooMatrix,
    iterations: usize,
    config: &SparsepipeConfig,
) -> Result<sparsepipe::core::SimReport, sparsepipe::core::CoreError> {
    SimRequest::new(program, matrix)
        .iterations(iterations)
        .config(*config)
        .run()
        .map(|o| o.report)
}

fn config() -> SparsepipeConfig {
    SparsepipeConfig::iso_gpu()
        .with_buffer(4 << 20)
        .with_preprocessing(Preprocessing {
            blocked: true,
            reorder: ReorderKind::None,
        })
}

/// Matrix loads per iteration: ≈0.5 for cross-iteration OEI apps, ≈1.0
/// for producer-consumer-only apps (per matrix operator), and ≈0.5 per
/// operator for KNN's within-iteration fusion.
#[test]
fn matrix_reuse_matches_reuse_pattern() {
    let m = gen::road(60_000, 400_000, 0.01, 9);
    for app in registry::all() {
        let program = app.compile().expect("apps compile");
        let iters = app.default_iterations & !1; // even, no tail
        let report = simulate(&program, &m, iters.max(2), &config()).expect("square");
        let loads = report.matrix_loads_per_iteration;
        match app.reuse {
            ReusePattern::CrossIteration => assert!(
                (0.4..0.72).contains(&loads),
                "{}: loads/iter {loads} not ≈0.5",
                app.name
            ),
            ReusePattern::ProducerConsumer => assert!(
                (0.95..1.05).contains(&loads),
                "{}: loads/iter {loads} not ≈1.0",
                app.name
            ),
        }
    }
}

/// Every simulation produces a physically sane report.
#[test]
fn reports_are_sane_for_all_apps() {
    let m = gen::power_law(20_000, 160_000, 1.2, 0.4, 4);
    for app in registry::all() {
        let program = app.compile().expect("apps compile");
        let r = simulate(&program, &m, app.default_iterations, &config()).expect("square");
        assert!(r.total_cycles > 0, "{}", app.name);
        assert!(r.runtime_s > 0.0, "{}", app.name);
        assert!(
            r.avg_bw_utilization > 0.0 && r.avg_bw_utilization <= 1.0,
            "{}: util {}",
            app.name,
            r.avg_bw_utilization
        );
        assert!(r.traffic.total_bytes() > 0.0, "{}", app.name);
        assert!(r.energy.total_pj() > 0.0, "{}", app.name);
        assert_eq!(r.bw_trace.len(), 25, "{}", app.name);
        // traffic must at least cover one matrix image per pair of
        // iterations
        let min_bytes = m.nnz() as f64 * 10.5 * (app.default_iterations as f64 / 2.0).floor();
        assert!(
            r.traffic.total_bytes() >= min_bytes * 0.9,
            "{}: traffic {} below matrix floor {min_bytes}",
            app.name,
            r.traffic.total_bytes()
        );
    }
}

/// Doubling the memory bandwidth must not slow anything down, and must
/// speed up memory-bound apps nearly proportionally.
#[test]
fn bandwidth_scaling_is_monotone() {
    let m = gen::uniform(30_000, 30_000, 300_000, 6);
    let slow = config();
    let mut fast = slow;
    fast.memory.bandwidth_gbps *= 2.0;
    for app in [
        sparsepipe::apps::pagerank::app(10),
        sparsepipe::apps::cg::app(10),
    ] {
        let program = app.compile().expect("apps compile");
        let r_slow = simulate(&program, &m, 10, &slow).expect("square");
        let r_fast = simulate(&program, &m, 10, &fast).expect("square");
        assert!(
            r_fast.runtime_s <= r_slow.runtime_s,
            "{}: more bandwidth must not hurt",
            app.name
        );
        let speedup = r_slow.runtime_s / r_fast.runtime_s;
        assert!(
            speedup > 1.3,
            "{}: memory-bound app should gain from 2x bandwidth, got {speedup}",
            app.name
        );
    }
}

/// Larger buffers never hurt, and help exactly when the live set spills.
#[test]
fn buffer_scaling_is_monotone() {
    // scattered matrix: ~50% of nnz live at the peak step
    let m = gen::uniform(40_000, 40_000, 500_000, 8);
    let app = sparsepipe::apps::sssp::app(12);
    let program = app.compile().expect("apps compile");
    let mut prev = f64::INFINITY;
    for kb in [64, 256, 1024, 4096, 16384] {
        let r = simulate(&program, &m, 12, &config().with_buffer(kb << 10)).expect("square");
        assert!(
            r.runtime_s <= prev * 1.0001,
            "buffer {kb} KB slower than smaller buffer: {} vs {prev}",
            r.runtime_s
        );
        prev = r.runtime_s;
    }
    // tiny vs huge must differ (the small buffer thrashes)
    let tiny = simulate(&program, &m, 12, &config().with_buffer(64 << 10)).expect("square");
    let huge = simulate(&program, &m, 12, &config().with_buffer(64 << 20)).expect("square");
    assert!(tiny.runtime_s > huge.runtime_s * 1.05);
    assert!(tiny.evicted_elements > 0);
    assert_eq!(huge.evicted_elements, 0);
}

/// The blocked format strictly reduces traffic (Fig 19's +blocked bar).
#[test]
fn blocked_format_reduces_traffic() {
    let m = gen::banded(50_000, 500_000, 50, 3);
    let app = sparsepipe::apps::pagerank::app(10);
    let program = app.compile().expect("apps compile");
    let plain = simulate(
        &program,
        &m,
        10,
        &config().with_preprocessing(Preprocessing::none()),
    )
    .expect("square");
    let blocked = simulate(&program, &m, 10, &config()).expect("square");
    assert!(blocked.traffic.total_bytes() < plain.traffic.total_bytes());
    assert!(blocked.runtime_s <= plain.runtime_s);
}

/// Energy: Sparsepipe's cross-iteration reuse must save DRAM energy
/// relative to its own non-reusing traffic (compare pr against cg on the
/// same matrix, normalized per matrix pass).
#[test]
fn oei_saves_memory_energy() {
    let m = gen::road(60_000, 400_000, 0.01, 9);
    let pr = sparsepipe::apps::pagerank::app(16);
    let cg = sparsepipe::apps::cg::app(16);
    let r_pr = simulate(&pr.compile().unwrap(), &m, 16, &config()).expect("square");
    let r_cg = simulate(&cg.compile().unwrap(), &m, 16, &config()).expect("square");
    // pr touches the matrix once; cg once per iteration — pr's DRAM energy
    // per iteration must be well below cg's
    assert!(r_pr.energy.memory_pj < r_cg.energy.memory_pj);
}
