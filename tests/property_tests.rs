//! Property-based tests (proptest) over the workspace's core invariants:
//! format round-trips, semiring laws, OEI schedule equivalence, live-set
//! accounting, and e-wise VM vs. interpreter agreement.

use proptest::prelude::*;
use sparsepipe::core::oei;
use sparsepipe::frontend::{fusion, GraphBuilder};
use sparsepipe::semiring::{EwiseBinary, EwiseUnary, SemiringOp};
use sparsepipe::tensor::{livesweep, BlockedDualStorage, CooMatrix, DenseVector};
// the workspace-shared matrix/vector strategies and case-count config
use sparsepipe_testutil::{coo_matrix, vector};

proptest! {
    #![proptest_config(sparsepipe_testutil::config())]

    /// COO → CSR → COO and COO → CSC → COO are lossless.
    #[test]
    fn format_roundtrips(m in coo_matrix(64, 200)) {
        prop_assert_eq!(m.to_csr().to_coo(), m.clone());
        prop_assert_eq!(m.to_csc().to_coo(), m.clone());
        prop_assert_eq!(BlockedDualStorage::from_coo(&m).to_coo(), m);
    }

    /// The transpose of the transpose is the identity, and vxm over A
    /// equals spmv over Aᵀ.
    #[test]
    fn vxm_is_transposed_spmv(m in coo_matrix(48, 150), seed in 0u64..1000) {
        let n = m.nrows() as usize;
        let x: DenseVector = (0..n).map(|i| ((i as u64 * 31 + seed) % 7) as f64 - 3.0).collect();
        let a = m.to_csc().vxm::<sparsepipe::semiring::MulAdd>(&x).expect("square");
        let b = m.transpose().to_csr().spmv::<sparsepipe::semiring::MulAdd>(&x).expect("square");
        for (p, q) in a.iter().zip(b.iter()) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    /// Semiring laws on the runtime-dispatch table: ⊕ commutative and
    /// associative, zero is the ⊕-identity and ⊗-annihilator, one is the
    /// ⊗-identity (within each semiring's value domain).
    #[test]
    fn semiring_laws(raw in proptest::collection::vec(-8.0f64..8.0, 3)) {
        for s in SemiringOp::ALL {
            // map values into the semiring's domain
            let v: Vec<f64> = raw
                .iter()
                .map(|&x| if s == SemiringOp::AndOr { ((x > 0.0) as u8) as f64 } else { x })
                .collect();
            let (a, b, c) = (v[0], v[1], v[2]);
            prop_assert_eq!(s.add(a, b), s.add(b, a));
            let l = s.add(s.add(a, b), c);
            let r = s.add(a, s.add(b, c));
            prop_assert!((l - r).abs() < 1e-9 || (l.is_infinite() && r.is_infinite()));
            prop_assert_eq!(s.add(s.zero(), a), a);
            prop_assert_eq!(s.mul(s.one(), a), a);
            prop_assert_eq!(s.mul(s.zero(), a), s.zero());
        }
    }

    /// The OEI fused pass equals sequential execution for random
    /// matrices, random e-wise affine chains, and every semiring pair
    /// drawn from the apps' actual usage.
    #[test]
    fn oei_schedule_equivalence(
        m in coo_matrix(48, 200),
        scale in 0.1f64..2.0,
        shift in -1.0f64..1.0,
    ) {
        let n = m.nrows() as usize;
        let (csc, csr) = (m.to_csc(), m.to_csr());
        let x: DenseVector = (0..n).map(|i| (i % 5) as f64 * 0.4).collect();
        let ew = |_: usize, v: f64| v * scale + shift;
        let out = oei::fused_pass(&csc, &csr, &x, ew, SemiringOp::MulAdd, SemiringOp::MulAdd)
            .expect("square");
        let y1 = csc.vxm::<sparsepipe::semiring::MulAdd>(&x).expect("square");
        let x2: DenseVector = y1.iter().map(|&v| v * scale + shift).collect();
        let y2 = csc.vxm::<sparsepipe::semiring::MulAdd>(&x2).expect("square");
        for (a, b) in out.y2.iter().zip(y2.iter()) {
            prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    /// The mechanism-level buffered OEI pass (real dual-storage buffer,
    /// reservations, evictions, refetches) computes exactly the same
    /// values as the idealized element pass, at any capacity.
    #[test]
    fn buffered_pass_exact_at_any_capacity(
        m in coo_matrix(64, 300),
        cap_frac in 0.05f64..2.0,
    ) {
        let n = m.nrows() as usize;
        let (csc, csr) = (m.to_csc(), m.to_csr());
        let x: DenseVector = (0..n).map(|i| (i % 4) as f64 * 0.5).collect();
        let ew = |_: usize, v: f64| v * 0.8 + 0.1;
        let reference = oei::fused_pass(&csc, &csr, &x, ew, SemiringOp::MulAdd, SemiringOp::MulAdd)
            .expect("square");
        let cap = ((m.nnz().max(1) * 12) as f64 * cap_frac) as usize + 64;
        let (out, stats) = oei::fused_pass_buffered(
            &csc, &csr, &x, ew, SemiringOp::MulAdd, SemiringOp::MulAdd, cap,
        )
        .expect("square");
        for (a, b) in out.y2.iter().zip(reference.y2.iter()) {
            prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
        }
        // traffic envelope: at least one image, at most two
        let image = m.nnz() * 12;
        prop_assert!(stats.fetched_bytes == image);
        prop_assert!(stats.refetch_bytes <= image);
    }

    /// Live-set accounting: the curve's integral equals the sum of the
    /// elements' live windows, and the peak never exceeds nnz.
    #[test]
    fn live_sweep_accounting(m in coo_matrix(64, 250)) {
        let curve = livesweep::live_curve(&m);
        let stats = livesweep::sweep(&m);
        prop_assert!(stats.max_live <= m.nnz());
        let integral: usize = curve.iter().sum();
        let windows: usize = m
            .entries()
            .iter()
            .map(|&(r, c, _)| (r.max(c) - r.min(c) + 1) as usize)
            .sum();
        prop_assert_eq!(integral, windows);
    }

    /// A compiled fused e-wise chain agrees with direct evaluation for a
    /// random chain of immediate ops.
    #[test]
    fn ewise_vm_matches_direct_eval(
        ops in proptest::collection::vec((0usize..5, -2.0f64..2.0), 1..6),
        input in vector(8),
    ) {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let mut cur = v;
        for &(which, imm) in &ops {
            cur = match which {
                0 => b.ewise_scalar(EwiseBinary::Add, cur, imm).expect("vector op"),
                1 => b.ewise_scalar(EwiseBinary::Mul, cur, imm).expect("vector op"),
                2 => b.ewise_scalar(EwiseBinary::Max, cur, imm).expect("vector op"),
                3 => b.ewise_unary(EwiseUnary::Abs, cur).expect("vector op"),
                _ => b.ewise_unary(EwiseUnary::Neg, cur).expect("vector op"),
            };
        }
        b.carry(cur, v).expect("vector carry");
        let g = b.build().expect("acyclic");
        let fused = fusion::fuse(&g);
        prop_assert_eq!(fused.n_groups(), 1);
        let (prog, _) = sparsepipe::frontend::ewise_vm::compile_group(&g, &fused.groups[0])
            .expect("compilable");
        let (outs, _) = prog.run(&[input.as_slice()], input.len());

        // direct evaluation
        let mut expect: Vec<f64> = input.as_slice().to_vec();
        for &(which, imm) in &ops {
            for e in &mut expect {
                *e = match which {
                    0 => *e + imm,
                    1 => *e * imm,
                    2 => e.max(imm),
                    3 => e.abs(),
                    _ => -*e,
                };
            }
        }
        for (a, b) in outs[0].iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Symmetric permutation preserves the live-set *multiset of spans*
    /// only in special cases — but it always preserves nnz and degree
    /// multisets, and the simulator must accept any permuted input.
    #[test]
    fn permutation_preserves_structure(m in coo_matrix(32, 120), seed in 0u64..100) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = m.nrows();
        let mut perm: Vec<u32> = (0..n).collect();
        perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let p = m.permute_symmetric(&perm);
        prop_assert_eq!(p.nnz(), m.nnz());
        let degs = |mat: &CooMatrix| {
            let csr = mat.to_csr();
            let mut d: Vec<usize> = (0..csr.nrows()).map(|r| csr.row_nnz(r)).collect();
            d.sort_unstable();
            d
        };
        prop_assert_eq!(degs(&p), degs(&m));
    }

    /// MatrixMarket write → read round-trips arbitrary matrices.
    #[test]
    fn matrixmarket_roundtrip(m in coo_matrix(40, 120)) {
        let mut buf = Vec::new();
        sparsepipe::tensor::mm::write(&m, &mut buf).expect("write to vec");
        let back = sparsepipe::tensor::mm::read(buf.as_slice()).expect("read back");
        prop_assert_eq!(back.nrows(), m.nrows());
        prop_assert_eq!(back.nnz(), m.nnz());
        for (a, b) in back.entries().iter().zip(m.entries()) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1, b.1);
            prop_assert!((a.2 - b.2).abs() < 1e-12);
        }
    }
}
