//! Property-based invariants of the performance simulator itself: work
//! conservation, traffic bounds, and configuration monotonicity over
//! randomized matrices and configurations.

use proptest::prelude::*;
use sparsepipe::core::{
    pipeline::{PassParams, PassRequest, PassResult},
    plan::PassPlan,
    Preprocessing, ReorderKind, SparsepipeConfig,
};
use sparsepipe::tensor::CooMatrix;

fn run_pass(plan: &PassPlan, config: &SparsepipeConfig, params: &PassParams) -> PassResult {
    PassRequest::new(plan, config).params(*params).run()
}

fn coo_matrix(max_n: u32, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    (8..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 0.5f64..2.0), 1..max_nnz).prop_map(move |entries| {
            CooMatrix::from_entries(n, n, entries).expect("coords in range")
        })
    })
}

fn params() -> PassParams {
    PassParams {
        feature: 1.0,
        ewise_arith_per_elem: 2.0,
        ewise_iterations: 2.0,
        dense_flops_per_element: 0.0,
        vec_read_passes: 3.0,
        vec_write_passes: 2.0,
    }
}

fn cfg(buffer: usize, t: usize) -> SparsepipeConfig {
    SparsepipeConfig {
        subtensor_cols: t,
        ..SparsepipeConfig::iso_gpu()
            .with_buffer(buffer)
            .with_preprocessing(Preprocessing {
                blocked: false,
                reorder: ReorderKind::None,
            })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Work conservation: regardless of buffer size, sub-tensor width, or
    /// structure, every element is processed exactly once by the OS core
    /// and once by the IS core per pass.
    #[test]
    fn work_conservation(m in coo_matrix(96, 400), t in 1usize..16, buf_kb in 1usize..64) {
        let plan = PassPlan::build(&m, t);
        let r = run_pass(&plan, &cfg(buf_kb << 10, t), &params());
        prop_assert_eq!(r.os_ops, m.nnz() as f64 * 2.0);
        prop_assert_eq!(r.is_ops, m.nnz() as f64 * 2.0);
    }

    /// Traffic bounds: matrix traffic is at least one image (every element
    /// fetched once) and at most two (each element evicted/refetched at
    /// most once per consumer pair).
    #[test]
    fn traffic_bounds(m in coo_matrix(96, 400), t in 1usize..16, buf_kb in 1usize..64) {
        let config = cfg(buf_kb << 10, t);
        let plan = PassPlan::build(&m, t);
        let r = run_pass(&plan, &config, &params());
        let fetch = config.fetch_bytes_per_element();
        let matrix_bytes =
            r.traffic.csc_bytes + r.traffic.csr_eager_bytes + r.traffic.refetch_bytes;
        let image = m.nnz() as f64 * fetch;
        prop_assert!(matrix_bytes >= image - 1e-6, "{} < {}", matrix_bytes, image);
        prop_assert!(matrix_bytes <= 2.0 * image + 1e-6, "{} > 2x{}", matrix_bytes, image);
    }

    /// With an ample buffer there are no evictions and no refetches.
    #[test]
    fn ample_buffer_never_evicts(m in coo_matrix(96, 400), t in 1usize..16) {
        let plan = PassPlan::build(&m, t);
        let r = run_pass(&plan, &cfg(64 << 20, t), &params());
        prop_assert_eq!(r.evictions, 0);
        prop_assert_eq!(r.traffic.refetch_bytes, 0.0);
    }

    /// Buffer occupancy never exceeds the configured capacity by more than
    /// one step's worth of loads (capacity is enforced at step end).
    #[test]
    fn occupancy_respects_capacity(m in coo_matrix(96, 300), buf_kb in 2usize..32) {
        let t = 4;
        let config = cfg(buf_kb << 10, t);
        let plan = PassPlan::build(&m, t);
        let r = run_pass(&plan, &config, &params());
        for (i, s) in r.steps.iter().enumerate() {
            prop_assert!(
                s.occupancy_bytes <= config.buffer_bytes as f64 + 1e-6,
                "step {}: occupancy {} exceeds capacity {}",
                i, s.occupancy_bytes, config.buffer_bytes
            );
        }
    }

    /// Cycle accounting: total cycles at least cover both the memory
    /// roofline and the bottleneck-stage compute.
    #[test]
    fn cycles_cover_roofline(m in coo_matrix(96, 400), t in 1usize..16) {
        let config = cfg(64 << 20, t);
        let plan = PassPlan::build(&m, t);
        let r = run_pass(&plan, &config, &params());
        let bpc = config.memory.bytes_per_cycle(config.clock_ghz);
        let mem_cycles = r.traffic.total_bytes() / bpc;
        prop_assert!(r.cycles + 1e-6 >= mem_cycles, "{} < {}", r.cycles, mem_cycles);
        let pes = config.pes_per_core as f64;
        prop_assert!(r.cycles >= r.os_ops / (2.0 * pes));
        prop_assert!(r.cycles >= r.ew_ops / pes);
    }
}
