//! Differential suite for the SpGEMM (`mxm`) subsystem: the simulator's
//! Gustavson stage, the scalar interpreter, and the tensor-level
//! `spgemm` kernel must agree **bitwise** — over the shared pattern
//! corpus, a proptest corpus, and all four `mxm`-family applications at
//! scale 256 — and every traced `mxm` run must pass the exact
//! [`TraceAudit`] replay against its reported traffic.

use std::sync::Arc;

use proptest::prelude::*;
use sparsepipe::apps::registry;
use sparsepipe::core::spgemm::{MxmParams, MxmRequest};
use sparsepipe::core::{MatrixArena, SimRequest, SparsepipeConfig};
use sparsepipe::frontend::interp::{self, Bindings, Value};
use sparsepipe::frontend::{GraphBuilder, OpKind, TensorRole};
use sparsepipe::semiring::SemiringOp;
use sparsepipe::tensor::spgemm::spgemm;
use sparsepipe::tensor::{CooMatrix, CsrMatrix, MatrixId};
use sparsepipe::trace::{MemorySink, TraceAudit};
use sparsepipe_testutil::corpus;

fn assert_bitwise_eq(a: &CsrMatrix, b: &CsrMatrix, ctx: &str) {
    let (ca, cb) = (a.to_coo(), b.to_coo());
    assert_eq!(ca.entries().len(), cb.entries().len(), "{ctx}: nnz differs");
    for (&(r1, c1, v1), &(r2, c2, v2)) in ca.entries().iter().zip(cb.entries()) {
        assert_eq!((r1, c1), (r2, c2), "{ctx}: coordinate drift");
        assert_eq!(
            v1.to_bits(),
            v2.to_bits(),
            "{ctx}: value at ({r1},{c1}): {v1} vs {v2}"
        );
    }
}

/// The simulator stage's functional result for `M ⊕.⊗ M` at `t_rows`.
fn stage_square(m: &CooMatrix, semiring: SemiringOp, t_rows: usize) -> CsrMatrix {
    let arena = MatrixArena::from_coo(m);
    let config = SparsepipeConfig::iso_gpu();
    MxmRequest::new(&arena, semiring, &config)
        .params(MxmParams {
            t_rows,
            ..MxmParams::default()
        })
        .run()
        .result
}

/// The scalar interpreter's result for a one-op `mxm(A, A)` graph.
fn interp_square(m: &CooMatrix, semiring: SemiringOp) -> CsrMatrix {
    let mut b = GraphBuilder::new();
    let a = b.constant_matrix("A");
    let sq = b.mxm(a, a, semiring).unwrap();
    let graph = b.build().unwrap();
    let name = graph.tensor(sq).name.clone();
    let mut bindings = Bindings::new();
    bindings.insert("A".to_string(), Value::Sparse(Arc::new(m.to_csc())));
    let out = interp::run(&graph, &bindings, 1).unwrap();
    match &out[&name] {
        Value::Sparse(c) => c.to_csr(),
        other => panic!("mxm produced a non-sparse value: {other:?}"),
    }
}

/// Stage vs interpreter vs tensor kernel, bitwise, across the shared
/// corpus (including the SpGEMM pattern trio) and both app semirings,
/// at degenerate, odd, and full subtensor heights.
#[test]
fn simulator_interp_and_kernel_agree_across_corpus() {
    let mut checked = 0usize;
    let mut saw_rect = false;
    for (name, m) in corpus::edge_case_suite(48) {
        if m.nrows() != m.ncols() {
            // The rectangular zero_rows_rect entry: a self-product A·A
            // needs ncols == nrows, so both the kernel and the scalar
            // interpreter must reject it with a dimension error instead
            // of producing anything.
            saw_rect = true;
            let err = spgemm(&m.to_csr(), &m.to_csr(), SemiringOp::MulAdd)
                .expect_err("rectangular self-product must be rejected");
            assert!(
                matches!(
                    err,
                    sparsepipe::tensor::TensorError::DimensionMismatch { .. }
                ),
                "{name}: unexpected rejection: {err}"
            );
            let mut b = GraphBuilder::new();
            let a = b.constant_matrix("A");
            b.mxm(a, a, SemiringOp::MulAdd).unwrap();
            let graph = b.build().unwrap();
            let mut bindings = Bindings::new();
            bindings.insert("A".to_string(), Value::Sparse(Arc::new(m.to_csc())));
            assert!(
                interp::run(&graph, &bindings, 1).is_err(),
                "{name}: interpreter accepted a rectangular self-product"
            );
            continue;
        }
        for semiring in [SemiringOp::MulAdd, SemiringOp::AndOr] {
            let oracle = spgemm(&m.to_csr(), &m.to_csr(), semiring).unwrap();
            let ctx = format!("{name}/{semiring:?}");
            assert_bitwise_eq(&interp_square(&m, semiring), &oracle, &ctx);
            for t_rows in [1usize, 7, 48] {
                assert_bitwise_eq(
                    &stage_square(&m, semiring, t_rows),
                    &oracle,
                    &format!("{ctx}/t={t_rows}"),
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 60, "corpus shrank: only {checked} stage runs");
    assert!(saw_rect, "edge_case_suite lost its rectangular entry");
}

/// Larger instances of the SpGEMM-targeted builders, where accumulator
/// collisions and hub-row expansion actually bite.
#[test]
fn spgemm_pattern_builders_agree_at_larger_sizes() {
    let matrices = [
        ("triangle_heavy", corpus::triangle_heavy(96, 300, 21)),
        ("power_law_rows", corpus::power_law_rows(96, 900, 1.8, 22)),
        ("boolean_adjacency", corpus::boolean_adjacency(96, 600, 23)),
    ];
    for (name, m) in &matrices {
        for semiring in [SemiringOp::MulAdd, SemiringOp::AndOr] {
            let oracle = spgemm(&m.to_csr(), &m.to_csr(), semiring).unwrap();
            let ctx = format!("{name}/{semiring:?}");
            assert_bitwise_eq(&interp_square(m, semiring), &oracle, &ctx);
            assert_bitwise_eq(&stage_square(m, semiring, 13), &oracle, &ctx);
        }
    }
}

proptest! {
    #![proptest_config(sparsepipe_testutil::config())]

    /// Random-matrix differential: the stage result is bitwise-equal to
    /// the kernel for arbitrary structure, values, and step heights, and
    /// the reported statistics hold their invariants.
    #[test]
    fn stage_matches_kernel_on_random_matrices(
        m in sparsepipe_testutil::coo_matrix(40, 220),
        t_rows in 1usize..24,
    ) {
        let oracle = spgemm(&m.to_csr(), &m.to_csr(), SemiringOp::MulAdd).unwrap();
        let arena = MatrixArena::from_coo(&m);
        let config = SparsepipeConfig::iso_gpu();
        let outcome = MxmRequest::new(&arena, SemiringOp::MulAdd, &config)
            .params(MxmParams { t_rows, ..MxmParams::default() })
            .run();
        let (ca, cb) = (outcome.result.to_coo(), oracle.to_coo());
        prop_assert_eq!(ca.entries().len(), cb.entries().len());
        for (&(r1, c1, v1), &(r2, c2, v2)) in ca.entries().iter().zip(cb.entries()) {
            prop_assert_eq!((r1, c1), (r2, c2));
            prop_assert_eq!(v1.to_bits(), v2.to_bits());
        }
        let stats = outcome.stats;
        prop_assert_eq!(stats.out_nnz, oracle.nnz() as u64);
        prop_assert!(stats.intermediate_nnz >= stats.out_nnz);
        prop_assert!(u64::from(stats.peak_accumulator_cols) <= stats.intermediate_nnz);
    }
}

/// Every `Mxm` op a graph contains, with its semiring.
fn mxm_semirings(graph: &sparsepipe::frontend::DataflowGraph) -> Vec<SemiringOp> {
    graph
        .ops()
        .filter_map(|(_, op)| match op.kind {
            OpKind::Mxm { semiring } => Some(semiring),
            _ => None,
        })
        .collect()
}

/// The four `mxm`-family apps at scale 256: the simulator's stage result
/// on the app's dataset is bitwise-equal to the kernel for every `mxm`
/// semiring the graph uses, the full interpreter run is deterministic to
/// the bit, and the simulator's reported SpGEMM statistics match an
/// independent kernel recomputation.
#[test]
fn mxm_apps_differential_at_scale_256() {
    let family = registry::mxm_family();
    assert_eq!(family.len(), 4, "mxm family should be the four new apps");
    let dataset = sparsepipe::bench::datasets::DatasetSpec::new(MatrixId::Ca, 256)
        .load()
        .unwrap();
    for app in &family {
        let semirings = mxm_semirings(&app.graph);
        assert!(!semirings.is_empty(), "{} has no mxm op", app.name);
        for semiring in semirings {
            let oracle = spgemm(
                &dataset.reordered.to_csr(),
                &dataset.reordered.to_csr(),
                semiring,
            )
            .unwrap();
            assert_bitwise_eq(
                &stage_square(&dataset.reordered, semiring, 17),
                &oracle,
                &format!("{}/{semiring:?}", app.name),
            );
        }

        // The scalar interpreter accepts the app at this scale and is
        // bitwise-deterministic across runs.
        let iterations = app.default_iterations.min(3);
        let bindings = app.bindings(&dataset.reordered);
        let a = interp::run(&app.graph, &bindings, iterations)
            .unwrap_or_else(|e| panic!("{} interp failed: {e}", app.name));
        let b = interp::run(&app.graph, &bindings, iterations).unwrap();
        for (_, node) in app.graph.tensors() {
            if matches!(node.role, TensorRole::Input) {
                assert_values_bitwise(&a[&node.name], &b[&node.name], app.name);
            }
        }

        // The simulator's schedule-level statistics are the kernel's.
        let program = app.compile().unwrap();
        let outcome = SimRequest::new(&program, &dataset.reordered)
            .iterations(app.default_iterations)
            .config(sparsepipe::bench::sweep::sparsepipe_config(&dataset))
            .run()
            .unwrap();
        let stats = outcome
            .mxm
            .unwrap_or_else(|| panic!("{} reported no SpGEMM stats", app.name));
        let kernel = spgemm(
            &dataset.reordered.to_csr(),
            &dataset.reordered.to_csr(),
            program.os_semiring,
        )
        .unwrap();
        assert_eq!(
            stats.out_nnz,
            kernel.nnz() as u64,
            "{}: stats.out_nnz is not the kernel's nnz",
            app.name
        );
    }
}

fn assert_values_bitwise(a: &Value, b: &Value, ctx: &str) {
    match (a, b) {
        (Value::Vector(x), Value::Vector(y)) => {
            assert_eq!(x.len(), y.len(), "{ctx}: vector length");
            for (p, q) in x.iter().zip(y.iter()) {
                assert_eq!(p.to_bits(), q.to_bits(), "{ctx}: {p} vs {q}");
            }
        }
        (Value::Sparse(x), Value::Sparse(y)) => {
            let (cx, cy) = (x.to_coo(), y.to_coo());
            assert_eq!(cx.entries().len(), cy.entries().len(), "{ctx}: nnz");
            for (&(r1, c1, v1), &(r2, c2, v2)) in cx.entries().iter().zip(cy.entries()) {
                assert_eq!((r1, c1), (r2, c2), "{ctx}");
                assert_eq!(v1.to_bits(), v2.to_bits(), "{ctx} at ({r1},{c1})");
            }
        }
        (Value::Scalar(x), Value::Scalar(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}");
        }
        (Value::Dense(x), Value::Dense(y)) => {
            for (p, q) in x.as_slice().iter().zip(y.as_slice()) {
                assert_eq!(p.to_bits(), q.to_bits(), "{ctx}");
            }
        }
        _ => panic!("{ctx}: mismatched value kinds"),
    }
}

/// Exact-audit integration over `mxm` passes: for each family app at
/// scale 256, a traced simulation's event stream replays to *exactly*
/// the traffic the report claims (f64-bitwise, the same check a traced
/// `EvalRequest` performs), and tracing does not perturb the schedule.
#[test]
fn traced_mxm_apps_audit_exactly_at_scale_256() {
    let dataset = sparsepipe::bench::datasets::DatasetSpec::new(MatrixId::Ca, 256)
        .load()
        .unwrap();
    let cfg = sparsepipe::bench::sweep::sparsepipe_config(&dataset);
    for app in registry::mxm_family() {
        let program = app.compile().unwrap();
        let untraced = SimRequest::new(&program, &dataset.reordered)
            .iterations(app.default_iterations)
            .config(cfg)
            .run()
            .unwrap();
        let mut sink = MemorySink::new();
        let traced = SimRequest::new(&program, &dataset.reordered)
            .iterations(app.default_iterations)
            .config(cfg)
            .trace(&mut sink)
            .run()
            .unwrap();
        assert_eq!(
            traced.report, untraced.report,
            "{}: tracing perturbed the schedule",
            app.name
        );
        assert!(!sink.events().is_empty(), "{}: empty trace", app.name);
        TraceAudit::replay(sink.events())
            .check(&traced.report.traffic.audit_totals())
            .unwrap_or_else(|e| panic!("{}: audit mismatch: {e}", app.name));
    }
}
