//! Shared test utilities for the Sparsepipe workspace.
//!
//! Every crate's property suites previously carried their own copies of
//! the same COO-matrix strategy and hard-coded proptest case counts.
//! This crate centralizes them:
//!
//! * [`config`] / [`config_with`] — the workspace-wide proptest
//!   configuration, overridable via the `PROPTEST_CASES` environment
//!   variable (CI bumps it without touching source);
//! * [`coo_matrix`] / [`coo_matrix_positive`] / [`vector`] — the shared
//!   proptest strategies for random square sparse matrices and dense
//!   vectors;
//! * [`corpus`] — seeded, deterministic matrix builders (banded,
//!   power-law, uniform, block-diagonal, empty-row/col edge cases) and
//!   an [`edge_case_suite`](corpus::edge_case_suite) bundling the
//!   structures that historically break buffer models;
//! * [`benchjson`] — a tiny flat-JSON recorder for `BENCH_*.json`
//!   telemetry files (the vendored `serde_json` stand-in cannot parse,
//!   so merging is done with a purpose-built top-level scanner).

#![forbid(unsafe_code)]

use proptest::prelude::*;
use sparsepipe_tensor::{CooMatrix, DenseVector};

/// The workspace-wide default number of proptest cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// The proptest configuration shared by every suite: [`DEFAULT_CASES`]
/// cases, overridable by setting the `PROPTEST_CASES` environment
/// variable to a positive integer.
pub fn config() -> ProptestConfig {
    config_with(DEFAULT_CASES)
}

/// Like [`config`], but with a per-suite default other than
/// [`DEFAULT_CASES`] (e.g. the differential harness defaults to 256).
/// `PROPTEST_CASES` still overrides the default when set.
pub fn config_with(default_cases: u32) -> ProptestConfig {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(default_cases);
    ProptestConfig::with_cases(cases)
}

/// SplitMix64: a tiny, dependency-free deterministic generator shared by
/// the seeded builders ([`corpus`], [`einsum`]) that are not backed by
/// proptest strategies.
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub(crate) fn below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        (self.next() % u64::from(bound)) as u32
    }

    pub(crate) fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn coo_matrix_with_values(
    max_n: u32,
    max_nnz: usize,
    values: std::ops::Range<f64>,
) -> impl Strategy<Value = CooMatrix> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, values.clone()), 0..max_nnz).prop_map(
            move |entries| CooMatrix::from_entries(n, n, entries).expect("coords in range"),
        )
    })
}

/// Strategy: a random square COO matrix with up to `max_nnz` raw entries
/// (duplicates merge by addition), dimension in `2..max_n`, and values in
/// `-4.0..4.0`.
pub fn coo_matrix(max_n: u32, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    coo_matrix_with_values(max_n, max_nnz, -4.0..4.0)
}

/// Like [`coo_matrix`], but with strictly positive values in `0.1..4.0`
/// so that duplicate entries can never cancel to zero.
pub fn coo_matrix_positive(max_n: u32, max_nnz: usize) -> impl Strategy<Value = CooMatrix> {
    coo_matrix_with_values(max_n, max_nnz, 0.1..4.0)
}

/// Strategy: a dense vector of length `n` with values in `-4.0..4.0`.
pub fn vector(n: usize) -> impl Strategy<Value = DenseVector> {
    proptest::collection::vec(-4.0f64..4.0, n).prop_map(DenseVector::from)
}

pub mod corpus {
    //! Seeded, deterministic sparse-matrix builders shared by tests and
    //! benches. The `banded`/`power_law`/`uniform`/`locality_mix`
    //! wrappers delegate to [`sparsepipe_tensor::gen`] so existing seeds
    //! keep producing bit-identical matrices; `block_diagonal` and
    //! `with_empty_rows_and_cols` cover structures the generators lack.

    use sparsepipe_tensor::{gen, CooMatrix};

    use crate::SplitMix64;

    /// A banded matrix: see [`gen::banded`].
    pub fn banded(n: u32, nnz: usize, bandwidth: u32, seed: u64) -> CooMatrix {
        gen::banded(n, nnz, bandwidth, seed)
    }

    /// A power-law (scale-free) matrix: see [`gen::power_law`].
    pub fn power_law(n: u32, nnz: usize, skew: f64, locality: f64, seed: u64) -> CooMatrix {
        gen::power_law(n, nnz, skew, locality, seed)
    }

    /// A uniformly random square matrix: see [`gen::uniform`].
    pub fn uniform(n: u32, nnz: usize, seed: u64) -> CooMatrix {
        gen::uniform(n, n, nnz, seed)
    }

    /// A locality-mix matrix: see [`gen::locality_mix`].
    pub fn locality_mix(n: u32, nnz: usize, mix: gen::LocalityMix, seed: u64) -> CooMatrix {
        gen::locality_mix(n, nnz, mix, seed)
    }

    /// A block-diagonal matrix: `n.div_ceil(block)` square blocks of
    /// side `block` along the diagonal, populated with up to `nnz`
    /// entries (duplicates merge). Exercises perfectly clustered reuse —
    /// the best case for the dual buffer's CSR window.
    pub fn block_diagonal(n: u32, block: u32, nnz: usize, seed: u64) -> CooMatrix {
        assert!(n > 0 && block > 0, "block_diagonal needs n > 0, block > 0");
        let mut rng = SplitMix64::new(seed ^ 0xb10c_d1a6_0000_0000);
        let nblocks = n.div_ceil(block);
        let mut entries = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let base = rng.below(nblocks) * block;
            let extent = block.min(n - base);
            let r = base + rng.below(extent);
            let c = base + rng.below(extent);
            entries.push((r, c, 0.1 + 3.9 * rng.unit_f64()));
        }
        CooMatrix::from_entries(n, n, entries).expect("coords in range")
    }

    /// A uniformly random matrix in which every index `i` with
    /// `i % 4 == 3` has a completely empty row *and* column. Exercises
    /// the empty-slice paths of CSR/CSC iteration and buffer residency.
    pub fn with_empty_rows_and_cols(n: u32, nnz: usize, seed: u64) -> CooMatrix {
        assert!(n > 0, "with_empty_rows_and_cols needs n > 0");
        let live: Vec<u32> = (0..n).filter(|i| i % 4 != 3).collect();
        assert!(!live.is_empty(), "no live indices at n = {n}");
        let mut rng = SplitMix64::new(seed ^ 0x0e3b_2070_0000_0000);
        let pick = |rng: &mut SplitMix64| live[rng.below(live.len() as u32) as usize];
        let mut entries = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let r = pick(&mut rng);
            let c = pick(&mut rng);
            entries.push((r, c, 0.1 + 3.9 * rng.unit_f64()));
        }
        CooMatrix::from_entries(n, n, entries).expect("coords in range")
    }

    /// A triangle-heavy symmetric boolean adjacency matrix: `n / 3`
    /// seeded 3-cliques (each contributing all six directed edges) plus
    /// `extra` random symmetric off-diagonal edges, every value exactly
    /// `1.0`. The clique structure guarantees a dense triangle
    /// population for `tri`'s `A ⊙ (A·A)` count and gives Gustavson
    /// accumulators real collision pressure (clique rows repeatedly
    /// merge the same columns).
    pub fn triangle_heavy(n: u32, extra: usize, seed: u64) -> CooMatrix {
        assert!(n >= 3, "triangle_heavy needs n >= 3");
        let mut rng = SplitMix64::new(seed ^ 0x7214_a61e_0000_0000);
        let mut entries = Vec::new();
        let edge = |a: u32, b: u32, entries: &mut Vec<(u32, u32, f64)>| {
            if a != b {
                entries.push((a, b, 1.0));
                entries.push((b, a, 1.0));
            }
        };
        for _ in 0..n / 3 {
            let a = rng.below(n);
            let b = rng.below(n);
            let c = rng.below(n);
            edge(a, b, &mut entries);
            edge(b, c, &mut entries);
            edge(a, c, &mut entries);
        }
        for _ in 0..extra {
            let a = rng.below(n);
            let b = rng.below(n);
            edge(a, b, &mut entries);
        }
        // duplicate edges collapse to boolean 1.0 rather than summing
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        entries.dedup_by_key(|&mut (r, c, _)| (r, c));
        CooMatrix::from_entries(n, n, entries).expect("coords in range")
    }

    /// A square matrix whose *row* lengths follow a Zipf-like power law
    /// (columns uniform): a handful of hub rows hold most of the
    /// non-zeros. As the stationary (B-side) operand of an SpGEMM this
    /// is the worst case for per-row expansion — any A-column hitting a
    /// hub row fans out across its whole length — so it stresses the
    /// accumulator-occupancy model and the analyzer's expansion bounds.
    pub fn power_law_rows(n: u32, nnz: usize, skew: f64, seed: u64) -> CooMatrix {
        assert!(n > 0, "power_law_rows needs n > 0");
        assert!(skew > 0.0, "power_law_rows needs skew > 0");
        let mut rng = SplitMix64::new(seed ^ 0x12a9_0e77_0000_0000);
        let mut entries = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            // u^(1+skew) concentrates mass near row 0: the larger the
            // skew, the heavier the hub rows.
            let u = rng.unit_f64();
            let r = ((f64::from(n) * u.powf(1.0 + skew)) as u32).min(n - 1);
            let c = rng.below(n);
            entries.push((r, c, 0.1 + 3.9 * rng.unit_f64()));
        }
        CooMatrix::from_entries(n, n, entries).expect("coords in range")
    }

    /// A uniformly random square *boolean* adjacency matrix: `nnz`
    /// off-diagonal entries, every value exactly `1.0` (duplicates
    /// collapse, not sum). This is the shape the mxm app family's
    /// `AndOr`/counting semirings consume, and — unlike the float
    /// builders — products of its entries are exactly representable, so
    /// differential suites can demand bitwise equality without
    /// tolerance.
    pub fn boolean_adjacency(n: u32, nnz: usize, seed: u64) -> CooMatrix {
        assert!(n >= 2, "boolean_adjacency needs n >= 2");
        let mut rng = SplitMix64::new(seed ^ 0xb001_ea4d_0000_0000);
        let mut entries = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let r = rng.below(n);
            let c = rng.below(n);
            if r != c {
                entries.push((r, c, 1.0));
            }
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        entries.dedup_by_key(|&mut (r, c, _)| (r, c));
        CooMatrix::from_entries(n, n, entries).expect("coords in range")
    }

    /// A **rectangular** `nrows × ncols` matrix in which every odd row is
    /// completely empty: the non-zeros land only on even rows, columns
    /// uniform. Square-only code paths (the OEI dual-buffer pass, SpGEMM
    /// self-products, `MatrixArena`) must *reject* this shape rather than
    /// mis-index it, and rectangular-capable paths must cope with the
    /// empty row slices.
    pub fn zero_rows_rect(nrows: u32, ncols: u32, nnz: usize, seed: u64) -> CooMatrix {
        assert!(
            nrows >= 2 && ncols > 0,
            "zero_rows_rect needs nrows >= 2, ncols > 0"
        );
        let mut rng = SplitMix64::new(seed ^ 0x2e40_0b0c_0000_0000);
        let even_rows = nrows.div_ceil(2);
        let mut entries = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            let r = rng.below(even_rows) * 2;
            let c = rng.below(ncols);
            entries.push((r, c, 0.1 + 3.9 * rng.unit_f64()));
        }
        CooMatrix::from_entries(nrows, ncols, entries).expect("coords in range")
    }

    /// The named edge-case structures that historically break sparse
    /// buffer models, square of dimension `scale`: empty matrix,
    /// pure diagonal, pure anti-diagonal (worst-case reuse distance), a
    /// dense first row + column (hub), plus seeded banded / power-law /
    /// block-diagonal / empty-row-col instances and the SpGEMM pattern
    /// trio (triangle-heavy, power-law rows, boolean adjacency) — plus
    /// one deliberately **rectangular** `scale × scale/2` entry
    /// (`zero_rows_rect`) whose odd rows are all zero, so square-only
    /// consumers must prove they reject it instead of silently
    /// mis-indexing.
    pub fn edge_case_suite(scale: u32) -> Vec<(&'static str, CooMatrix)> {
        assert!(scale >= 4, "edge_case_suite needs scale >= 4");
        let n = scale;
        let nnz = (n as usize) * 4;
        let diag: Vec<(u32, u32, f64)> = (0..n).map(|i| (i, i, 1.0 + f64::from(i))).collect();
        let anti: Vec<(u32, u32, f64)> =
            (0..n).map(|i| (i, n - 1 - i, 0.5 + f64::from(i))).collect();
        let mut hub: Vec<(u32, u32, f64)> = Vec::new();
        for i in 0..n {
            hub.push((0, i, 1.0 + f64::from(i)));
            hub.push((i, 0, 2.0 + f64::from(i)));
        }
        vec![
            (
                "empty",
                CooMatrix::from_entries(n, n, Vec::new()).expect("empty"),
            ),
            (
                "diagonal",
                CooMatrix::from_entries(n, n, diag).expect("in range"),
            ),
            (
                "anti_diagonal",
                CooMatrix::from_entries(n, n, anti).expect("in range"),
            ),
            (
                "hub_row_col",
                CooMatrix::from_entries(n, n, hub).expect("in range"),
            ),
            ("banded", banded(n, nnz, n / 8 + 1, 1)),
            ("power_law", power_law(n, nnz + nnz / 2, 1.2, 0.4, 2)),
            ("block_diagonal", block_diagonal(n, n / 4 + 1, nnz, 3)),
            ("empty_rows_cols", with_empty_rows_and_cols(n, nnz, 4)),
            ("triangle_heavy", triangle_heavy(n, nnz / 2, 5)),
            ("power_law_rows", power_law_rows(n, nnz, 1.5, 6)),
            ("boolean_adjacency", boolean_adjacency(n, nnz, 7)),
            ("zero_rows_rect", zero_rows_rect(n, n / 2, nnz / 2, 8)),
        ]
    }
}

pub mod einsum {
    //! Seeded sparse-einsum expression string generators for the
    //! front-door conformance suites.
    //!
    //! [`well_formed`] emits expressions the parser must accept;
    //! [`hostile`] corrupts a well-formed expression so parsing *may*
    //! fail but must never panic and must keep every error span inside
    //! the source; [`huge`] builds megabyte-scale inputs for the same
    //! no-panic obligation. Generation is pure string assembly — this
    //! crate deliberately does not depend on the frontend, so the
    //! generators and the parser under test cannot share bugs.

    use crate::SplitMix64;

    const TENSORS: &[&str] = &["acc", "vin", "vout", "tmp", "mval", "wgt", "stat", "gate"];
    const INDICES: &[&str] = &["i", "j", "k", "l", "p", "q"];
    const SEMIRINGS: &[&str] = &["+.*=", "|.&=", "min.+=", "aril.+="];
    const INFIX: &[&str] = &["+", "-", "*", "/", "&", "|", "<", ">", "=="];
    const CALLS1: &[&str] = &["relu", "abs", "sqrt", "neg", "square", "not"];
    const REDUCES: &[&str] = &["sum", "any", "all", "min", "max"];
    const CALLS2: &[&str] = &["absdiff", "min", "max", "select", "dot"];

    fn pick<'a>(rng: &mut SplitMix64, pool: &[&'a str]) -> &'a str {
        pool[rng.below(pool.len() as u32) as usize]
    }

    /// A deterministic well-formed expression: one semiring contraction
    /// followed by a short e-wise chain, with randomized names,
    /// operators, literals, and `@` settings.
    #[must_use]
    pub fn well_formed(seed: u64) -> String {
        let mut rng = SplitMix64::new(seed ^ 0xe145_0000_5eed_0000);
        let i = pick(&mut rng, INDICES);
        let mut j = pick(&mut rng, INDICES);
        while j == i {
            j = pick(&mut rng, INDICES);
        }
        let x = pick(&mut rng, TENSORS);
        let mut out = format!(
            "y0[{j}] {} {x}[{i}] * mat0[{i},{j}]",
            pick(&mut rng, SEMIRINGS)
        );
        let chain = rng.below(4);
        for s in 0..chain {
            let prev = format!("y{s}");
            let next = format!("y{}", s + 1);
            let lit = f64::from(rng.below(64)) / 8.0;
            match rng.below(4) {
                0 => {
                    let op = pick(&mut rng, INFIX);
                    out.push_str(&format!("; {next}[{j}] = {prev}[{j}] {op} {lit}"));
                }
                1 => {
                    let f = pick(&mut rng, CALLS1);
                    out.push_str(&format!("; {next}[{j}] = {f}({prev}[{j}])"));
                }
                2 => {
                    let f = pick(&mut rng, CALLS2);
                    out.push_str(&format!("; {next}[{j}] = {f}({prev}[{j}], {prev}[{j}])"));
                }
                _ => {
                    let f = pick(&mut rng, REDUCES);
                    out.push_str(&format!("; r{s} = {f}({prev}[{j}])"));
                }
            }
        }
        let mut settings = Vec::new();
        if rng.below(2) == 1 {
            settings.push(format!("iter={}", rng.below(12) + 1));
        }
        if rng.below(3) == 0 {
            settings.push(format!("name=gen{}", rng.below(1000)));
        }
        if !settings.is_empty() {
            out.push_str(" @ ");
            out.push_str(&settings.join(" "));
        }
        out
    }

    /// Corrupts [`well_formed`]`(seed)` with one random mutation
    /// (unbalanced bracket, unknown semiring, unicode index, garbage
    /// byte, truncation, bad setting). The result is usually — but not
    /// guaranteed to be — invalid; callers assert parse never panics and
    /// any reported span stays inside the string.
    #[must_use]
    pub fn hostile(seed: u64) -> String {
        let mut rng = SplitMix64::new(seed ^ 0x0051_11e0_0000_0000);
        let mut src = well_formed(rng.next());
        // A char-boundary-safe position (ASCII source, so any byte).
        let pos = |rng: &mut SplitMix64, s: &str| rng.below(s.len() as u32 + 1) as usize;
        match rng.below(8) {
            0 => {
                if let Some(p) = src.find(']') {
                    src.remove(p);
                }
            }
            1 => src = src.replacen(".*=", ".?=", 1).replacen(".&=", ".?=", 1),
            2 => {
                let p = pos(&mut rng, &src);
                src.insert_str(p, "αβ");
            }
            3 => {
                let p = pos(&mut rng, &src);
                src.insert(p, ['$', '\\', '^', '~', '`'][rng.below(5) as usize]);
            }
            4 => src.truncate(pos(&mut rng, &src)),
            5 => src.push_str(" @ iter=0"),
            6 => {
                let p = pos(&mut rng, &src);
                src.insert(p, '[');
            }
            _ => src.push_str(" @ iter=3 iter=4"),
        }
        src
    }

    /// A hostile expression of at least `target_len` bytes: a plausible
    /// prefix followed by an unbounded repetition, for the megabyte-scale
    /// no-panic/no-recursion obligation.
    #[must_use]
    pub fn huge(target_len: usize, seed: u64) -> String {
        let mut rng = SplitMix64::new(seed ^ 0x4b16_0000_0000_0000);
        let unit = match rng.below(3) {
            0 => "[",
            1 => "y[i] = x[i] + ",
            _ => "aaaaaaaaaaaaaaaa",
        };
        let mut out = well_formed(rng.next());
        out.push_str("; z[i] = ");
        while out.len() < target_len {
            out.push_str(unit);
        }
        out
    }
}

pub mod benchjson {
    //! Flat-JSON telemetry recording for `BENCH_*.json` files.
    //!
    //! The vendored `serde_json` stand-in serializes but cannot parse,
    //! so merging a new key into an existing telemetry file is done with
    //! a purpose-built scanner over the top-level object: each call to
    //! [`record`] upserts one `"key": value` pair and rewrites the file
    //! with stable two-space indentation.

    use std::io;
    use std::path::Path;

    /// Upserts `"key": value_json` into the flat JSON object stored at
    /// `path` (creating the file if missing) and rewrites it. `value_json`
    /// must already be valid JSON text (number, string, object, …); it is
    /// stored verbatim. Returns `InvalidData` if the existing file is not
    /// a JSON object.
    pub fn record(path: &Path, key: &str, value_json: &str) -> io::Result<()> {
        let existing = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut pairs = parse_flat(&existing).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a flat JSON object", path.display()),
            )
        })?;
        match pairs.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value_json.to_string(),
            None => pairs.push((key.to_string(), value_json.to_string())),
        }
        std::fs::write(path, render(&pairs))
    }

    /// Splits the top-level object in `src` into `(key, raw value text)`
    /// pairs. Returns `None` if `src` is not a JSON object (an empty or
    /// whitespace-only file counts as the empty object).
    fn parse_flat(src: &str) -> Option<Vec<(String, String)>> {
        let s = src.trim();
        if s.is_empty() {
            return Some(Vec::new());
        }
        if !s.starts_with('{') || !s.ends_with('}') {
            return None;
        }
        let inner = &s[1..s.len() - 1];
        let b = inner.as_bytes();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < b.len() {
            while i < b.len() && (b[i].is_ascii_whitespace() || b[i] == b',') {
                i += 1;
            }
            if i >= b.len() {
                break;
            }
            let (key, after_key) = scan_string(inner, i)?;
            i = after_key;
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= b.len() || b[i] != b':' {
                return None;
            }
            i += 1;
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            let start = i;
            let mut depth = 0u32;
            while i < b.len() {
                match b[i] {
                    b'"' => {
                        let (_, after) = scan_string(inner, i)?;
                        i = after;
                        continue;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => depth = depth.checked_sub(1)?,
                    b',' if depth == 0 => break,
                    _ => {}
                }
                i += 1;
            }
            if i == start {
                return None;
            }
            pairs.push((key, inner[start..i].trim_end().to_string()));
        }
        Some(pairs)
    }

    /// Scans the JSON string literal starting at byte offset `at` (the
    /// opening quote); returns its unescaped-enough content (escape
    /// sequences are kept verbatim) and the offset just past the closing
    /// quote.
    fn scan_string(s: &str, at: usize) -> Option<(String, usize)> {
        let b = s.as_bytes();
        if b.get(at) != Some(&b'"') {
            return None;
        }
        let mut i = at + 1;
        while i < b.len() {
            match b[i] {
                b'\\' => i += 2,
                b'"' => return Some((s[at + 1..i].to_string(), i + 1)),
                _ => i += 1,
            }
        }
        None
    }

    fn render(pairs: &[(String, String)]) -> String {
        if pairs.is_empty() {
            return "{}\n".to_string();
        }
        let mut out = String::from("{\n");
        for (idx, (k, v)) in pairs.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(k);
            out.push_str("\": ");
            out.push_str(v);
            if idx + 1 < pairs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }

    #[cfg(test)]
    mod tests {
        use super::{parse_flat, render};

        #[test]
        fn empty_and_missing_files_are_the_empty_object() {
            assert_eq!(parse_flat("").unwrap(), Vec::new());
            assert_eq!(parse_flat("  \n").unwrap(), Vec::new());
            assert_eq!(render(&[]), "{}\n");
        }

        #[test]
        fn nested_values_survive_a_round_trip() {
            let src =
                "{\n  \"a\": 1,\n  \"b\": {\"x\": [1, 2], \"y\": \"s,}\"},\n  \"c\": -0.5\n}\n";
            let pairs = parse_flat(src).unwrap();
            assert_eq!(pairs.len(), 3);
            assert_eq!(pairs[0], ("a".to_string(), "1".to_string()));
            assert_eq!(pairs[1].1, "{\"x\": [1, 2], \"y\": \"s,}\"}");
            assert_eq!(parse_flat(&render(&pairs)).unwrap(), pairs);
        }

        #[test]
        fn non_objects_are_rejected() {
            assert!(parse_flat("[1, 2]").is_none());
            assert!(parse_flat("{\"a\" 1}").is_none());
        }

        #[test]
        fn record_upserts_in_place() {
            let dir = std::env::temp_dir().join("sparsepipe-testutil-benchjson");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("bench.json");
            let _ = std::fs::remove_file(&path);
            super::record(&path, "alpha", "1").unwrap();
            super::record(&path, "beta", "{\"w\": 2.5}").unwrap();
            super::record(&path, "alpha", "3").unwrap();
            let back = std::fs::read_to_string(&path).unwrap();
            assert_eq!(back, "{\n  \"alpha\": 3,\n  \"beta\": {\"w\": 2.5}\n}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = proptest::TestRng::deterministic("testutil::strategies_respect_bounds");
        for _ in 0..32 {
            let m = coo_matrix(24, 60).sample_value(&mut rng);
            assert!(m.nrows() >= 2 && m.nrows() < 24);
            assert_eq!(m.nrows(), m.ncols());
            for &(r, c, v) in m.entries() {
                assert!(r < m.nrows() && c < m.ncols());
                assert!(v.abs() < 60.0 * 4.0);
            }
            let p = coo_matrix_positive(24, 60).sample_value(&mut rng);
            for &(_, _, v) in p.entries() {
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn einsum_generators_are_deterministic_and_ascii_where_promised() {
        for seed in 0..64 {
            let w = einsum::well_formed(seed);
            assert_eq!(w, einsum::well_formed(seed));
            assert!(w.is_ascii(), "well-formed must stay ASCII: {w}");
            assert!(w.contains('='), "no assignment in {w}");
            let h = einsum::hostile(seed);
            assert_eq!(h, einsum::hostile(seed));
        }
        let big = einsum::huge(1 << 20, 3);
        assert!(big.len() >= 1 << 20);
        assert_eq!(big, einsum::huge(1 << 20, 3));
    }

    #[test]
    fn corpus_builders_are_deterministic_and_in_bounds() {
        let a = corpus::block_diagonal(64, 16, 200, 9);
        let b = corpus::block_diagonal(64, 16, 200, 9);
        assert_eq!(a, b);
        for &(r, c, _) in a.entries() {
            assert_eq!(r / 16, c / 16, "entry ({r},{c}) crosses a block");
        }
        let e = corpus::with_empty_rows_and_cols(64, 200, 9);
        for &(r, c, _) in e.entries() {
            assert_ne!(r % 4, 3);
            assert_ne!(c % 4, 3);
        }
        assert!(e.nnz() > 0);
    }

    #[test]
    fn spgemm_corpus_builders_hold_their_invariants() {
        // triangle-heavy: symmetric, boolean, and actually rich in
        // triangles (every seeded clique closes at least one).
        let t = corpus::triangle_heavy(48, 60, 11);
        assert_eq!(t, corpus::triangle_heavy(48, 60, 11));
        let has = |r: u32, c: u32| t.entries().iter().any(|&(rr, cc, _)| rr == r && cc == c);
        let mut triangles = 0usize;
        for &(r, c, v) in t.entries() {
            assert_eq!(v, 1.0, "({r},{c}) not boolean");
            assert_ne!(r, c, "self loop at {r}");
            assert!(has(c, r), "({r},{c}) not symmetric");
            triangles += t
                .entries()
                .iter()
                .filter(|&&(a, b, _)| a == c && b != r && has(b, r))
                .count();
        }
        assert!(triangles > 0, "no triangles in a triangle-heavy graph");

        // power-law rows: the heaviest row dominates the median row.
        let p = corpus::power_law_rows(64, 640, 1.5, 12);
        let mut degs = vec![0usize; 64];
        for &(r, _, _) in p.entries() {
            degs[r as usize] += 1;
        }
        let max = *degs.iter().max().unwrap();
        degs.sort_unstable();
        assert!(
            max >= 4 * degs[32].max(1),
            "row degrees too flat: max {max}, median {}",
            degs[32]
        );

        // boolean adjacency: off-diagonal, deduplicated, all-ones.
        let b = corpus::boolean_adjacency(32, 200, 13);
        assert!(b.nnz() > 0);
        let mut seen = std::collections::HashSet::new();
        for &(r, c, v) in b.entries() {
            assert_eq!(v, 1.0);
            assert_ne!(r, c);
            assert!(seen.insert((r, c)), "duplicate ({r},{c})");
        }
    }

    #[test]
    fn edge_case_suite_covers_the_named_structures() {
        let suite = corpus::edge_case_suite(32);
        let names: Vec<&str> = suite.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"empty"));
        assert!(names.contains(&"anti_diagonal"));
        assert!(names.contains(&"block_diagonal"));
        assert!(names.contains(&"empty_rows_cols"));
        for (name, m) in &suite {
            assert_eq!(m.nrows(), 32, "{name}");
            if *name == "zero_rows_rect" {
                assert_eq!(m.ncols(), 16, "{name} must stay rectangular");
            } else {
                assert_eq!(m.ncols(), 32, "{name}");
            }
        }
        let empty = suite.iter().find(|(n, _)| *n == "empty").unwrap();
        assert_eq!(empty.1.nnz(), 0);

        // The rectangular entry keeps its defining property: every odd
        // row is completely empty, and some even row is populated.
        let rect = &suite
            .iter()
            .find(|(n, _)| *n == "zero_rows_rect")
            .unwrap()
            .1;
        assert!(rect.nnz() > 0);
        for &(r, c, _) in rect.entries() {
            assert_eq!(r % 2, 0, "odd row {r} must be all-zero");
            assert!(c < 16);
        }
    }

    #[test]
    fn config_with_prefers_env_override() {
        // Can't mutate the environment safely in a parallel test binary;
        // just check the defaults thread through.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(config().cases, DEFAULT_CASES);
            assert_eq!(config_with(256).cases, 256);
        }
    }
}
