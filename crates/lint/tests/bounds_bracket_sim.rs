//! Differential soundness harness for the static cost analyzer: for
//! random corpus matrices, graphs, and configurations, every per-pass,
//! per-category static bound must bracket the traffic the simulator
//! actually generates — with the bitwise `TraceAudit` confirming that
//! the traced actuals equal the engine's own report first.
//!
//! This is the property the whole `analysis_cost` module stands on; the
//! registry apps are covered separately by `experiments analyze`
//! (sparsepipe-bench), this suite covers the space *between* the apps:
//! random sparsity structures, degenerate matrices (empty rows/columns,
//! block-diagonal), tiny thrashing buffers, and all three execution
//! paths (cross-iteration OEI, within-iteration OEI, no OEI).

use proptest::prelude::*;
use sparsepipe_core::{ReorderKind, SimRequest, SparsepipeConfig};
use sparsepipe_frontend::{compile, GraphBuilder, SparsepipeProgram};
use sparsepipe_lint::analysis_cost::{analyze_matrix, CostReport};
use sparsepipe_semiring::{EwiseBinary, SemiringOp};
use sparsepipe_tensor::CooMatrix;
use sparsepipe_testutil::corpus;
use sparsepipe_trace::{replay_passes, MemorySink, TraceAudit};

/// PageRank-shaped loop: cross-iteration OEI.
fn cross_iteration_program() -> SparsepipeProgram {
    let mut b = GraphBuilder::new();
    let pr = b.input_vector("pr");
    let l = b.constant_matrix("L");
    let y = b.vxm(pr, l, SemiringOp::MulAdd).unwrap();
    let s = b.ewise_scalar(EwiseBinary::Mul, y, 0.85).unwrap();
    let next = b.ewise_scalar(EwiseBinary::Add, s, 0.15).unwrap();
    b.carry(next, pr).unwrap();
    compile(&b.build().unwrap(), 1).unwrap()
}

/// KNN-shaped loop: two vxms fused within one iteration.
fn within_iteration_program() -> SparsepipeProgram {
    let mut b = GraphBuilder::new();
    let v = b.input_vector("v");
    let a = b.constant_matrix("A");
    let mid = b.vxm(v, a, SemiringOp::AndOr).unwrap();
    let out = b.vxm(mid, a, SemiringOp::AndOr).unwrap();
    b.carry(out, v).unwrap();
    let p = compile(&b.build().unwrap(), 1).unwrap();
    assert!(p.profile.has_oei && !p.profile.cross_iteration);
    p
}

/// Carry-less single vxm: no OEI, closed-form path.
fn no_oei_program() -> SparsepipeProgram {
    let mut b = GraphBuilder::new();
    let v = b.input_vector("v");
    let a = b.constant_matrix("A");
    let _ = b.vxm(v, a, SemiringOp::MulAdd).unwrap();
    let p = compile(&b.build().unwrap(), 1).unwrap();
    assert!(!p.profile.has_oei);
    p
}

fn program_by_index(i: usize) -> SparsepipeProgram {
    match i {
        0 => cross_iteration_program(),
        1 => within_iteration_program(),
        _ => no_oei_program(),
    }
}

/// A configuration whose reordering is disabled, so the matrix the
/// analyzer sees is bit-identical to the one the engine schedules.
fn config_with(buffer_bytes: usize, eager: bool) -> SparsepipeConfig {
    let mut config = SparsepipeConfig::iso_gpu();
    config.preprocessing.reorder = ReorderKind::None;
    config.buffer_bytes = buffer_bytes;
    config.eager_csr = eager;
    config
}

/// The property: run the analyzer and the traced simulator on the same
/// inputs and assert every bound brackets its audited actual.
fn assert_bounds_bracket(
    program: &SparsepipeProgram,
    matrix: &CooMatrix,
    config: &SparsepipeConfig,
    iterations: usize,
    context: &str,
) -> CostReport {
    let report = analyze_matrix(program, matrix, config, iterations);

    let mut sink = MemorySink::new();
    let outcome = SimRequest::new(program, matrix)
        .iterations(iterations)
        .config(*config)
        .trace(&mut sink)
        .run()
        .expect("simulation must succeed");

    // Ground truth first: the trace must bitwise-reproduce the engine's
    // own traffic report before we trust it to judge the bounds.
    TraceAudit::replay(sink.events())
        .check(&outcome.report.traffic.audit_totals())
        .unwrap_or_else(|e| panic!("[{context}] trace audit mismatch: {e:?}"));

    // Per-pass: the analyzer must predict the engine's pass structure
    // exactly and bracket each category of each pass.
    let actual_passes = replay_passes(sink.events());
    assert_eq!(
        actual_passes.len(),
        report.passes.len(),
        "[{context}] pass count: static {:?} vs trace {:?}",
        report.passes,
        actual_passes
    );
    for (sp, ap) in report.passes.iter().zip(&actual_passes) {
        assert_eq!(sp.pass, ap.pass, "[{context}] pass id");
        assert_eq!(sp.repeats, ap.repeats, "[{context}] pass repeats");
        assert_eq!(sp.steps, ap.steps, "[{context}] pass steps");
        let actuals = [
            ("csc", ap.traffic.csc_bytes),
            ("csr_eager", ap.traffic.csr_eager_bytes),
            ("refetch", ap.traffic.refetch_bytes),
            ("vector", ap.traffic.vector_bytes),
            ("writeback", ap.traffic.writeback_bytes),
        ];
        for ((name, bound), (_, actual)) in sp.traffic.categories().iter().zip(actuals) {
            assert!(
                bound.contains(actual),
                "[{context}] pass {} {name}: actual {actual} outside [{}, {}]",
                sp.pass,
                bound.lower,
                bound.upper
            );
        }
    }

    // Whole-run totals against the engine's report.
    let t = &outcome.report.traffic;
    let totals = [
        ("csc", report.traffic.csc, t.csc_bytes),
        ("csr_eager", report.traffic.csr_eager, t.csr_eager_bytes),
        ("refetch", report.traffic.refetch, t.refetch_bytes),
        ("vector", report.traffic.vector, t.vector_bytes),
        ("writeback", report.traffic.writeback, t.writeback_bytes),
    ];
    for (name, bound, actual) in totals {
        assert!(
            bound.contains(actual),
            "[{context}] total {name}: actual {actual} outside [{}, {}]",
            bound.lower,
            bound.upper
        );
    }
    assert!(
        report.traffic.total().contains(t.total_bytes()),
        "[{context}] grand total {} outside [{}, {}]",
        t.total_bytes(),
        report.traffic.total().lower,
        report.traffic.total().upper
    );

    // Occupancy peak.
    assert!(
        report
            .occupancy_bytes
            .contains(outcome.report.buffer_peak_bytes),
        "[{context}] occupancy peak {} outside [{}, {}]",
        outcome.report.buffer_peak_bytes,
        report.occupancy_bytes.lower,
        report.occupancy_bytes.upper
    );

    // Claimed guarantees must match observed behaviour.
    if report.no_eviction_guaranteed {
        assert_eq!(
            outcome.report.evicted_elements, 0,
            "[{context}] no-eviction guarantee violated"
        );
    }
    if report.thrash_guaranteed {
        assert!(
            outcome.report.evicted_elements > 0,
            "[{context}] thrash guarantee violated"
        );
    }
    report
}

fn corpus_matrix(kind: usize, n: u32, nnz: usize, seed: u64) -> CooMatrix {
    match kind {
        0 => corpus::banded(n, nnz, (n / 8).max(1), seed),
        1 => corpus::power_law(n, nnz, 1.2, 0.4, seed),
        2 => corpus::uniform(n, nnz, seed),
        3 => corpus::block_diagonal(n, (n / 4).max(1), nnz, seed),
        _ => corpus::with_empty_rows_and_cols(n, nnz, seed),
    }
}

proptest! {
    #![proptest_config(sparsepipe_testutil::config_with(24))]

    #[test]
    fn bounds_bracket_random_corpus(
        shape in (0usize..5, 0usize..3, 48u32..160, 1usize..10),
        run in (0u64..1_000, any::<bool>(), 0usize..3, 1usize..6),
    ) {
        let (kind, prog, n, degree) = shape;
        let (seed, eager, buf_kind, iterations) = run;
        let matrix = corpus_matrix(kind, n, n as usize * degree, seed);
        let program = program_by_index(prog);
        // Small buffers force eviction/refetch; the large one proves the
        // no-eviction path.
        let buffer = [4 << 10, 48 << 10, 64 << 20][buf_kind];
        let config = config_with(buffer, eager);
        let context = format!(
            "kind={kind} prog={prog} n={n} deg={degree} seed={seed} eager={eager} \
             buf={buffer} iters={iterations}"
        );
        assert_bounds_bracket(&program, &matrix, &config, iterations, &context);
    }
}

#[test]
fn bounds_bracket_edge_case_suite() {
    for (name, matrix) in corpus::edge_case_suite(96) {
        if matrix.nrows() != matrix.ncols() {
            // The analyzer and simulator both model square iteration
            // spaces; the suite's rectangular entry is rejection-tested
            // by the dualbuffer and mxm differential suites instead.
            continue;
        }
        for (pi, iterations) in [(0usize, 5usize), (1, 3), (2, 4)] {
            let program = program_by_index(pi);
            for buffer in [8 << 10, 64 << 20] {
                let config = config_with(buffer, true);
                let context = format!("edge={name} prog={pi} buf={buffer}");
                assert_bounds_bracket(&program, &matrix, &config, iterations, &context);
            }
        }
    }
}

#[test]
fn thrashing_buffer_still_bracketed() {
    // A buffer holding only a handful of elements maximizes eviction
    // churn — the hardest case for the refetch and occupancy bounds.
    let matrix = corpus::uniform(128, 2_048, 17);
    for eager in [false, true] {
        let config = config_with(512, eager);
        let report = assert_bounds_bracket(
            &cross_iteration_program(),
            &matrix,
            &config,
            8,
            &format!("thrash eager={eager}"),
        );
        assert!(report.thrash_guaranteed, "512 B must provably thrash");
        assert!(report.diagnostics.has_code("SP-C002"));
    }
}

#[test]
fn single_element_and_diagonal_matrices() {
    // Degenerate shapes: one element, and a pure diagonal (every
    // element's two consumptions land on the same step).
    let one = CooMatrix::from_entries(32, 32, vec![(3, 7, 1.0)]).unwrap();
    let diag: Vec<(u32, u32, f64)> = (0..64).map(|i| (i, i, 1.0)).collect();
    let diag = CooMatrix::from_entries(64, 64, diag).unwrap();
    for (label, m) in [("one-element", &one), ("diagonal", &diag)] {
        for pi in 0..3 {
            let config = config_with(64 << 20, true);
            let context = format!("{label} prog={pi}");
            let report = assert_bounds_bracket(&program_by_index(pi), m, &config, 3, &context);
            assert!(report.no_eviction_guaranteed, "[{context}]");
        }
    }
}
