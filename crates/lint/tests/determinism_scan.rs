//! Workspace determinism lint: scans every crate's non-test sources for
//! nondeterminism hazards in simulator-path code.
//!
//! The simulator's contract is bit-for-bit reproducibility across runs
//! and thread counts (DESIGN.md §9), which a single stray
//! `HashMap`-iteration or wall-clock read can silently break. This scan
//! fails the build on:
//!
//! * iteration over a `HashMap`/`HashSet` (`.iter()`, `.keys()`,
//!   `.values()`, `.drain()`, `.into_iter()`, `for … in`) — keyed
//!   lookup and membership tests are fine, order-dependent walks are
//!   not;
//! * `Instant::now` / `SystemTime` — wall-clock reads, legitimate only
//!   for host telemetry and deadline bookkeeping;
//! * `thread_rng` — unseeded randomness;
//! * `static mut` — shared mutable state.
//!
//! Legitimate sites carry an inline allowlist marker on the same or the
//! preceding line:
//!
//! ```text
//! // determinism: allow (host wall-clock telemetry, not simulated state)
//! let start = std::time::Instant::now();
//! ```
//!
//! Everything after the first `#[cfg(test)]` in a file is skipped: test
//! code may measure time freely.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const ALLOW_MARKER: &str = "determinism: allow";

/// Hazard tokens that are never acceptable without a marker.
const ABSOLUTE_HAZARDS: &[&str] = &["Instant::now", "SystemTime", "thread_rng", "static mut"];

/// Order-sensitive methods that are hazardous when the receiver is a
/// `HashMap`/`HashSet` declared in the same file (`BTreeMap` iteration
/// is ordered and fine, so the check is scoped by receiver, not by
/// method name alone).
const ITERATION_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain()",
];

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Names bound to a `HashMap`/`HashSet` in this file: `let x: HashMap…`,
/// `let mut x = HashMap::new()`, struct fields `x: Mutex<HashMap…>`.
fn hash_bound_names(lines: &[&str]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in lines {
        if !(line.contains("HashMap") || line.contains("HashSet")) {
            continue;
        }
        // The identifier is the last word before the first `:` or `=`
        // that precedes the Hash token.
        let hash_at = line
            .find("HashMap")
            .or_else(|| line.find("HashSet"))
            .unwrap();
        let head = &line[..hash_at];
        let Some(sep) = head.rfind([':', '=']) else {
            continue;
        };
        let ident: String = head[..sep]
            .trim_end()
            .chars()
            .rev()
            .take_while(|&c| is_ident_char(c))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if !ident.is_empty() && !ident.chars().next().unwrap().is_ascii_digit() {
            names.insert(ident);
        }
    }
    names
}

/// Whether `line` calls `method` with `name` as the receiver
/// (`name.iter()` or `&name.iter()`, not `other_name.iter()`).
fn calls_on(line: &str, name: &str, method: &str) -> bool {
    let needle = format!("{name}{method}");
    line.match_indices(&needle)
        .any(|(i, _)| i == 0 || !is_ident_char(line[..i].chars().next_back().unwrap()))
}

/// Whether `line` iterates `name` with a `for … in` loop.
fn for_loop_over(line: &str, name: &str) -> bool {
    let Some(pos) = line.find(" in ") else {
        return false;
    };
    let tail = line[pos + 4..].trim_start().trim_start_matches(['&', ' ']);
    tail.starts_with(name) && !tail[name.len()..].chars().next().is_some_and(is_ident_char)
}

fn scan_file(path: &Path, findings: &mut String) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    let all_lines: Vec<&str> = text.lines().collect();
    // Test modules are out of scope: cut at the first #[cfg(test)].
    let cut = all_lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(all_lines.len());
    let lines = &all_lines[..cut];
    let hash_names = hash_bound_names(lines);

    for (i, raw) in lines.iter().enumerate() {
        let line = raw.trim_start();
        if line.starts_with("//") || line.starts_with("#!") {
            continue;
        }
        let allowed =
            raw.contains(ALLOW_MARKER) || (i > 0 && all_lines[i - 1].contains(ALLOW_MARKER));
        if allowed {
            continue;
        }
        let mut hazards: Vec<String> = Vec::new();
        for h in ABSOLUTE_HAZARDS {
            if line.contains(h) {
                hazards.push(format!("`{h}`"));
            }
        }
        for name in &hash_names {
            for m in ITERATION_METHODS {
                if calls_on(line, name, m) {
                    hazards.push(format!("iteration `{name}{m}` over a hash collection"));
                }
            }
            if for_loop_over(line, name) {
                hazards.push(format!("`for … in {name}` over a hash collection"));
            }
        }
        for hazard in hazards {
            writeln!(
                findings,
                "{}:{}: {hazard}\n    {line}",
                path.display(),
                i + 1
            )
            .unwrap();
        }
    }
}

fn rust_sources_under(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("read_dir {dir:?}: {e}")) {
        let path = entry.unwrap().path();
        if path.is_dir() {
            rust_sources_under(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn simulator_path_sources_are_deterministic() {
    let crates_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .canonicalize()
        .expect("crates/ root");
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(&crates_root).unwrap() {
        let src = entry.unwrap().path().join("src");
        if src.is_dir() {
            rust_sources_under(&src, &mut sources);
        }
    }
    sources.sort();
    assert!(
        sources.len() > 20,
        "scan found only {} sources under {crates_root:?} — wrong root?",
        sources.len()
    );

    let mut findings = String::new();
    for path in &sources {
        scan_file(path, &mut findings);
    }
    assert!(
        findings.is_empty(),
        "nondeterminism hazards in simulator-path code (annotate legitimate \
         sites with `// {ALLOW_MARKER} (<reason>)`):\n{findings}"
    );
}

#[test]
fn scanner_catches_seeded_hazards() {
    // The scanner must actually detect each hazard class, or the clean
    // run above proves nothing.
    let dir = std::env::temp_dir().join(format!("det-scan-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("hazard.rs");
    std::fs::write(
        &file,
        "fn f() {\n\
         let t = std::time::Instant::now();\n\
         let mut m: HashMap<u32, u32> = HashMap::new();\n\
         for (k, v) in &m { let _ = (k, v); }\n\
         let _ = m.keys();\n\
         let _ = m.iter();\n\
         // determinism: allow (scanner self-test)\n\
         let ok = std::time::Instant::now();\n\
         }\n",
    )
    .unwrap();
    let mut findings = String::new();
    scan_file(&file, &mut findings);
    std::fs::remove_dir_all(&dir).ok();
    assert!(findings.contains("Instant::now"), "{findings}");
    assert!(findings.contains("for … in m"), "{findings}");
    assert!(findings.contains("m.keys()"), "{findings}");
    assert!(findings.contains("m.iter()"), "{findings}");
    assert!(
        !findings.contains(":8:"),
        "the allow-marked line (8) must not be reported: {findings}"
    );
}
