//! Pass-plan feasibility checks (`SP-P…`).
//!
//! A [`PassPlan`] is the simulator's schedule geometry for one OEI pass:
//! per-element OS/IS steps, per-step element id ranges in both traversal
//! orders, and the dense-vector working-set curve. The per-step loop in
//! `sparsepipe_core::pipeline` indexes these arrays without bounds slack,
//! so a malformed plan turns into out-of-bounds panics or — worse — a
//! silently wrong cycle count. These checks validate every structural
//! invariant the loop relies on.
//!
//! | code | invariant |
//! |---|---|
//! | SP-P001 | `steps == ceil(n / t_cols).max(1)` and `t_cols > 0` |
//! | SP-P002 | `csc_ptr` has `steps + 1` entries, starts at 0, is monotone, ends at `nnz` |
//! | SP-P003 | `csc_order` is a permutation of element ids grouped by `col_step` |
//! | SP-P004 | `col_step` / `row_step` have `nnz` entries, all `< steps` |
//! | SP-P005 | `row_ptr_by_step` is monotone, covers `nnz`, and groups by `row_step` |
//! | SP-P006 | `vec_live` has one entry per step |
//! | SP-P007 | peak vector working set exceeds the pipeline's 50% buffer cap (warning: the run degrades to a capped vector window) |

use sparsepipe_core::{PassPlan, SparsepipeConfig};

use crate::diag::LintReport;

/// Runs every `SP-P` check on `plan`, appending findings to `report`.
///
/// `config` and `feature_dim` size the SP-P007 working-set warning the same
/// way the pipeline sizes its vector reservation (8 bytes × feature dim per
/// live element, capped at half the buffer).
pub fn check(
    plan: &PassPlan,
    config: &SparsepipeConfig,
    feature_dim: usize,
    report: &mut LintReport,
) {
    check_geometry(plan, report);
    check_csc(plan, report);
    check_steps_arrays(plan, report);
    check_row_ptr(plan, report);
    check_working_set(plan, config, feature_dim, report);
}

/// SP-P001: step count consistent with `n` and `t_cols`.
fn check_geometry(plan: &PassPlan, report: &mut LintReport) {
    if plan.t_cols == 0 {
        report.error("SP-P001", None, None, "sub-tensor width t_cols is zero");
        return;
    }
    let expected = (plan.n as usize).div_ceil(plan.t_cols).max(1);
    if plan.steps != expected {
        report.error(
            "SP-P001",
            None,
            None,
            format!(
                "plan has {} steps but ceil({} / {}) = {expected}",
                plan.steps, plan.n, plan.t_cols
            ),
        );
    }
}

/// SP-P002 + SP-P003: the CSC-order grouping structure.
fn check_csc(plan: &PassPlan, report: &mut LintReport) {
    let p = &plan.csc_ptr;
    if p.len() != plan.steps + 1 {
        report.error(
            "SP-P002",
            None,
            None,
            format!(
                "csc_ptr has {} entries, expected steps + 1 = {}",
                p.len(),
                plan.steps + 1
            ),
        );
        return;
    }
    if p[0] != 0 || p[plan.steps] != plan.nnz || p.windows(2).any(|w| w[0] > w[1]) {
        report.error(
            "SP-P002",
            None,
            None,
            format!(
                "csc_ptr must rise monotonically from 0 to nnz = {} (got first = {}, last = {})",
                plan.nnz, p[0], p[plan.steps]
            ),
        );
        return;
    }
    if plan.csc_order.len() != plan.nnz {
        report.error(
            "SP-P003",
            None,
            None,
            format!(
                "csc_order has {} entries, expected nnz = {}",
                plan.csc_order.len(),
                plan.nnz
            ),
        );
        return;
    }
    let mut seen = vec![false; plan.nnz];
    for (pos, &e) in plan.csc_order.iter().enumerate() {
        let e = e as usize;
        if e >= plan.nnz || seen[e] {
            report.error(
                "SP-P003",
                None,
                None,
                format!(
                    "csc_order is not a permutation of 0..nnz (element id {e} at position {pos})"
                ),
            );
            return;
        }
        seen[e] = true;
    }
    if plan.col_step.len() == plan.nnz {
        for s in 0..plan.steps {
            for &e in &plan.csc_order[p[s]..p[s + 1]] {
                if plan.col_step[e as usize] as usize != s {
                    report.error(
                        "SP-P003",
                        None,
                        None,
                        format!(
                            "element {e} is grouped under OS step {s} but col_step says {}",
                            plan.col_step[e as usize]
                        ),
                    );
                    return;
                }
            }
        }
    }
}

/// SP-P004: per-element step arrays sized and bounded.
fn check_steps_arrays(plan: &PassPlan, report: &mut LintReport) {
    for (name, arr) in [("col_step", &plan.col_step), ("row_step", &plan.row_step)] {
        if arr.len() != plan.nnz {
            report.error(
                "SP-P004",
                None,
                None,
                format!(
                    "{name} has {} entries, expected nnz = {}",
                    arr.len(),
                    plan.nnz
                ),
            );
            continue;
        }
        if let Some((e, &s)) = arr
            .iter()
            .enumerate()
            .find(|&(_, &s)| s as usize >= plan.steps)
        {
            report.error(
                "SP-P004",
                None,
                None,
                format!(
                    "{name}[{e}] = {s} is out of range for a {}-step plan",
                    plan.steps
                ),
            );
        }
    }
}

/// SP-P005: row-major step pointers monotone, covering, and consistent
/// with `row_step`.
fn check_row_ptr(plan: &PassPlan, report: &mut LintReport) {
    let p = &plan.row_ptr_by_step;
    if p.len() != plan.steps + 1
        || p[0] != 0
        || *p.last().unwrap() != plan.nnz
        || p.windows(2).any(|w| w[0] > w[1])
    {
        report.error(
            "SP-P005",
            None,
            None,
            format!(
                "row_ptr_by_step must rise monotonically from 0 to nnz = {} over {} steps \
                 (got {} entries)",
                plan.nnz,
                plan.steps,
                p.len()
            ),
        );
        return;
    }
    if plan.row_step.len() == plan.nnz {
        for s in 0..plan.steps {
            for e in p[s]..p[s + 1] {
                if plan.row_step[e] as usize != s {
                    report.error(
                        "SP-P005",
                        None,
                        None,
                        format!(
                            "element {e} falls in IS step {s}'s range but row_step says {}",
                            plan.row_step[e]
                        ),
                    );
                    return;
                }
            }
        }
    }
}

/// SP-P006 + SP-P007: the working-set curve exists and fits — or the
/// degradation is at least explicit.
fn check_working_set(
    plan: &PassPlan,
    config: &SparsepipeConfig,
    feature_dim: usize,
    report: &mut LintReport,
) {
    if plan.vec_live.len() != plan.steps {
        report.error(
            "SP-P006",
            None,
            None,
            format!(
                "vec_live has {} entries, expected one per step ({})",
                plan.vec_live.len(),
                plan.steps
            ),
        );
        return;
    }
    // The pipeline reserves vec_live[s] * 8 * feature_dim bytes for dense
    // vectors, capped at half the buffer; beyond the cap the vector window
    // spills and matrix residency shrinks. Surface that as a warning so
    // "mysteriously high traffic" has a named cause.
    let peak_elems = plan.vec_live.iter().copied().max().unwrap_or(0);
    let peak_bytes = peak_elems as f64 * 8.0 * feature_dim.max(1) as f64;
    let cap = config.buffer_bytes as f64 * 0.5;
    if peak_bytes > cap {
        report.warning(
            "SP-P007",
            None,
            None,
            format!(
                "peak dense-vector working set ({:.1} KB at feature dim {}) exceeds half \
                 the {:.1} KB buffer — the run degrades to a capped vector window",
                peak_bytes / 1024.0,
                feature_dim.max(1),
                config.buffer_bytes as f64 / 1024.0
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use sparsepipe_tensor::gen;

    use super::*;

    fn plan() -> PassPlan {
        PassPlan::build(&gen::uniform(100, 100, 600, 7), 8)
    }

    fn lint(plan: &PassPlan) -> LintReport {
        let mut r = LintReport::new();
        check(plan, &SparsepipeConfig::iso_gpu(), 1, &mut r);
        r
    }

    #[test]
    fn built_plan_is_clean() {
        let r = lint(&plan());
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.warning_count(), 0);
    }

    #[test]
    fn wrong_step_count_is_sp_p001() {
        let mut p = plan();
        p.t_cols = 16; // steps no longer matches ceil(n / t_cols)
        assert!(lint(&p).has_code("SP-P001"));
    }

    #[test]
    fn truncated_csc_ptr_is_sp_p002() {
        let mut p = plan();
        *p.csc_ptr.last_mut().unwrap() -= 1; // no longer covers nnz
        assert!(lint(&p).has_code("SP-P002"));
    }

    #[test]
    fn duplicated_csc_order_entry_is_sp_p003() {
        let mut p = plan();
        p.csc_order[1] = p.csc_order[0]; // not a permutation any more
        assert!(lint(&p).has_code("SP-P003"));
    }

    #[test]
    fn out_of_range_col_step_is_sp_p004() {
        let mut p = plan();
        p.col_step[3] = p.steps as u32; // one past the last step
        let r = lint(&p);
        assert!(r.has_code("SP-P004"), "{r}");
    }

    #[test]
    fn non_monotone_row_ptr_is_sp_p005() {
        let mut p = plan();
        p.row_ptr_by_step[2] = p.row_ptr_by_step[3] + 1;
        assert!(lint(&p).has_code("SP-P005"));
    }

    #[test]
    fn short_vec_live_is_sp_p006() {
        let mut p = plan();
        p.vec_live.pop();
        assert!(lint(&p).has_code("SP-P006"));
    }

    #[test]
    fn oversized_working_set_is_sp_p007_warning() {
        let p = plan();
        let tiny = SparsepipeConfig::iso_gpu().with_buffer(1024);
        let mut r = LintReport::new();
        check(&p, &tiny, 64, &mut r);
        assert!(r.has_code("SP-P007"), "{r}");
        assert!(r.is_clean(), "SP-P007 is a warning");
    }
}
