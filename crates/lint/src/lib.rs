//! Static verification for Sparsepipe: a dataflow-graph linter, an
//! independent OEI fusion-legality oracle, and pass-plan feasibility
//! checks.
//!
//! The simulator trusts three artifacts produced upstream of it: the
//! [`DataflowGraph`] IR, the [`Analysis`] (taint + OEI-subgraph detection),
//! and the [`PassPlan`] schedule geometry. This crate verifies each
//! **before** simulation and reports structured [`Diagnostic`]s instead of
//! panicking, so broken inputs surface as named, anchored findings:
//!
//! * [`graph_checks`] (`SP-G…`) — well-formedness: single producers,
//!   acyclicity modulo loop-carried edges, kind-compatible carries, no
//!   dangling ids.
//! * [`shape_checks`] (`SP-S…`) — symbolic shape signatures per operator
//!   and semiring identity probes.
//! * [`oei_oracle`] (`SP-O…`) — re-derives fusion legality (sub-tensor
//!   dependency paths, side-operand taint, ≤1 carry crossing) from
//!   scratch and cross-checks `analysis::analyze`'s answer.
//! * [`plan_checks`] (`SP-P…`) — [`PassPlan`] array invariants and the
//!   working-set-vs-buffer warning.
//! * [`analysis_cost`] (`SP-C…`) — the static cost & reuse analyzer:
//!   abstract interpretation that brackets DRAM traffic and buffer
//!   occupancy per pass, scores cross-iteration reuse, and warns on
//!   statically-unprofitable fusion or guaranteed thrashing.
//!
//! Every code the crate can emit is listed in [`codes::CATALOG`] and
//! documented in `LINTS.md` at the repository root.
//!
//! The fifth check category — the per-step buffer shadow checker — lives
//! in `sparsepipe_core::invariants`, gated by
//! `SparsepipeConfig::validate`, because it must observe the simulator's
//! live state.
//!
//! # Example
//!
//! ```
//! use sparsepipe_frontend::GraphBuilder;
//! use sparsepipe_semiring::{EwiseBinary, SemiringOp};
//!
//! # fn main() -> Result<(), sparsepipe_frontend::FrontendError> {
//! let mut b = GraphBuilder::new();
//! let pr = b.input_vector("pr");
//! let l = b.constant_matrix("L");
//! let y = b.vxm(pr, l, SemiringOp::MulAdd)?;
//! let next = b.ewise_scalar(EwiseBinary::Mul, y, 0.85)?;
//! b.carry(next, pr)?;
//! let g = b.build()?;
//!
//! let report = sparsepipe_lint::lint_graph(&g);
//! assert!(report.is_clean(), "{report}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis_cost;
pub mod codes;
pub mod diag;
pub mod einsum_checks;
pub mod graph_checks;
pub mod oei_oracle;
pub mod plan_checks;
pub mod shape_checks;

use sparsepipe_core::{PassPlan, SparsepipeConfig};
use sparsepipe_frontend::analysis::Analysis;
use sparsepipe_frontend::{DataflowGraph, SparsepipeProgram};

pub use diag::{Diagnostic, LintReport, Severity};

/// Lints a graph in isolation: well-formedness (`SP-G`) plus, when the
/// graph's ids all resolve, shape and semiring consistency (`SP-S`).
pub fn lint_graph(g: &DataflowGraph) -> LintReport {
    let mut report = LintReport::new();
    graph_checks::check(g, &mut report);
    // Shape checks dereference ids, so only run them on resolvable graphs.
    if !report.has_code_prefix("SP-G") {
        shape_checks::check(g, &mut report);
    }
    report
}

/// Cross-checks a published [`Analysis`] against the independent OEI
/// oracle (`SP-O`). `g` must be the graph the analysis was derived from
/// and should be `SP-G`-clean.
pub fn lint_analysis(g: &DataflowGraph, analysis: &Analysis) -> LintReport {
    let mut report = LintReport::new();
    oei_oracle::check(g, analysis, &mut report);
    report
}

/// Lints a compiled program: the graph checks, the OEI oracle over the
/// program's embedded analysis, and the matrix-free fusion-profitability
/// advisory (`SP-C003`). This is what `--lint` and app compilation run.
pub fn lint_program(program: &SparsepipeProgram) -> LintReport {
    let mut report = lint_graph(&program.graph);
    if report.has_errors() {
        // A malformed graph makes the analysis meaningless; don't pile
        // oracle disagreements on top.
        return report;
    }
    report.merge(lint_analysis(&program.graph, &program.analysis));
    report.merge(analysis_cost::lint_fusion_profile(&program.profile));
    report
}

/// Checks a [`PassPlan`]'s structural invariants (`SP-P`) against the
/// buffer geometry it will run under.
pub fn lint_plan(plan: &PassPlan, config: &SparsepipeConfig, feature_dim: usize) -> LintReport {
    let mut report = LintReport::new();
    plan_checks::check(plan, config, feature_dim, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use sparsepipe_frontend::{compile, GraphBuilder};
    use sparsepipe_semiring::{EwiseBinary, SemiringOp};
    use sparsepipe_tensor::gen;

    use super::*;

    fn pagerank_program() -> SparsepipeProgram {
        let mut b = GraphBuilder::new();
        let pr = b.input_vector("pr");
        let l = b.constant_matrix("L");
        let y = b.vxm(pr, l, SemiringOp::MulAdd).unwrap();
        let s = b.ewise_scalar(EwiseBinary::Mul, y, 0.85).unwrap();
        let next = b.ewise_scalar(EwiseBinary::Add, s, 0.15).unwrap();
        b.carry(next, pr).unwrap();
        compile(&b.build().unwrap(), 1).unwrap()
    }

    #[test]
    fn compiled_program_lints_clean() {
        let report = lint_program(&pagerank_program());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn corrupted_analysis_is_caught_via_program_entry() {
        let mut p = pagerank_program();
        p.analysis.oei = None;
        let report = lint_program(&p);
        assert!(report.has_code("SP-O002"), "{report}");
    }

    #[test]
    fn plan_entry_point_is_clean_on_built_plan() {
        let plan = PassPlan::build(&gen::uniform(64, 64, 300, 3), 8);
        let report = lint_plan(&plan, &SparsepipeConfig::iso_gpu(), 1);
        assert!(report.is_clean(), "{report}");
    }
}
