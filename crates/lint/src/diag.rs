//! Structured diagnostics: codes, severities, and the report container.
//!
//! Every check in this crate reports through a [`Diagnostic`] rather than
//! panicking, so callers (the bench CLI, app compilation, tests) can decide
//! what to do with findings. Codes are grouped in families:
//!
//! | family | category |
//! |---|---|
//! | `SP-G…` | graph well-formedness |
//! | `SP-S…` | shape & semiring consistency |
//! | `SP-O…` | OEI fusion-legality oracle |
//! | `SP-P…` | pass-plan feasibility |
//! | `SP-C…` | static cost & reuse analysis |
//!
//! The full code catalog lives in [`crate::codes::CATALOG`] and is
//! documented in `LINTS.md`.

use std::fmt;

use sparsepipe_frontend::{OpId, TensorId};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A hint that something may be suboptimal or degrade performance; the
    /// artifact is still executable.
    Warning,
    /// The artifact violates an invariant the simulator/compiler relies on.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: a code, a severity, the graph entity it anchors to, and a
/// span-style human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code (e.g. `"SP-G003"`).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// The operation the finding anchors to, if any.
    pub op: Option<OpId>,
    /// The tensor the finding anchors to, if any.
    pub tensor: Option<TensorId>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        match (self.op, self.tensor) {
            (Some(op), Some(t)) => write!(f, " at op #{} / tensor #{}", op.index(), t.index())?,
            (Some(op), None) => write!(f, " at op #{}", op.index())?,
            (None, Some(t)) => write!(f, " at tensor #{}", t.index())?,
            (None, None) => {}
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of a lint run: every diagnostic, in check order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an error finding.
    pub fn error(
        &mut self,
        code: &'static str,
        op: Option<OpId>,
        tensor: Option<TensorId>,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Error,
            op,
            tensor,
            message: message.into(),
        });
    }

    /// Records a warning finding.
    pub fn warning(
        &mut self,
        code: &'static str,
        op: Option<OpId>,
        tensor: Option<TensorId>,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Warning,
            op,
            tensor,
            message: message.into(),
        });
    }

    /// All findings, in check order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` when no error-severity finding was recorded (warnings are
    /// allowed).
    pub fn is_clean(&self) -> bool {
        !self.has_errors()
    }

    /// `true` when at least one error-severity finding was recorded.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// `true` when any finding (of any severity) carries `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// `true` when any finding's code starts with `prefix` (e.g. `"SP-G"`).
    pub fn has_code_prefix(&self, prefix: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code.starts_with(prefix))
    }

    /// Merges another report's findings into this one.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "lint: clean");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "lint: {} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_display() {
        let mut r = LintReport::new();
        assert!(r.is_clean());
        r.warning("SP-P007", None, None, "working set near capacity");
        assert!(r.is_clean(), "warnings alone keep the report clean");
        r.error("SP-G001", None, Some(TensorId::from_raw(3)), "dangling id");
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_code("SP-G001"));
        assert!(r.has_code_prefix("SP-P"));
        assert!(!r.has_code("SP-O001"));
        let text = r.to_string();
        assert!(text.contains("error[SP-G001] at tensor #3"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn diagnostic_display_spans() {
        let d = Diagnostic {
            code: "SP-S001",
            severity: Severity::Error,
            op: Some(OpId::from_raw(2)),
            tensor: Some(TensorId::from_raw(5)),
            message: "vxm input 0 must be a vector".into(),
        };
        assert_eq!(
            d.to_string(),
            "error[SP-S001] at op #2 / tensor #5: vxm input 0 must be a vector"
        );
    }
}
