//! Shape and semiring consistency checks (`SP-S…`).
//!
//! Shapes in the IR are symbolic ([`TensorKind`] classes, not sizes), so
//! "operand dimensions agree" means each operator sees the kind classes its
//! semantics require — the same rules `GraphBuilder` enforces at
//! construction, re-derived here for graphs from any source.
//!
//! | code | invariant |
//! |---|---|
//! | SP-S001 | operand/result tensor kinds match the operator's signature |
//! | SP-S002 | operand count matches the operator's arity |
//! | SP-S003 | the operator's semiring has working `⊕`/`⊗` identities |
//! | SP-S004 | e-wise immediates are finite (warning) |
//! | SP-S005 | loop-input sparse matrix is never carried into (warning) |

use sparsepipe_frontend::{DataflowGraph, OpId, OpKind, TensorId, TensorKind, TensorRole};
use sparsepipe_semiring::SemiringOp;

use crate::diag::LintReport;

/// Runs every `SP-S` check on `g`, appending findings to `report`.
///
/// Assumes `g` passed the `SP-G` dangling-id checks (ids are dereferenced).
pub fn check(g: &DataflowGraph, report: &mut LintReport) {
    for (op_id, op) in g.ops() {
        check_signature(g, op_id, report);
        if let Some(semiring) = semiring_of(&op.kind) {
            check_semiring(semiring, op_id, report);
        }
        if let OpKind::EwiseImmediate { imm, .. } = op.kind {
            if !imm.is_finite() {
                report.warning(
                    "SP-S004",
                    Some(op_id),
                    None,
                    format!("e-wise immediate {imm} is not finite"),
                );
            }
        }
    }
    check_carried_sparse_inputs(g, report);
}

/// SP-S005: an `Input`-role sparse matrix declares "changes every
/// iteration", which disqualifies it as a cross-iteration OEI shared
/// operand. If nothing ever carries into it, the matrix is de facto
/// constant and the declaration silently forfeits reuse the analysis
/// could otherwise prove — almost always an `input_matrix` that should
/// have been `constant_matrix`.
fn check_carried_sparse_inputs(g: &DataflowGraph, report: &mut LintReport) {
    let carry_targets: Vec<TensorId> = g.carries().iter().map(|&(_, to)| to).collect();
    for (t_id, t) in g.tensors() {
        if t.kind == TensorKind::SparseMatrix
            && t.role == TensorRole::Input
            && !carry_targets.contains(&t_id)
        {
            report.warning(
                "SP-S005",
                None,
                Some(t_id),
                format!(
                    "loop-input sparse matrix {:?} is never carried into — \
                     declare it constant to enable cross-iteration reuse",
                    t.name
                ),
            );
        }
    }
}

fn semiring_of(kind: &OpKind) -> Option<SemiringOp> {
    match *kind {
        OpKind::Vxm { semiring }
        | OpKind::Mxv { semiring }
        | OpKind::SpMM { semiring }
        | OpKind::Mxm { semiring } => Some(semiring),
        _ => None,
    }
}

/// One operand slot's accepted kind classes.
#[derive(Clone, Copy)]
enum Slot {
    Exactly(TensorKind),
    /// `Vector` or `DenseMatrix` — the element-wise operand class.
    Elementwise,
    /// Must equal whatever kind slot 0 resolved to.
    SameAsFirst,
}

impl Slot {
    fn describe(self) -> &'static str {
        match self {
            Slot::Exactly(TensorKind::Vector) => "a vector",
            Slot::Exactly(TensorKind::SparseMatrix) => "a sparse matrix",
            Slot::Exactly(TensorKind::DenseMatrix) => "a dense matrix",
            Slot::Exactly(TensorKind::Scalar) => "a scalar",
            Slot::Elementwise => "a vector or dense matrix",
            Slot::SameAsFirst => "the same kind as operand 0",
        }
    }
}

/// The operator's symbolic signature: operand slots and result slot.
fn signature(kind: &OpKind) -> (&'static str, Vec<Slot>, Slot) {
    use Slot::{Elementwise, Exactly, SameAsFirst};
    use TensorKind::{DenseMatrix, Scalar, SparseMatrix, Vector};
    match kind {
        OpKind::Vxm { .. } => (
            "vxm",
            vec![Exactly(Vector), Exactly(SparseMatrix)],
            Exactly(Vector),
        ),
        OpKind::Mxv { .. } => (
            "mxv",
            vec![Exactly(Vector), Exactly(SparseMatrix)],
            Exactly(Vector),
        ),
        OpKind::SpMM { .. } => (
            "spmm",
            vec![Exactly(DenseMatrix), Exactly(SparseMatrix)],
            Exactly(DenseMatrix),
        ),
        OpKind::Mxm { .. } => (
            "mxm",
            vec![Exactly(SparseMatrix), Exactly(SparseMatrix)],
            Exactly(SparseMatrix),
        ),
        OpKind::DenseMM => (
            "dense_mm",
            vec![Exactly(DenseMatrix), Exactly(DenseMatrix)],
            Exactly(DenseMatrix),
        ),
        OpKind::EwiseMatrix { .. } => (
            "ewise_matrix",
            vec![Exactly(SparseMatrix), Exactly(SparseMatrix)],
            Exactly(SparseMatrix),
        ),
        OpKind::EwiseBinary { .. } => ("ewise", vec![Elementwise, SameAsFirst], SameAsFirst),
        OpKind::EwiseScalarBroadcast { .. } => (
            "ewise_broadcast",
            vec![Elementwise, Exactly(Scalar)],
            SameAsFirst,
        ),
        OpKind::EwiseImmediate { .. } => ("ewise_scalar", vec![Elementwise], SameAsFirst),
        OpKind::EwiseUnary { .. } => ("ewise_unary", vec![Elementwise], SameAsFirst),
        OpKind::Reduce { .. } => ("reduce", vec![Exactly(Vector)], Exactly(Scalar)),
        OpKind::Dot => (
            "dot",
            vec![Exactly(Vector), Exactly(Vector)],
            Exactly(Scalar),
        ),
    }
}

/// SP-S001 / SP-S002 for one op.
fn check_signature(g: &DataflowGraph, op_id: OpId, report: &mut LintReport) {
    let op = g.op(op_id);
    let (name, slots, result) = signature(&op.kind);
    if op.inputs.len() != slots.len() {
        report.error(
            "SP-S002",
            Some(op_id),
            None,
            format!(
                "{name} takes {} operand(s) but op #{} has {}",
                slots.len(),
                op_id.index(),
                op.inputs.len()
            ),
        );
        return; // slot checks below index by position
    }
    let first_kind = op.inputs.first().map(|&t| g.tensor(t).kind);
    let mut check_slot = |slot: Slot, actual: TensorKind, what: String, t: Option<TensorId>| {
        let ok = match slot {
            Slot::Exactly(k) => actual == k,
            Slot::Elementwise => {
                matches!(actual, TensorKind::Vector | TensorKind::DenseMatrix)
            }
            Slot::SameAsFirst => Some(actual) == first_kind,
        };
        if !ok {
            report.error(
                "SP-S001",
                Some(op_id),
                t,
                format!(
                    "{name} {what} must be {} but is {actual:?}",
                    slot.describe()
                ),
            );
        }
    };
    for (i, (&t, &slot)) in op.inputs.iter().zip(&slots).enumerate() {
        check_slot(slot, g.tensor(t).kind, format!("operand {i}"), Some(t));
    }
    check_slot(
        result,
        g.tensor(op.output).kind,
        "result".into(),
        Some(op.output),
    );
}

/// SP-S003: probe the semiring's algebraic identities on the boolean
/// sub-domain (shared by all registered semirings): `zero ⊕ x = x` and
/// `one ⊗ x = x` for `x ∈ {0, 1}`, plus `zero` absorbing under `⊗`.
fn check_semiring(sr: SemiringOp, op_id: OpId, report: &mut LintReport) {
    for x in [0.0f64, 1.0] {
        let add = sr.add(sr.zero(), x);
        if add != x {
            report.error(
                "SP-S003",
                Some(op_id),
                None,
                format!(
                    "semiring {} additive identity broken: zero ⊕ {x} = {add}",
                    sr.mnemonic()
                ),
            );
        }
        let mul = sr.mul(sr.one(), x);
        if mul != x {
            report.error(
                "SP-S003",
                Some(op_id),
                None,
                format!(
                    "semiring {} multiplicative identity broken: one ⊗ {x} = {mul}",
                    sr.mnemonic()
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use sparsepipe_frontend::{DataflowGraph, GraphBuilder, OpNode, TensorNode, TensorRole};
    use sparsepipe_semiring::EwiseBinary;

    use super::*;

    fn tensor(name: &str, kind: TensorKind) -> TensorNode {
        TensorNode {
            name: name.into(),
            kind,
            role: if kind == TensorKind::SparseMatrix {
                TensorRole::Constant
            } else {
                TensorRole::Input
            },
            carries_into: None,
        }
    }

    fn lint(g: &DataflowGraph) -> LintReport {
        let mut r = LintReport::new();
        check(g, &mut r);
        r
    }

    #[test]
    fn all_semirings_pass_identity_probes() {
        let mut r = LintReport::new();
        for sr in SemiringOp::ALL {
            check_semiring(sr, OpId::from_raw(0), &mut r);
        }
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn builder_graph_is_shape_clean() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let l = b.constant_matrix("L");
        let y = b.vxm(v, l, SemiringOp::MinAdd).unwrap();
        let z = b.ewise(EwiseBinary::Min, y, v).unwrap();
        let _s = b.reduce(EwiseBinary::Add, z).unwrap();
        let g = b.build().unwrap();
        assert!(lint(&g).is_clean());
    }

    #[test]
    fn scalar_fed_vxm_is_sp_s001() {
        let mut scalar_y = tensor("y", TensorKind::Vector);
        scalar_y.role = TensorRole::Produced;
        let g = DataflowGraph::from_parts(
            vec![
                tensor("s", TensorKind::Scalar), // wrong: vxm wants a vector
                tensor("L", TensorKind::SparseMatrix),
                scalar_y,
            ],
            vec![OpNode {
                kind: OpKind::Vxm {
                    semiring: SemiringOp::MulAdd,
                },
                inputs: vec![TensorId::from_raw(0), TensorId::from_raw(1)],
                output: TensorId::from_raw(2),
            }],
            vec![OpId::from_raw(0)],
        );
        let r = lint(&g);
        assert!(r.has_code("SP-S001"), "{r}");
    }

    #[test]
    fn mixed_kind_ewise_is_sp_s001() {
        let mut out = tensor("out", TensorKind::Vector);
        out.role = TensorRole::Produced;
        let g = DataflowGraph::from_parts(
            vec![
                tensor("v", TensorKind::Vector),
                tensor("H", TensorKind::DenseMatrix), // kind differs from v
                out,
            ],
            vec![OpNode {
                kind: OpKind::EwiseBinary {
                    op: EwiseBinary::Add,
                },
                inputs: vec![TensorId::from_raw(0), TensorId::from_raw(1)],
                output: TensorId::from_raw(2),
            }],
            vec![OpId::from_raw(0)],
        );
        assert!(lint(&g).has_code("SP-S001"));
    }

    #[test]
    fn wrong_arity_is_sp_s002() {
        let mut out = tensor("out", TensorKind::Scalar);
        out.role = TensorRole::Produced;
        let g = DataflowGraph::from_parts(
            vec![tensor("a", TensorKind::Vector), out],
            vec![OpNode {
                kind: OpKind::Dot, // dot wants two operands
                inputs: vec![TensorId::from_raw(0)],
                output: TensorId::from_raw(1),
            }],
            vec![OpId::from_raw(0)],
        );
        assert!(lint(&g).has_code("SP-S002"));
    }

    #[test]
    fn uncarried_input_matrix_is_sp_s005_warning() {
        let mut b = GraphBuilder::new();
        let f = b.input_matrix("F"); // never carried into: de facto constant
        let a = b.constant_matrix("A");
        let _next = b.mxm(f, a, SemiringOp::AndOr).unwrap();
        let g = b.build().unwrap();
        let r = lint(&g);
        assert!(r.has_code("SP-S005"), "{r}");
        assert!(r.is_clean(), "SP-S005 is a warning, not an error");

        // the properly carried loop is clean
        let mut b = GraphBuilder::new();
        let f = b.input_matrix("F");
        let a = b.constant_matrix("A");
        let next = b.mxm(f, a, SemiringOp::AndOr).unwrap();
        b.carry(next, f).unwrap();
        let g = b.build().unwrap();
        assert!(!lint(&g).has_code("SP-S005"));
    }

    #[test]
    fn ewise_matrix_signature_is_checked() {
        let mut out = tensor("out", TensorKind::SparseMatrix);
        out.role = TensorRole::Produced;
        let g = DataflowGraph::from_parts(
            vec![
                tensor("v", TensorKind::Vector), // wrong: wants sparse
                tensor("A", TensorKind::SparseMatrix),
                out,
            ],
            vec![OpNode {
                kind: OpKind::EwiseMatrix {
                    op: EwiseBinary::Mul,
                },
                inputs: vec![TensorId::from_raw(0), TensorId::from_raw(1)],
                output: TensorId::from_raw(2),
            }],
            vec![OpId::from_raw(0)],
        );
        assert!(lint(&g).has_code("SP-S001"));
    }

    #[test]
    fn non_finite_immediate_is_sp_s004_warning() {
        let mut out = tensor("out", TensorKind::Vector);
        out.role = TensorRole::Produced;
        let g = DataflowGraph::from_parts(
            vec![tensor("v", TensorKind::Vector), out],
            vec![OpNode {
                kind: OpKind::EwiseImmediate {
                    op: EwiseBinary::Mul,
                    imm: f64::NAN,
                },
                inputs: vec![TensorId::from_raw(0)],
                output: TensorId::from_raw(1),
            }],
            vec![OpId::from_raw(0)],
        );
        let r = lint(&g);
        assert!(r.has_code("SP-S004"));
        assert!(r.is_clean(), "SP-S004 is a warning, not an error");
    }
}
