//! Graph well-formedness checks (`SP-G…`).
//!
//! [`GraphBuilder`](sparsepipe_frontend::GraphBuilder) upholds these
//! invariants by construction; this module re-verifies them on any
//! [`DataflowGraph`] — including ones assembled through
//! `DataflowGraph::from_parts` — so downstream passes (analysis, fusion,
//! compilation, simulation) can assume them without panicking.
//!
//! | code | invariant |
//! |---|---|
//! | SP-G001 | every referenced `TensorId` points into the tensor table |
//! | SP-G002 | every `OpId` in the topo order points into the op table |
//! | SP-G003 | every tensor has at most one producer |
//! | SP-G004 | producer existence matches the `Produced` role |
//! | SP-G005 | the topo order is a permutation of all ops |
//! | SP-G006 | the topo order schedules producers before consumers |
//! | SP-G007 | the graph is acyclic modulo loop-carried edges |
//! | SP-G008 | loop-carried edges connect `Produced` → `Input` of equal kind, one per target |

use sparsepipe_frontend::{DataflowGraph, TensorRole};

use crate::diag::LintReport;

/// Runs every `SP-G` check on `g`, appending findings to `report`.
pub fn check(g: &DataflowGraph, report: &mut LintReport) {
    let dangling = check_dangling_ids(g, report);
    if dangling {
        // Index-based checks below would themselves dereference dangling
        // ids; one structural error at a time.
        return;
    }
    check_producers(g, report);
    check_topo_order(g, report);
    check_acyclic(g, report);
    check_carries(g, report);
}

/// SP-G001 / SP-G002: dangling ids. Returns `true` if any were found.
fn check_dangling_ids(g: &DataflowGraph, report: &mut LintReport) -> bool {
    let mut found = false;
    for (op_id, op) in g.ops() {
        for &t in op.inputs.iter().chain(std::iter::once(&op.output)) {
            if g.try_tensor(t).is_err() {
                found = true;
                report.error(
                    "SP-G001",
                    Some(op_id),
                    Some(t),
                    format!(
                        "op #{} references tensor #{} but the graph has only {} tensors",
                        op_id.index(),
                        t.index(),
                        g.n_tensors()
                    ),
                );
            }
        }
    }
    for (tid, node) in g.tensors() {
        if let Some(dst) = node.carries_into {
            if g.try_tensor(dst).is_err() {
                found = true;
                report.error(
                    "SP-G001",
                    None,
                    Some(tid),
                    format!(
                        "tensor {:?} carries into tensor #{} which does not exist",
                        node.name,
                        dst.index()
                    ),
                );
            }
        }
    }
    for &op in g.topo_order() {
        if g.try_op(op).is_err() {
            found = true;
            report.error(
                "SP-G002",
                Some(op),
                None,
                format!(
                    "topological order references op #{} but the graph has only {} ops",
                    op.index(),
                    g.n_ops()
                ),
            );
        }
    }
    found
}

/// SP-G003 / SP-G004: single-producer property and role consistency.
fn check_producers(g: &DataflowGraph, report: &mut LintReport) {
    let mut producers = vec![0usize; g.n_tensors()];
    for (_, op) in g.ops() {
        producers[op.output.index()] += 1;
    }
    for (tid, node) in g.tensors() {
        let n = producers[tid.index()];
        if n > 1 {
            report.error(
                "SP-G003",
                None,
                Some(tid),
                format!(
                    "tensor {:?} is produced by {n} operations (SSA requires one)",
                    node.name
                ),
            );
        }
        let produced = n > 0;
        let role_produced = node.role == TensorRole::Produced;
        if produced != role_produced {
            report.error(
                "SP-G004",
                None,
                Some(tid),
                if produced {
                    format!(
                        "tensor {:?} has role {:?} but is produced by an operation",
                        node.name, node.role
                    )
                } else {
                    format!(
                        "tensor {:?} has role Produced but no operation produces it",
                        node.name
                    )
                },
            );
        }
    }
}

/// SP-G005 / SP-G006: the stored topo order is a valid schedule.
fn check_topo_order(g: &DataflowGraph, report: &mut LintReport) {
    let order = g.topo_order();
    let mut seen = vec![false; g.n_ops()];
    let mut valid_permutation = order.len() == g.n_ops();
    for &op in order {
        if seen[op.index()] {
            valid_permutation = false;
            report.error(
                "SP-G005",
                Some(op),
                None,
                format!(
                    "op #{} appears more than once in the topological order",
                    op.index()
                ),
            );
        }
        seen[op.index()] = true;
    }
    if !valid_permutation {
        let missing: Vec<usize> = seen
            .iter()
            .enumerate()
            .filter(|(_, &s)| !s)
            .map(|(i, _)| i)
            .collect();
        report.error(
            "SP-G005",
            None,
            None,
            format!(
                "topological order covers {}/{} ops (missing: {missing:?})",
                order.len() - (order.len().saturating_sub(g.n_ops())),
                g.n_ops()
            ),
        );
        return; // position-based dependency check needs a permutation
    }

    let mut position = vec![0usize; g.n_ops()];
    for (pos, &op) in order.iter().enumerate() {
        position[op.index()] = pos;
    }
    for &op in order {
        for &input in &g.op(op).inputs {
            if let Some(producer) = g.producer(input) {
                if position[producer.index()] >= position[op.index()] {
                    report.error(
                        "SP-G006",
                        Some(op),
                        Some(input),
                        format!(
                            "op #{} is scheduled before op #{}, which produces its input tensor #{}",
                            op.index(),
                            producer.index(),
                            input.index()
                        ),
                    );
                }
            }
        }
    }
}

/// SP-G007: combinational acyclicity, re-derived with a fresh Kahn pass
/// over producer→consumer edges (loop-carried edges are tensor attributes,
/// not dataflow edges, so they are inherently excluded).
fn check_acyclic(g: &DataflowGraph, report: &mut LintReport) {
    let n = g.n_ops();
    let mut indegree = vec![0usize; n];
    // count distinct producer edges per consumer
    for (cid, op) in g.ops() {
        let mut producers: Vec<usize> = op
            .inputs
            .iter()
            .filter_map(|&t| g.producer(t))
            .map(sparsepipe_frontend::OpId::index)
            .collect();
        producers.sort_unstable();
        producers.dedup();
        indegree[cid.index()] = producers.len();
    }
    let mut ready: Vec<usize> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut scheduled = 0usize;
    while let Some(op) = ready.pop() {
        scheduled += 1;
        let output = g.op(sparsepipe_frontend::OpId::from_raw(op)).output;
        let mut consumers: Vec<usize> = g.consumers(output).iter().map(|c| c.index()).collect();
        consumers.sort_unstable();
        consumers.dedup();
        for c in consumers {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                ready.push(c);
            }
        }
    }
    if scheduled != n {
        let stuck: Vec<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(i, _)| i)
            .collect();
        report.error(
            "SP-G007",
            None,
            None,
            format!(
                "combinational cycle: ops {stuck:?} can never be scheduled \
                 (only loop-carried edges may close cycles)"
            ),
        );
    }
}

/// SP-G008: loop-carried edge validity.
fn check_carries(g: &DataflowGraph, report: &mut LintReport) {
    let mut carried_into = vec![false; g.n_tensors()];
    for (src, dst) in g.carries() {
        let src_node = g.tensor(src);
        let dst_node = g.tensor(dst);
        if src_node.role != TensorRole::Produced {
            report.error(
                "SP-G008",
                None,
                Some(src),
                format!(
                    "carry source {:?} has role {:?}; only produced tensors carry forward",
                    src_node.name, src_node.role
                ),
            );
        }
        if dst_node.role != TensorRole::Input {
            report.error(
                "SP-G008",
                None,
                Some(dst),
                format!(
                    "carry target {:?} has role {:?}; carries must feed next-iteration inputs",
                    dst_node.name, dst_node.role
                ),
            );
        }
        if src_node.kind != dst_node.kind {
            report.error(
                "SP-G008",
                None,
                Some(src),
                format!(
                    "carry connects kind-incompatible tensors: {:?} is {:?} but {:?} is {:?}",
                    src_node.name, src_node.kind, dst_node.name, dst_node.kind
                ),
            );
        }
        if carried_into[dst.index()] {
            report.error(
                "SP-G008",
                None,
                Some(dst),
                format!(
                    "tensor {:?} receives more than one loop-carried value",
                    dst_node.name
                ),
            );
        }
        carried_into[dst.index()] = true;
    }
}

#[cfg(test)]
mod tests {
    use sparsepipe_frontend::{
        DataflowGraph, GraphBuilder, OpId, OpKind, TensorId, TensorKind, TensorNode, TensorRole,
    };
    use sparsepipe_semiring::SemiringOp;

    use super::*;

    fn tensor(name: &str, kind: TensorKind, role: TensorRole) -> TensorNode {
        TensorNode {
            name: name.into(),
            kind,
            role,
            carries_into: None,
        }
    }

    fn vxm_op(input: usize, matrix: usize, output: usize) -> sparsepipe_frontend::OpNode {
        sparsepipe_frontend::OpNode {
            kind: OpKind::Vxm {
                semiring: SemiringOp::MulAdd,
            },
            inputs: vec![TensorId::from_raw(input), TensorId::from_raw(matrix)],
            output: TensorId::from_raw(output),
        }
    }

    fn lint(g: &DataflowGraph) -> LintReport {
        let mut r = LintReport::new();
        check(g, &mut r);
        r
    }

    #[test]
    fn builder_graphs_are_clean() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let l = b.constant_matrix("L");
        let y = b.vxm(v, l, SemiringOp::MulAdd).unwrap();
        b.carry(y, v).unwrap();
        let g = b.build().unwrap();
        let r = lint(&g);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.diagnostics().len(), 0);
    }

    #[test]
    fn dangling_tensor_id_is_sp_g001() {
        let g = DataflowGraph::from_parts(
            vec![
                tensor("v", TensorKind::Vector, TensorRole::Input),
                tensor("L", TensorKind::SparseMatrix, TensorRole::Constant),
                tensor("y", TensorKind::Vector, TensorRole::Produced),
            ],
            vec![vxm_op(0, 7, 2)], // matrix id 7 does not exist
            vec![OpId::from_raw(0)],
        );
        let r = lint(&g);
        assert!(r.has_code("SP-G001"), "{r}");
    }

    #[test]
    fn dangling_op_in_topo_order_is_sp_g002() {
        let g = DataflowGraph::from_parts(
            vec![
                tensor("v", TensorKind::Vector, TensorRole::Input),
                tensor("L", TensorKind::SparseMatrix, TensorRole::Constant),
                tensor("y", TensorKind::Vector, TensorRole::Produced),
            ],
            vec![vxm_op(0, 1, 2)],
            vec![OpId::from_raw(0), OpId::from_raw(9)],
        );
        assert!(lint(&g).has_code("SP-G002"));
    }

    #[test]
    fn duplicate_producer_is_sp_g003() {
        let g = DataflowGraph::from_parts(
            vec![
                tensor("v", TensorKind::Vector, TensorRole::Input),
                tensor("L", TensorKind::SparseMatrix, TensorRole::Constant),
                tensor("y", TensorKind::Vector, TensorRole::Produced),
            ],
            vec![vxm_op(0, 1, 2), vxm_op(0, 1, 2)], // both write y
            vec![OpId::from_raw(0), OpId::from_raw(1)],
        );
        assert!(lint(&g).has_code("SP-G003"));
    }

    #[test]
    fn role_mismatch_is_sp_g004() {
        let g = DataflowGraph::from_parts(
            vec![
                tensor("v", TensorKind::Vector, TensorRole::Input),
                tensor("L", TensorKind::SparseMatrix, TensorRole::Constant),
                // produced by the op below, but declared Input
                tensor("y", TensorKind::Vector, TensorRole::Input),
                // declared Produced, but nothing writes it
                tensor("ghost", TensorKind::Vector, TensorRole::Produced),
            ],
            vec![vxm_op(0, 1, 2)],
            vec![OpId::from_raw(0)],
        );
        let r = lint(&g);
        assert_eq!(
            r.diagnostics()
                .iter()
                .filter(|d| d.code == "SP-G004")
                .count(),
            2,
            "{r}"
        );
    }

    #[test]
    fn incomplete_topo_order_is_sp_g005() {
        let g = DataflowGraph::from_parts(
            vec![
                tensor("v", TensorKind::Vector, TensorRole::Input),
                tensor("L", TensorKind::SparseMatrix, TensorRole::Constant),
                tensor("y", TensorKind::Vector, TensorRole::Produced),
                tensor("z", TensorKind::Vector, TensorRole::Produced),
            ],
            vec![vxm_op(0, 1, 2), vxm_op(2, 1, 3)],
            vec![OpId::from_raw(1)], // op 0 missing
        );
        assert!(lint(&g).has_code("SP-G005"));
    }

    #[test]
    fn consumer_before_producer_is_sp_g006() {
        let g = DataflowGraph::from_parts(
            vec![
                tensor("v", TensorKind::Vector, TensorRole::Input),
                tensor("L", TensorKind::SparseMatrix, TensorRole::Constant),
                tensor("y", TensorKind::Vector, TensorRole::Produced),
                tensor("z", TensorKind::Vector, TensorRole::Produced),
            ],
            vec![vxm_op(0, 1, 2), vxm_op(2, 1, 3)],
            // op 1 consumes y (produced by op 0) but is scheduled first
            vec![OpId::from_raw(1), OpId::from_raw(0)],
        );
        assert!(lint(&g).has_code("SP-G006"));
    }

    #[test]
    fn combinational_cycle_is_sp_g007() {
        // y = vxm(z, L); z = vxm(y, L): a two-op cycle with no carry.
        let g = DataflowGraph::from_parts(
            vec![
                tensor("L", TensorKind::SparseMatrix, TensorRole::Constant),
                tensor("y", TensorKind::Vector, TensorRole::Produced),
                tensor("z", TensorKind::Vector, TensorRole::Produced),
            ],
            vec![vxm_op(2, 0, 1), vxm_op(1, 0, 2)],
            vec![OpId::from_raw(0), OpId::from_raw(1)],
        );
        let r = lint(&g);
        assert!(r.has_code("SP-G007"), "{r}");
    }

    #[test]
    fn kind_incompatible_carry_is_sp_g008() {
        let mut y = tensor("y", TensorKind::Vector, TensorRole::Produced);
        y.carries_into = Some(TensorId::from_raw(3)); // a Scalar input
        let g = DataflowGraph::from_parts(
            vec![
                tensor("v", TensorKind::Vector, TensorRole::Input),
                tensor("L", TensorKind::SparseMatrix, TensorRole::Constant),
                y,
                tensor("s", TensorKind::Scalar, TensorRole::Input),
            ],
            vec![vxm_op(0, 1, 2)],
            vec![OpId::from_raw(0)],
        );
        assert!(lint(&g).has_code("SP-G008"));
    }

    #[test]
    fn carry_from_constant_is_sp_g008() {
        let mut l = tensor("L", TensorKind::SparseMatrix, TensorRole::Constant);
        l.carries_into = Some(TensorId::from_raw(0));
        let g = DataflowGraph::from_parts(
            vec![
                tensor("v", TensorKind::Vector, TensorRole::Input),
                l,
                tensor("y", TensorKind::Vector, TensorRole::Produced),
            ],
            vec![vxm_op(0, 1, 2)],
            vec![OpId::from_raw(0)],
        );
        let r = lint(&g);
        // source role (Constant) and kind mismatch (matrix→vector) both fire
        assert!(r.has_code("SP-G008"), "{r}");
    }
}
