//! Static cost & reuse analysis (`SP-C…`): abstract interpretation over a
//! dataflow graph and a schedule profile that *brackets* the simulator's
//! DRAM traffic and buffer occupancy without running it.
//!
//! The abstract domain is the closed real interval: every quantity the
//! simulator computes exactly (per-category traffic bytes, peak resident
//! bytes) is abstracted to an [`Interval`] `[lower, upper]` proven to
//! contain the concrete value. The analysis mirrors the engine's pass
//! structure op-for-op (see `sparsepipe_core::engine`):
//!
//! * **cross-iteration OEI** — one fused pass per two iterations
//!   (repeated `iterations / 2` times) plus an unfused tail pass when the
//!   iteration count is odd;
//! * **within-iteration OEI** — one fused pass per iteration;
//! * **no OEI** — a closed-form streaming model, no pipeline walk;
//! * **mxm (SpGEMM) family** — Gustavson row-wise sweeps
//!   (`sparsepipe_core::spgemm`), with the same fused/tail split when the
//!   OEI crosses iterations. Stationary-row demand traffic is bounded
//!   from the [`MatrixProfile`]'s SpGEMM statics (`[touched, products]`
//!   elements), the product's population from its envelope, and the
//!   accumulator occupancy from the widest per-row expansion (`SP-C004`
//!   flags statically-guaranteed expansion pressure).
//!
//! Quantities the engine computes by a closed formula (vector stream
//! bytes, tail/unfused matrix bytes) are reproduced with the same
//! arithmetic and widened by a relative tolerance that dominates the
//! engine's worst-case f64 accumulation drift. Quantities that depend on
//! run-time buffer dynamics (CSC/CSR split under eager prefetch, refetch
//! traffic, occupancy peak) are bounded from the [`MatrixProfile`]
//! geometry:
//!
//! * per fused pass, `csc + csr_eager == nnz · fetch_bytes` exactly
//!   (every element is loaded exactly once before eviction can occur, by
//!   one loader or the other), so the split is bounded by the number of
//!   elements the eager loader is geometrically able to claim;
//! * refetch traffic is at most one reload per eager-claimed element plus
//!   one per element whose IS consumption follows its OS consumption, and
//!   is exactly zero when the worst-case residency curve fits the
//!   per-step enforcement budget (no eviction can ever fire);
//! * the occupancy peak is floored by the largest set of elements that
//!   are provably co-resident at one step and capped by the enforcement
//!   budget plus one step's demand burst.
//!
//! Soundness of every bound is asserted empirically by the differential
//! harness in `sparsepipe-bench` (`experiments analyze`), which replays
//! audited traces of all registry apps and checks
//! `lower ≤ actual ≤ upper` per pass and per traffic category.

use sparsepipe_core::spgemm::{ACC_BYTES_PER_COL, RESIDENCY_FRACTION};
use sparsepipe_core::{MatrixProfile, PassPlan, SparsepipeConfig};
use sparsepipe_frontend::{OpId, OpKind, SparsepipeProgram, TensorId, TensorKind, WorkloadProfile};
use sparsepipe_tensor::CooMatrix;

use crate::diag::LintReport;

/// Relative widening applied to closed-form quantities. The engine
/// accumulates at most a few thousand f64 additions per total
/// (relative drift < 1e-12); three orders of magnitude of margin keeps
/// the bounds honest without making them vacuous.
const RELATIVE_TOL: f64 = 1e-9;

/// A closed interval `[lower, upper]` of bytes (or element counts); the
/// abstract value of the analysis. Invariant: `lower <= upper`, both
/// finite and non-negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Proven lower bound.
    pub lower: f64,
    /// Proven upper bound.
    pub upper: f64,
}

impl Interval {
    /// The interval `[lower, upper]`.
    #[must_use]
    pub fn new(lower: f64, upper: f64) -> Self {
        debug_assert!(lower <= upper, "inverted interval [{lower}, {upper}]");
        Interval { lower, upper }
    }

    /// The degenerate interval `[0, 0]`.
    #[must_use]
    pub fn zero() -> Self {
        Interval {
            lower: 0.0,
            upper: 0.0,
        }
    }

    /// An exact value widened by [`RELATIVE_TOL`] on both sides (an exact
    /// zero stays `[0, 0]`: the engine only produces zero as a sum of
    /// exact zeros).
    #[must_use]
    pub fn around(value: f64) -> Self {
        Interval {
            lower: (value * (1.0 - RELATIVE_TOL)).max(0.0),
            upper: value * (1.0 + RELATIVE_TOL),
        }
    }

    /// `[lower, upper]` widened outward by [`RELATIVE_TOL`].
    #[must_use]
    pub fn banded(lower: f64, upper: f64) -> Self {
        Interval::new(
            (lower * (1.0 - RELATIVE_TOL)).max(0.0),
            upper * (1.0 + RELATIVE_TOL),
        )
    }

    /// Whether `value` lies within the interval (inclusive).
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        self.lower <= value && value <= self.upper
    }

    /// Interval sum.
    #[must_use]
    pub fn add(&self, other: &Interval) -> Interval {
        Interval::new(self.lower + other.lower, self.upper + other.upper)
    }

    /// Scaling by a non-negative factor.
    #[must_use]
    pub fn scale(&self, k: f64) -> Interval {
        debug_assert!(k >= 0.0);
        Interval::new(self.lower * k, self.upper * k)
    }

    /// Width of the interval (slack between the bounds).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Per-category DRAM traffic bounds, mirroring
/// [`sparsepipe_core::TrafficBreakdown`] category-for-category.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficBounds {
    /// Demand CSC matrix loads.
    pub csc: Interval,
    /// Eager CSR prefetch loads.
    pub csr_eager: Interval,
    /// Re-loads of evicted elements.
    pub refetch: Interval,
    /// Dense vector stream reads.
    pub vector: Interval,
    /// Dense vector stream writes.
    pub writeback: Interval,
}

impl TrafficBounds {
    /// All-zero bounds.
    #[must_use]
    pub fn zero() -> Self {
        TrafficBounds {
            csc: Interval::zero(),
            csr_eager: Interval::zero(),
            refetch: Interval::zero(),
            vector: Interval::zero(),
            writeback: Interval::zero(),
        }
    }

    /// Bound on the sum over all categories.
    #[must_use]
    pub fn total(&self) -> Interval {
        self.csc
            .add(&self.csr_eager)
            .add(&self.refetch)
            .add(&self.vector)
            .add(&self.writeback)
    }

    /// Category-wise sum.
    #[must_use]
    pub fn add(&self, other: &TrafficBounds) -> TrafficBounds {
        TrafficBounds {
            csc: self.csc.add(&other.csc),
            csr_eager: self.csr_eager.add(&other.csr_eager),
            refetch: self.refetch.add(&other.refetch),
            vector: self.vector.add(&other.vector),
            writeback: self.writeback.add(&other.writeback),
        }
    }

    /// Category-wise scaling by a non-negative factor.
    #[must_use]
    pub fn scale(&self, k: f64) -> TrafficBounds {
        TrafficBounds {
            csc: self.csc.scale(k),
            csr_eager: self.csr_eager.scale(k),
            refetch: self.refetch.scale(k),
            vector: self.vector.scale(k),
            writeback: self.writeback.scale(k),
        }
    }

    /// The five categories as `(name, interval)` pairs, in the trace
    /// schema's order.
    #[must_use]
    pub fn categories(&self) -> [(&'static str, Interval); 5] {
        [
            ("csc", self.csc),
            ("csr_eager", self.csr_eager),
            ("refetch", self.refetch),
            ("vector", self.vector),
            ("writeback", self.writeback),
        ]
    }
}

/// How the engine executes one scheduled pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// A fused OEI pipeline walk over the sub-tensor schedule.
    Fused,
    /// The unfused tail iteration of an odd cross-iteration run.
    UnfusedTail,
    /// The closed-form streaming model used when the graph has no OEI.
    ClosedForm,
    /// A Gustavson (SpGEMM) row-wise sweep of the mxm family.
    Mxm,
}

impl PassKind {
    /// Short lower-case label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PassKind::Fused => "fused",
            PassKind::UnfusedTail => "tail",
            PassKind::ClosedForm => "closed-form",
            PassKind::Mxm => "mxm",
        }
    }
}

/// Static bounds for one scheduled pass, aligned with the trace's
/// `PassBoundary` records: `traffic` bounds the *unscaled* per-execution
/// traffic of the pass (multiply by `repeats` for the run total).
#[derive(Debug, Clone, PartialEq)]
pub struct PassCost {
    /// Execution model of the pass.
    pub kind: PassKind,
    /// Pass id, matching the trace's `PassBoundary::pass`.
    pub pass: u32,
    /// Times the engine replays this pass.
    pub repeats: u64,
    /// Pipeline steps per execution (1 for analytic passes).
    pub steps: u32,
    /// Per-execution traffic bounds, by category.
    pub traffic: TrafficBounds,
    /// Peak matrix-buffer occupancy bounds in bytes (`[0, 0]` for
    /// analytic passes, which never touch the element buffer).
    pub occupancy_bytes: Interval,
}

/// Shape / population envelope for one operator's output tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct OpEnvelope {
    /// The operator.
    pub op: OpId,
    /// Its output tensor.
    pub output: TensorId,
    /// Short operator label (`vxm`, `spmm`, `ewise`, …).
    pub op_label: &'static str,
    /// Dense element slots of the output (`n`, `n·f`, `n·n`, or 1).
    pub elements: f64,
    /// Envelope on the number of populated (non-identity) elements.
    pub nnz: Interval,
}

/// The analysis result: per-pass and aggregate traffic/occupancy bounds,
/// the cross-iteration reuse score, and any `SP-C` diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Whether the program admits OEI fusion at all.
    pub has_oei: bool,
    /// Whether the fusion spans loop iterations.
    pub cross_iteration: bool,
    /// Iterations the bounds cover.
    pub iterations: usize,
    /// Matrix dimension.
    pub n: u32,
    /// Matrix non-zeros.
    pub nnz: usize,
    /// Sub-tensor width of the analyzed schedule.
    pub t_cols: usize,
    /// Per-operator output envelopes, in graph op order.
    pub envelopes: Vec<OpEnvelope>,
    /// Per-pass bounds, in execution order.
    pub passes: Vec<PassCost>,
    /// Whole-run traffic bounds (per-pass bounds scaled by repeats and
    /// summed, mirroring the engine's accumulation).
    pub traffic: TrafficBounds,
    /// Whole-run peak matrix-buffer occupancy bounds in bytes.
    pub occupancy_bytes: Interval,
    /// Bound on total traffic of the *unfused* execution of the same
    /// workload (every operator its own kernel).
    pub unfused_traffic_total: Interval,
    /// Cross-iteration reuse score in `[0, 1]`: the guaranteed fraction
    /// of unfused matrix traffic that fusion eliminates (0 without OEI).
    pub reuse_score: f64,
    /// Proven: no buffer eviction can occur at this capacity, so refetch
    /// traffic is exactly zero.
    pub no_eviction_guaranteed: bool,
    /// Proven: capacity enforcement must evict not-yet-consumed elements
    /// at some step, so the run is guaranteed to thrash.
    pub thrash_guaranteed: bool,
    /// `SP-C` findings (statically-unprofitable fusion, guaranteed
    /// thrashing).
    pub diagnostics: LintReport,
}

/// Everything the fused-pass bound derivation needs from the
/// configuration, precomputed.
struct Geometry<'a> {
    mp: &'a MatrixProfile,
    fetch_b: f64,
    elem_b: f64,
    cap: f64,
    eager: bool,
    feature: f64,
}

impl Geometry<'_> {
    /// The capacity-enforcement budget at step `s`: buffer bytes minus
    /// the dense-vector reservation the pipeline carves out that step.
    fn budget(&self, s: usize) -> f64 {
        let vec_reserved = (self.mp.vec_live[s] as f64 * 8.0 * self.feature).min(self.cap * 0.5);
        (self.cap - vec_reserved).max(0.0)
    }
}

/// Bounds one fused OEI pass. `ewise_iterations` is 2 for
/// cross-iteration fusion (one sweep serves two iterations) and 1
/// within-iteration.
fn fused_pass_bounds(wp: &WorkloadProfile, geo: &Geometry<'_>) -> (PassCost, bool, bool) {
    let mp = geo.mp;
    let n = f64::from(mp.n);
    let nnz = mp.nnz as f64;
    let matrix_total = nnz * geo.fetch_b;

    // First-load split: every element is loaded exactly once by demand
    // CSC or eager CSR, so csc + csr == nnz · fetch exactly; the eager
    // loader can claim at most the geometrically loadable elements, and
    // bandwidth contention can stop it from claiming any.
    let (csc, csr_eager) = if geo.eager {
        let claimable = mp.eager_loadable as f64 * geo.fetch_b;
        (
            Interval::banded((matrix_total - claimable).max(0.0), matrix_total),
            Interval::banded(0.0, claimable),
        )
    } else {
        (Interval::around(matrix_total), Interval::zero())
    };

    // Eviction reasoning. If the worst-case residency curve (no element
    // ever evicted, every element loaded at its earliest possible step)
    // fits the enforcement budget at every step, enforcement never
    // removes anything and refetch is exactly zero.
    let curve = if geo.eager {
        &mp.worst_live_eager
    } else {
        &mp.worst_live_demand
    };
    let no_eviction = (0..mp.steps).all(|s| curve[s] as f64 * geo.elem_b <= geo.budget(s));

    // Conversely: the elements with `col_step == s && row_step > s` are
    // unconditionally resident when step `s` enforces capacity (demand-
    // loaded this step, not yet IS-consumed). If they alone overflow the
    // budget, the excess is certainly evicted — and certainly refetched,
    // because each has a pending IS consumption.
    let mut guaranteed_evictions = 0.0f64;
    for s in 0..mp.steps {
        let overflow = mp.os_live_at_enforce[s] as f64 * geo.elem_b - geo.budget(s);
        if overflow > 0.0 {
            let evicted = (overflow / geo.elem_b).floor();
            guaranteed_evictions = guaranteed_evictions.max(evicted);
        }
    }
    let thrash = guaranteed_evictions >= 1.0;

    let refetch = if no_eviction {
        Interval::zero()
    } else {
        // Upper bound: refetches are demand loads of previously-loaded
        // elements, and demand loads only fire at an element's two
        // consuming steps. An eager-claimed element can be evicted
        // before its first consumption (one refetch), and any element
        // whose consumptions fall on different steps can be evicted in
        // between (one more); eager never reloads a seen element and the
        // buffer frees an element permanently once fully consumed, so
        // these are the only reload opportunities.
        let ub = geo.fetch_b
            * (if geo.eager { mp.eager_loadable } else { 0 } + mp.deferred_consumptions) as f64;
        Interval::banded(guaranteed_evictions * geo.fetch_b, ub)
    };

    // Dense vector streams follow the engine's closed form exactly; the
    // pipeline spreads them uniformly over the steps, so per-step f64
    // accumulation drift is the only deviation (covered by the band).
    let vec_reads = wp.fused_vector_reads + geo.feature;
    let vec_writes = wp.fused_vector_writes + geo.feature;
    let vec_total = (vec_reads + vec_writes) * n * 8.0;
    let write_fraction = if vec_reads + vec_writes > 0.0 {
        vec_writes / (vec_reads + vec_writes)
    } else {
        0.0
    };
    let vector = Interval::around(vec_total * (1.0 - write_fraction));
    let writeback = Interval::around(vec_total * write_fraction);

    // Occupancy. Floor: the largest single-step cohort of elements that
    // are provably co-resident (demand-loaded at step s and not IS-
    // consumed before s); any non-empty matrix holds at least one
    // element at its load instant. Ceiling: enforcement leaves at most
    // `budget(s) <= cap` bytes resident at every step boundary, and
    // within a step at most one demand burst (the step's OS + IS
    // cohorts) joins on top; eager loads check headroom before loading
    // and can never push occupancy past the capacity on their own.
    let occupancy = if mp.nnz == 0 {
        Interval::zero()
    } else {
        let floor = geo.elem_b * mp.peak_coresident.max(1) as f64;
        let ceil = (nnz * geo.elem_b).min(geo.cap + geo.elem_b * mp.demand_burst_peak as f64);
        Interval::banded(floor.min(ceil), ceil)
    };

    let traffic = TrafficBounds {
        csc,
        csr_eager,
        refetch,
        vector,
        writeback,
    };
    let cost = PassCost {
        kind: PassKind::Fused,
        pass: 0,
        repeats: 1, // caller sets the schedule's repeat count
        steps: mp.steps as u32,
        traffic,
        occupancy_bytes: occupancy,
    };
    (cost, no_eviction, thrash)
}

/// Locates the step witnessing guaranteed thrashing, for the `SP-C002`
/// message (recomputed so [`fused_pass_bounds`] stays a pure bound).
fn thrash_witness(geo: &Geometry<'_>) -> Option<(usize, usize, f64)> {
    let mut worst: Option<(usize, usize, f64)> = None;
    for s in 0..geo.mp.steps {
        let live = geo.mp.os_live_at_enforce[s];
        let budget = geo.budget(s);
        let overflow = live as f64 * geo.elem_b - budget;
        if overflow > 0.0 && worst.is_none_or(|(_, _, w)| overflow > w) {
            worst = Some((s, live, overflow));
        }
    }
    worst
}

/// Traffic of the odd tail iteration of a cross-iteration run,
/// mirroring the engine's analytic tail (fixed 60/40 read/write split).
fn tail_pass_bounds(wp: &WorkloadProfile, mp: &MatrixProfile, fetch_b: f64, pass: u32) -> PassCost {
    let n = f64::from(mp.n);
    let matrix_bytes = mp.nnz as f64 * fetch_b * wp.matrix_passes as f64;
    let vector_bytes = (wp.fused_vector_reads + wp.fused_vector_writes) * n * 8.0;
    PassCost {
        kind: PassKind::UnfusedTail,
        pass,
        repeats: 1,
        steps: 1,
        traffic: TrafficBounds {
            csc: Interval::around(matrix_bytes),
            csr_eager: Interval::zero(),
            refetch: Interval::zero(),
            vector: Interval::around(vector_bytes * 0.6),
            writeback: Interval::around(vector_bytes * 0.4),
        },
        occupancy_bytes: Interval::zero(),
    }
}

/// Traffic of the whole-run closed-form model used for graphs without
/// OEI (the engine folds all iterations into one analytic pass).
fn closed_form_bounds(
    wp: &WorkloadProfile,
    mp: &MatrixProfile,
    fetch_b: f64,
    iterations: usize,
) -> PassCost {
    let n = f64::from(mp.n);
    let iters = iterations as f64;
    let matrix_bytes = wp.matrix_passes as f64 * mp.nnz as f64 * fetch_b;
    let vector_bytes = (wp.fused_vector_reads + wp.fused_vector_writes) * n * 8.0;
    let read_fraction =
        wp.fused_vector_reads / (wp.fused_vector_reads + wp.fused_vector_writes).max(1e-9);
    PassCost {
        kind: PassKind::ClosedForm,
        pass: 0,
        repeats: 1,
        steps: 1,
        traffic: TrafficBounds {
            csc: Interval::around(matrix_bytes * iters),
            csr_eager: Interval::zero(),
            refetch: Interval::zero(),
            vector: Interval::around(vector_bytes * iters * read_fraction),
            writeback: Interval::around(vector_bytes * iters * (1.0 - read_fraction)),
        },
        occupancy_bytes: Interval::zero(),
    }
}

/// Bounds one Gustavson (mxm) sweep of the engine's SpGEMM stage
/// (`sparsepipe_core::spgemm`). `share` mirrors the stage's
/// `fused_iterations` parameter: left-operand, write-back, and rider
/// traffic scale by it, while the stationary row-fetch sequence is
/// charged once per sweep (that *is* the cross-iteration sharing).
/// Returns the pass cost and whether eviction is provably impossible
/// (every touched stationary row fits the residency window together).
fn mxm_pass_bounds(
    wp: &WorkloadProfile,
    geo: &Geometry<'_>,
    share: f64,
    pass: u32,
) -> (PassCost, bool) {
    let mp = geo.mp;
    let n = f64::from(mp.n);
    let nnz = mp.nnz as f64;
    let products = mp.spgemm_products as f64;
    let touched = mp.spgemm_touched_elements as f64;
    let riders = wp.ewise_matrix_passes as f64;

    // Stationary first fetches: exactly one demand load per touched
    // element per sweep — independent of `share` and of evictions (the
    // stage classifies post-eviction re-reads separately).
    let csc = Interval::around(touched * geo.fetch_b);

    // The FIFO residency window never evicts if all touched rows fit in
    // its budget together; otherwise every stationary access beyond each
    // element's first fetch can be a post-eviction re-read. Total
    // element accesses equal the product count.
    let budget = geo.cap * RESIDENCY_FRACTION;
    let no_eviction = touched * geo.elem_b <= budget;
    let refetch = if no_eviction {
        Interval::zero()
    } else {
        Interval::banded(0.0, (products - touched).max(0.0) * geo.fetch_b)
    };

    // The product's population is only enveloped: cancellation can
    // annihilate every entry, and at most `products` merges land in the
    // rows with non-zero expansion (at most n columns each).
    let out_cap = products.min(n * f64::from(mp.spgemm_nonempty_out_rows));
    let vector = Interval::banded(
        share * nnz * geo.fetch_b,
        share * (nnz + 2.0 * riders * out_cap) * geo.fetch_b,
    );
    let writeback = Interval::banded(0.0, share * (1.0 + riders) * out_cap * geo.fetch_b);

    // Occupancy: residency-window bytes plus live accumulator columns.
    // The window never holds more than all touched rows, nor — after its
    // eviction loop — more than max(budget, one indivisible row); the
    // accumulator peak is capped by the widest row expansion and by n.
    // Any formed product leaves at least one live column at some step.
    let occupancy = if products > 0.0 {
        let resident_ub =
            (touched * geo.elem_b).min(budget.max(f64::from(mp.max_row_nnz) * geo.elem_b));
        let acc_ub = n.min(mp.spgemm_max_row_expansion as f64) * ACC_BYTES_PER_COL;
        Interval::banded(ACC_BYTES_PER_COL, resident_ub + acc_ub)
    } else {
        Interval::zero()
    };

    let cost = PassCost {
        kind: PassKind::Mxm,
        pass,
        repeats: 1, // caller sets the schedule's repeat count
        steps: mp.steps as u32,
        traffic: TrafficBounds {
            csc,
            csr_eager: Interval::zero(),
            refetch,
            vector,
            writeback,
        },
        occupancy_bytes: occupancy,
    };
    (cost, no_eviction)
}

/// Output envelope for each operator: dense slot count from the output
/// tensor's kind, populated-element envelope from the operator's
/// semantics (a sparse product can annihilate everything; an e-wise map
/// preserves the slot count but not the population).
fn op_envelopes(program: &SparsepipeProgram, mp: &MatrixProfile) -> Vec<OpEnvelope> {
    let graph = &program.graph;
    let n = f64::from(mp.n);
    let feature = program.profile.feature_dim.max(1) as f64;
    let slots = |kind: TensorKind| match kind {
        TensorKind::Vector => n,
        TensorKind::DenseMatrix => n * feature,
        TensorKind::SparseMatrix => n * n,
        TensorKind::Scalar => 1.0,
    };
    graph
        .ops()
        .map(|(id, op)| {
            let out_kind = graph.tensor(op.output).kind;
            let elements = slots(out_kind);
            let (label, nnz) = match op.kind {
                OpKind::Vxm { .. } => ("vxm", Interval::new(0.0, n)),
                OpKind::Mxv { .. } => ("mxv", Interval::new(0.0, n)),
                OpKind::SpMM { .. } => ("spmm", Interval::new(0.0, elements)),
                // Gustavson fan-out: row i of the product draws from the
                // rows selected by A's row i, so at most nnz(A) · max-row
                // — statically capped by the dense slot count.
                OpKind::Mxm { .. } => ("mxm", Interval::new(0.0, elements)),
                OpKind::DenseMM => ("dense_mm", Interval::new(0.0, elements)),
                OpKind::Reduce { .. } => ("reduce", Interval::new(0.0, 1.0)),
                OpKind::Dot => ("dot", Interval::new(0.0, 1.0)),
                _ => ("ewise", Interval::new(0.0, elements)),
            };
            OpEnvelope {
                op: id,
                output: op.output,
                op_label: label,
                elements,
                nnz,
            }
        })
        .collect()
}

/// Runs the static analysis for `iterations` of `program` over the
/// schedule geometry in `mp`, under `config`.
///
/// The profile must come from the *same* plan the simulator will run:
/// the matrix after `config`'s reordering, at the sub-tensor width
/// `config.subtensor_auto` selects ([`analyze_matrix`] does this).
#[must_use]
pub fn analyze(
    program: &SparsepipeProgram,
    mp: &MatrixProfile,
    config: &SparsepipeConfig,
    iterations: usize,
) -> CostReport {
    let wp = &program.profile;
    let geo = Geometry {
        mp,
        fetch_b: config.fetch_bytes_per_element(),
        elem_b: config.buffer_bytes_per_element(),
        cap: config.buffer_bytes as f64,
        eager: config.eager_csr,
        feature: wp.feature_dim as f64,
    };
    let n = f64::from(mp.n);
    let nnz = mp.nnz as f64;

    let mut passes: Vec<PassCost> = Vec::new();
    let mut no_eviction = true;
    let mut thrash = false;
    if wp.mxm_passes > 0 {
        // Mirror the engine's mxm schedule: cross-iteration OEI fuses two
        // iterations onto one sweep of the stationary rows (plus an
        // unfused tail sweep when the count is odd); otherwise every
        // iteration sweeps on its own.
        let (full_units, remainder) = if wp.cross_iteration {
            (iterations / 2, iterations % 2)
        } else {
            (iterations, 0)
        };
        let share = if wp.cross_iteration { 2.0 } else { 1.0 };
        if full_units > 0 {
            let (mut fused, no_evict) = mxm_pass_bounds(wp, &geo, share, 0);
            fused.repeats = (full_units * wp.mxm_passes) as u64;
            passes.push(fused);
            no_eviction = no_evict;
        }
        if remainder > 0 {
            let (mut tail, no_evict) = mxm_pass_bounds(wp, &geo, 1.0, u32::from(full_units > 0));
            tail.repeats = wp.mxm_passes as u64;
            passes.push(tail);
            no_eviction = no_eviction && no_evict;
        }
    } else if wp.has_oei {
        let (full_passes, remainder) = if wp.cross_iteration {
            (iterations / 2, iterations % 2)
        } else {
            (iterations, 0)
        };
        if full_passes > 0 {
            let (mut fused, no_evict, thrashes) = fused_pass_bounds(wp, &geo);
            fused.repeats = full_passes as u64;
            passes.push(fused);
            no_eviction = no_evict;
            thrash = thrashes;
        }
        if remainder > 0 {
            passes.push(tail_pass_bounds(
                wp,
                mp,
                geo.fetch_b,
                u32::from(full_passes > 0),
            ));
        }
    } else {
        passes.push(closed_form_bounds(wp, mp, geo.fetch_b, iterations));
    }

    // Aggregate exactly the way the engine accumulates: per-pass traffic
    // scaled by its repeat count, summed.
    let mut traffic = TrafficBounds::zero();
    let mut occupancy = Interval::zero();
    for p in &passes {
        traffic = traffic.add(&p.traffic.scale(p.repeats as f64));
        if p.occupancy_bytes.upper > occupancy.upper {
            occupancy = p.occupancy_bytes;
        }
    }

    // Unfused reference: every operator a separate kernel, no
    // cross-iteration sharing. vxm-family sweeps read the matrix image
    // exactly once per pass; an unfused mxm kernel streams the left
    // operand (nnz), demands between `touched` and `products` stationary
    // elements, writes the product, and any e-wise matrix rider streams
    // it again — the product's population is only enveloped, so the
    // reference widens to an interval.
    let out_cap = (mp.spgemm_products as f64).min(n * f64::from(mp.spgemm_nonempty_out_rows));
    let unfused_matrix_per_iter = if wp.mxm_passes > 0 {
        let mxm = wp.mxm_passes as f64;
        let riders = wp.ewise_matrix_passes as f64;
        let vxm_sweeps = (wp.matrix_passes - wp.mxm_passes) as f64 * nnz;
        Interval::banded(
            (vxm_sweeps + mxm * (mp.spgemm_touched_elements as f64 + nnz)) * geo.fetch_b,
            (vxm_sweeps
                + mxm * (mp.spgemm_products as f64 + nnz + out_cap)
                + riders * (2.0 * out_cap + nnz))
                * geo.fetch_b,
        )
    } else {
        Interval::around(wp.matrix_passes as f64 * nnz * geo.fetch_b)
    };
    let unfused_vector_per_iter = (wp.unfused_vector_reads + wp.unfused_vector_writes) * n * 8.0;
    let unfused_total = unfused_matrix_per_iter
        .add(&Interval::around(unfused_vector_per_iter))
        .scale(iterations as f64);

    // Reuse score: guaranteed saving on *stationary* matrix traffic vs
    // unfused execution. For the mxm family the left-operand stream
    // appears identically on both sides, so it is excluded and the score
    // isolates the shared stationary-row fetches.
    let unfused_stationary_lb = if wp.mxm_passes > 0 {
        ((wp.matrix_passes - wp.mxm_passes) as f64 * nnz
            + wp.mxm_passes as f64 * mp.spgemm_touched_elements as f64)
            * geo.fetch_b
    } else {
        wp.matrix_passes as f64 * nnz * geo.fetch_b
    };
    let fused_matrix_ub: f64 = passes
        .iter()
        .map(|p| {
            let per_exec =
                p.traffic.csc.upper + p.traffic.csr_eager.upper + p.traffic.refetch.upper;
            // csc + csr jointly bound nnz·fetch exactly; summing their
            // upper bounds would double-count the swing, so clamp the
            // first-load part to the invariant before adding refetch.
            let first_load_ub = (p.traffic.csc.upper + p.traffic.csr_eager.upper).min(
                if p.kind == PassKind::Fused {
                    nnz * geo.fetch_b * (1.0 + RELATIVE_TOL)
                } else {
                    per_exec
                },
            );
            (first_load_ub + p.traffic.refetch.upper) * p.repeats as f64
        })
        .sum();
    let reuse_score = if wp.has_oei && unfused_stationary_lb > 0.0 {
        (1.0 - fused_matrix_ub / (unfused_stationary_lb * iterations as f64)).clamp(0.0, 1.0)
    } else {
        0.0
    };

    let mut diagnostics = LintReport::new();
    if wp.has_oei && traffic.total().lower >= unfused_total.upper && unfused_total.upper > 0.0 {
        diagnostics.warning(
            "SP-C001",
            None,
            None,
            format!(
                "OEI fusion is legal but statically unprofitable on this matrix: \
                 fused traffic lower bound {:.1} KB >= unfused upper bound {:.1} KB \
                 over {} iteration(s)",
                traffic.total().lower / 1024.0,
                unfused_total.upper / 1024.0,
                iterations,
            ),
        );
    }
    if thrash {
        if let Some((step, live, overflow)) = thrash_witness(&geo) {
            diagnostics.warning(
                "SP-C002",
                None,
                None,
                format!(
                    "buffer capacity {} B statically guarantees thrashing: at step {step}, \
                     {live} provably-resident elements exceed the enforcement budget by \
                     {overflow:.0} B, forcing evictions of elements with pending consumers",
                    config.buffer_bytes,
                ),
            );
        }
    }
    if wp.mxm_passes > 0 && nnz > 0.0 {
        let expansion_ub = mp.spgemm_products as f64 / nnz;
        let acc_cols = n.min(mp.spgemm_max_row_expansion as f64);
        let acc_bytes = acc_cols * ACC_BYTES_PER_COL;
        let headroom = geo.cap * (1.0 - RESIDENCY_FRACTION);
        if expansion_ub >= 8.0 || acc_bytes > headroom {
            diagnostics.warning(
                "SP-C004",
                None,
                None,
                format!(
                    "Gustavson expansion pressure: the SpGEMM intermediate is up to \
                     {expansion_ub:.1}x the stored non-zeros, and the sparse accumulator \
                     can hold {acc_cols:.0} live columns ({acc_bytes:.0} B against the \
                     {headroom:.0} B outside the residency window); consider masking the \
                     product or reducing the scale"
                ),
            );
        }
    }

    CostReport {
        has_oei: wp.has_oei,
        cross_iteration: wp.cross_iteration,
        iterations,
        n: mp.n,
        nnz: mp.nnz,
        t_cols: mp.t_cols,
        envelopes: op_envelopes(program, mp),
        passes,
        traffic,
        occupancy_bytes: occupancy,
        unfused_traffic_total: unfused_total,
        reuse_score,
        no_eviction_guaranteed: no_eviction,
        thrash_guaranteed: thrash,
        diagnostics,
    }
}

/// [`analyze`] for a raw matrix: builds the pass plan at the sub-tensor
/// width the simulator would pick (`config.subtensor_auto`) and derives
/// the [`MatrixProfile`] from it.
///
/// The caller must pass the matrix **after** any reordering the
/// configuration applies, exactly as the simulator receives it.
///
/// # Panics
///
/// Panics if the matrix is not square (OEI plans require square
/// matrices, as does the engine).
#[must_use]
pub fn analyze_matrix(
    program: &SparsepipeProgram,
    matrix: &CooMatrix,
    config: &SparsepipeConfig,
    iterations: usize,
) -> CostReport {
    let t = config.subtensor_auto(matrix.ncols(), matrix.nnz());
    let plan = PassPlan::build(matrix, t);
    analyze(program, &MatrixProfile::build(&plan), config, iterations)
}

/// Matrix-free fusion-profitability advisory (`SP-C003`), run at
/// compile time via [`crate::lint_program`]: warns when OEI fusion
/// *adds* dense-vector traffic relative to unfused execution, because
/// then fusion only pays off above a matrix-density break-even point
/// the compiler cannot check without the matrix.
#[must_use]
pub fn lint_fusion_profile(wp: &WorkloadProfile) -> LintReport {
    let mut report = LintReport::new();
    if !wp.has_oei {
        return report;
    }
    let feature = wp.feature_dim as f64;
    // Iterations covered by one fused sweep: 2 cross-iteration, else 1.
    let span = if wp.cross_iteration { 2.0 } else { 1.0 };
    let fused_vec_per_iter =
        (wp.fused_vector_reads + wp.fused_vector_writes + 2.0 * feature) / span;
    let unfused_vec_per_iter = wp.unfused_vector_reads + wp.unfused_vector_writes;
    let overhead = fused_vec_per_iter - unfused_vec_per_iter;
    if overhead <= 0.0 {
        return report;
    }
    // Matrix sweeps saved per iteration: unfused runs `matrix_passes`
    // sweeps, fused runs 1/span.
    let sweeps_saved = wp.matrix_passes as f64 - 1.0 / span;
    // overhead · n · 8  <=  sweeps_saved · nnz · fetch   (blocked layout:
    // 10.5 B per element)  ⇔  nnz/n >= overhead · 8 / (sweeps_saved · 10.5)
    let break_even = overhead * 8.0 / (sweeps_saved.max(1e-9) * 10.5);
    report.warning(
        "SP-C003",
        None,
        None,
        format!(
            "OEI fusion streams {overhead:.1} extra n-vector pass(es) per iteration versus \
             unfused execution; statically profitable only when the matrix averages more \
             than {break_even:.1} non-zeros per row (blocked layout)"
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsepipe_frontend::{compile, GraphBuilder};
    use sparsepipe_semiring::{EwiseBinary, SemiringOp};
    use sparsepipe_tensor::gen;

    fn pagerank() -> SparsepipeProgram {
        let mut b = GraphBuilder::new();
        let pr = b.input_vector("pr");
        let l = b.constant_matrix("L");
        let y = b.vxm(pr, l, SemiringOp::MulAdd).unwrap();
        let s = b.ewise_scalar(EwiseBinary::Mul, y, 0.85).unwrap();
        let next = b.ewise_scalar(EwiseBinary::Add, s, 0.15).unwrap();
        b.carry(next, pr).unwrap();
        compile(&b.build().unwrap(), 1).unwrap()
    }

    fn report_for(iterations: usize) -> CostReport {
        let program = pagerank();
        let m = gen::power_law(256, 2048, 1.0, 0.4, 7);
        analyze_matrix(&program, &m, &SparsepipeConfig::iso_gpu(), iterations)
    }

    #[test]
    fn interval_arithmetic() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(3.0, 5.0);
        assert_eq!(a.add(&b), Interval::new(4.0, 7.0));
        assert_eq!(a.scale(2.0), Interval::new(2.0, 4.0));
        assert!(a.contains(1.0) && a.contains(2.0) && !a.contains(2.1));
        assert_eq!(Interval::around(0.0), Interval::zero());
        let w = Interval::around(100.0);
        assert!(w.lower < 100.0 && 100.0 < w.upper && w.width() < 1e-6);
    }

    #[test]
    fn cross_iteration_pass_structure_matches_engine() {
        let r = report_for(21);
        assert!(r.has_oei && r.cross_iteration);
        assert_eq!(r.passes.len(), 2, "10 fused passes + odd tail");
        assert_eq!(r.passes[0].kind, PassKind::Fused);
        assert_eq!(r.passes[0].repeats, 10);
        assert_eq!(r.passes[1].kind, PassKind::UnfusedTail);
        assert_eq!(r.passes[1].pass, 1);
        let even = report_for(20);
        assert_eq!(even.passes.len(), 1);
        let single = report_for(1);
        assert_eq!(single.passes.len(), 1);
        assert_eq!(single.passes[0].kind, PassKind::UnfusedTail);
        assert_eq!(single.passes[0].pass, 0, "no fused pass precedes the tail");
    }

    #[test]
    fn bounds_are_ordered_and_positive() {
        let r = report_for(20);
        for p in &r.passes {
            for (name, iv) in p.traffic.categories() {
                assert!(iv.lower >= 0.0, "{name} lower negative");
                assert!(iv.lower <= iv.upper, "{name} interval inverted");
            }
            assert!(p.occupancy_bytes.lower <= p.occupancy_bytes.upper);
        }
        let total = r.traffic.total();
        assert!(total.lower > 0.0 && total.lower <= total.upper);
        assert!(r.reuse_score >= 0.0 && r.reuse_score <= 1.0);
        // cross-iteration reuse must show up for PageRank
        assert!(
            r.reuse_score > 0.25,
            "expected substantial matrix-traffic reuse, got {}",
            r.reuse_score
        );
    }

    #[test]
    fn first_load_invariant_links_csc_and_csr() {
        let r = report_for(20);
        let fused = &r.passes[0];
        let fetch = SparsepipeConfig::iso_gpu().fetch_bytes_per_element();
        let matrix_total = r.nnz as f64 * fetch;
        // the two first-load categories jointly cover the matrix exactly
        assert!(fused.traffic.csc.upper <= matrix_total * (1.0 + 2e-9));
        assert!(
            fused.traffic.csc.lower + fused.traffic.csr_eager.upper >= matrix_total * (1.0 - 2e-9)
        );
    }

    #[test]
    fn envelopes_cover_every_op() {
        let program = pagerank();
        let r = report_for(2);
        assert_eq!(r.envelopes.len(), program.graph.ops().count());
        let vxm = &r.envelopes[0];
        assert_eq!(vxm.op_label, "vxm");
        assert_eq!(vxm.elements, f64::from(r.n));
        assert!(vxm.nnz.contains(0.0) && vxm.nnz.contains(f64::from(r.n)));
    }

    #[test]
    fn tiny_buffer_guarantees_thrashing() {
        let program = pagerank();
        let m = gen::uniform(256, 256, 8_192, 11);
        let mut config = SparsepipeConfig::iso_gpu();
        config.buffer_bytes = 256; // a couple dozen elements at most
        let r = analyze_matrix(&program, &m, &config, 8);
        assert!(r.thrash_guaranteed, "dense rows must overflow 256 B");
        assert!(!r.no_eviction_guaranteed);
        assert!(r.diagnostics.has_code("SP-C002"));
        assert!(r.passes[0].traffic.refetch.lower > 0.0);
    }

    #[test]
    fn huge_buffer_guarantees_no_eviction() {
        let program = pagerank();
        let m = gen::power_law(128, 1024, 1.0, 0.4, 3);
        let mut config = SparsepipeConfig::iso_gpu();
        config.buffer_bytes = 64 << 20;
        let r = analyze_matrix(&program, &m, &config, 4);
        assert!(r.no_eviction_guaranteed);
        assert!(!r.thrash_guaranteed);
        assert_eq!(r.passes[0].traffic.refetch, Interval::zero());
        assert!(!r.diagnostics.has_code("SP-C002"));
    }

    #[test]
    fn non_oei_graph_uses_closed_form() {
        // no carry → no OEI
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let a = b.constant_matrix("A");
        let _ = b.vxm(v, a, SemiringOp::MulAdd).unwrap();
        let program = compile(&b.build().unwrap(), 1).unwrap();
        assert!(!program.profile.has_oei);
        let m = gen::power_law(128, 1024, 1.0, 0.4, 3);
        let r = analyze_matrix(&program, &m, &SparsepipeConfig::iso_gpu(), 6);
        assert_eq!(r.passes.len(), 1);
        assert_eq!(r.passes[0].kind, PassKind::ClosedForm);
        assert_eq!(r.reuse_score, 0.0);
        assert_eq!(r.occupancy_bytes, Interval::zero());
    }

    fn msbfs_like() -> SparsepipeProgram {
        let mut b = GraphBuilder::new();
        let f = b.input_matrix("F");
        let a = b.constant_matrix("A");
        let next = b.mxm(f, a, SemiringOp::AndOr).unwrap();
        b.carry(next, f).unwrap();
        compile(&b.build().unwrap(), 1).unwrap()
    }

    fn tri_like() -> SparsepipeProgram {
        let mut b = GraphBuilder::new();
        let a = b.constant_matrix("A");
        let sq = b.mxm(a, a, SemiringOp::MulAdd).unwrap();
        let _ = b.ewise_matrix(EwiseBinary::Mul, sq, a).unwrap();
        compile(&b.build().unwrap(), 1).unwrap()
    }

    #[test]
    fn mxm_pass_structure_matches_engine() {
        let program = msbfs_like();
        let m = gen::power_law(256, 2048, 1.0, 0.4, 7);
        let config = SparsepipeConfig::iso_gpu();
        let odd = analyze_matrix(&program, &m, &config, 9);
        assert!(odd.cross_iteration);
        assert_eq!(odd.passes.len(), 2, "4 fused units + odd tail sweep");
        assert_eq!(odd.passes[0].kind, PassKind::Mxm);
        assert_eq!(odd.passes[0].repeats, 4);
        assert_eq!(odd.passes[1].kind, PassKind::Mxm);
        assert_eq!(odd.passes[1].pass, 1);
        assert_eq!(odd.passes[1].repeats, 1);
        let even = analyze_matrix(&program, &m, &config, 8);
        assert_eq!(even.passes.len(), 1);
        assert_eq!(even.passes[0].repeats, 4);
        // Two-iteration sharing halves the stationary fetches exactly.
        assert!(
            (even.reuse_score - 0.5).abs() < 1e-6,
            "expected ~0.5 reuse, got {}",
            even.reuse_score
        );
        // No carry → no cross-iteration sharing: one sweep per iteration.
        let pc = analyze_matrix(&tri_like(), &m, &config, 6);
        assert!(!pc.cross_iteration);
        assert_eq!(pc.passes.len(), 1);
        assert_eq!(pc.passes[0].kind, PassKind::Mxm);
        assert_eq!(pc.passes[0].repeats, 6);
    }

    fn assert_brackets(
        program: &SparsepipeProgram,
        m: &CooMatrix,
        config: &SparsepipeConfig,
        iterations: usize,
    ) {
        let outcome = sparsepipe_core::SimRequest::new(program, m)
            .iterations(iterations)
            .config(*config)
            .run()
            .unwrap();
        let r = analyze_matrix(program, m, config, iterations);
        let actual = &outcome.report.traffic;
        for (name, iv, got) in [
            ("csc", r.traffic.csc, actual.csc_bytes),
            ("csr_eager", r.traffic.csr_eager, actual.csr_eager_bytes),
            ("refetch", r.traffic.refetch, actual.refetch_bytes),
            ("vector", r.traffic.vector, actual.vector_bytes),
            ("writeback", r.traffic.writeback, actual.writeback_bytes),
        ] {
            assert!(
                iv.contains(got),
                "{name}: actual {got} outside [{}, {}] ({iterations} iters)",
                iv.lower,
                iv.upper
            );
        }
        assert!(
            r.occupancy_bytes.contains(outcome.report.buffer_peak_bytes),
            "occupancy: actual {} outside [{}, {}]",
            outcome.report.buffer_peak_bytes,
            r.occupancy_bytes.lower,
            r.occupancy_bytes.upper
        );
    }

    #[test]
    fn mxm_bounds_bracket_simulator_actuals() {
        use sparsepipe_core::Preprocessing;
        let m = gen::power_law(256, 2048, 1.0, 0.4, 7);
        let ample = SparsepipeConfig::iso_gpu().with_preprocessing(Preprocessing::none());
        for program in [msbfs_like(), tri_like()] {
            for iters in [8usize, 9] {
                assert_brackets(&program, &m, &ample, iters);
            }
        }
        // A tight residency window exercises the refetch envelope.
        let tight = ample.with_buffer(8 << 10);
        assert_brackets(&msbfs_like(), &m, &tight, 6);
        let r = analyze_matrix(&msbfs_like(), &m, &tight, 6);
        assert!(!r.no_eviction_guaranteed);
        assert!(r.passes[0].traffic.refetch.upper > 0.0);
    }

    #[test]
    fn spc004_flags_expansion_pressure() {
        // Star graph: the hub row fans out to everything and every row
        // feeds the hub, so products ≈ (n-1)² over 2(n-1) stored entries.
        let n = 128u32;
        let mut entries: Vec<(u32, u32, f64)> = (1..n).map(|j| (0, j, 1.0)).collect();
        entries.extend((1..n).map(|k| (k, 0, 1.0)));
        let star = CooMatrix::from_entries(n, n, entries).unwrap();
        let config = SparsepipeConfig::iso_gpu();
        let r = analyze_matrix(&tri_like(), &star, &config, 4);
        assert!(r.diagnostics.has_code("SP-C004"), "{}", r.diagnostics);
        assert!(r.diagnostics.is_clean(), "SP-C004 is advisory");
        // A flat sparse matrix stays quiet…
        let flat = gen::uniform(400, 400, 1200, 3);
        let quiet = analyze_matrix(&msbfs_like(), &flat, &config, 4);
        assert!(
            !quiet.diagnostics.has_code("SP-C004"),
            "{}",
            quiet.diagnostics
        );
        // …and vxm-only programs never emit it.
        let rv = analyze_matrix(&pagerank(), &star, &config, 4);
        assert!(!rv.diagnostics.has_code("SP-C004"));
    }

    #[test]
    fn compile_time_advisory_fires_only_on_vector_overhead() {
        // PageRank's fusion strictly reduces vector traffic: no advisory.
        let clean = lint_fusion_profile(&pagerank().profile);
        assert!(!clean.has_code("SP-C003"), "{clean}");
        // Fabricate a profile where fusion adds vector passes.
        let mut wp = pagerank().profile.clone();
        wp.fused_vector_reads = wp.unfused_vector_reads + 6.0;
        wp.fused_vector_writes = wp.unfused_vector_writes + 6.0;
        let noisy = lint_fusion_profile(&wp);
        assert!(noisy.has_code("SP-C003"), "{noisy}");
        assert!(noisy.is_clean(), "advisories are warnings, not errors");
    }
}
