//! The stable diagnostic-code catalog.
//!
//! Every finding this crate can emit carries a code from this table;
//! codes are append-only and never reused, so downstream tooling (CI
//! filters, the bench CLI, golden snapshots) can match on them across
//! versions. The human-facing catalog lives in `LINTS.md` at the
//! repository root; the `catalog_covers_every_emitted_code` test keeps
//! source, table, and document in sync.

/// One catalog entry: a stable code and its one-line meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable code, e.g. `"SP-G003"`.
    pub code: &'static str,
    /// Whether findings with this code are errors or warnings.
    pub severity: crate::Severity,
    /// One-line summary of what the code means.
    pub summary: &'static str,
}

use crate::Severity::{Error, Warning};

/// Every diagnostic code this crate can emit, grouped by family.
pub const CATALOG: &[CodeInfo] = &[
    // SP-G: graph well-formedness
    CodeInfo {
        code: "SP-G001",
        severity: Error,
        summary: "op or carry references a tensor id the graph does not contain",
    },
    CodeInfo {
        code: "SP-G002",
        severity: Error,
        summary: "topological order references a nonexistent op",
    },
    CodeInfo {
        code: "SP-G003",
        severity: Error,
        summary: "tensor is produced by more than one op (SSA violation)",
    },
    CodeInfo {
        code: "SP-G004",
        severity: Error,
        summary: "tensor role contradicts its producer (produced without one, or vice versa)",
    },
    CodeInfo {
        code: "SP-G005",
        severity: Error,
        summary: "topological order duplicates or omits ops",
    },
    CodeInfo {
        code: "SP-G006",
        severity: Error,
        summary: "topological order schedules a consumer before its producer",
    },
    CodeInfo {
        code: "SP-G007",
        severity: Error,
        summary: "dependence cycle not broken by a loop-carried edge",
    },
    CodeInfo {
        code: "SP-G008",
        severity: Error,
        summary: "loop-carry edge violates the kind/role carry rules",
    },
    // SP-S: shape & semiring consistency
    CodeInfo {
        code: "SP-S001",
        severity: Error,
        summary: "operand kind/shape is incompatible with the operator's signature",
    },
    CodeInfo {
        code: "SP-S002",
        severity: Error,
        summary: "operator has the wrong number of operands",
    },
    CodeInfo {
        code: "SP-S003",
        severity: Error,
        summary: "operator's semiring fails its algebraic identity probes",
    },
    CodeInfo {
        code: "SP-S004",
        severity: Warning,
        summary: "e-wise immediate operand is non-finite",
    },
    CodeInfo {
        code: "SP-S005",
        severity: Warning,
        summary:
            "loop-input sparse matrix is never carried into (de facto constant, forfeits reuse)",
    },
    // SP-O: OEI fusion-legality oracle cross-check
    CodeInfo {
        code: "SP-O001",
        severity: Error,
        summary: "analysis claims an OEI fusion the independent oracle finds illegal",
    },
    CodeInfo {
        code: "SP-O002",
        severity: Error,
        summary: "oracle finds a legal OEI fusion the analysis missed",
    },
    CodeInfo {
        code: "SP-O003",
        severity: Error,
        summary: "analysis and oracle disagree on the cross_iteration flag",
    },
    CodeInfo {
        code: "SP-O004",
        severity: Error,
        summary: "fused op pair is not a legal OEI pairing per the oracle",
    },
    CodeInfo {
        code: "SP-O005",
        severity: Error,
        summary: "reported fusion path is malformed (dependency, taint, or carry-count violation)",
    },
    CodeInfo {
        code: "SP-O006",
        severity: Error,
        summary: "side-operand taint set disagrees between oracle and analysis",
    },
    // SP-P: pass-plan feasibility
    CodeInfo {
        code: "SP-P001",
        severity: Error,
        summary: "plan step count disagrees with ceil(n / t_cols) or t_cols is zero",
    },
    CodeInfo {
        code: "SP-P002",
        severity: Error,
        summary: "csc_ptr is not a monotone 0..nnz step index",
    },
    CodeInfo {
        code: "SP-P003",
        severity: Error,
        summary: "csc_order is not a permutation grouped by col_step",
    },
    CodeInfo {
        code: "SP-P004",
        severity: Error,
        summary: "col_step/row_step entry count or range is wrong",
    },
    CodeInfo {
        code: "SP-P005",
        severity: Error,
        summary: "row_ptr_by_step is not monotone or disagrees with row_step",
    },
    CodeInfo {
        code: "SP-P006",
        severity: Error,
        summary: "vec_live has the wrong length or exceeds the vector span",
    },
    CodeInfo {
        code: "SP-P007",
        severity: Warning,
        summary: "per-step working set approaches or exceeds the buffer capacity",
    },
    // SP-E: sparse-einsum front door
    CodeInfo {
        code: "SP-E001",
        severity: Error,
        summary: "expression fails to lex or parse (syntax violation)",
    },
    CodeInfo {
        code: "SP-E002",
        severity: Error,
        summary: "unknown semiring, function, or reduction name",
    },
    CodeInfo {
        code: "SP-E003",
        severity: Error,
        summary: "index count or operand kind is inconsistent with the tensor",
    },
    CodeInfo {
        code: "SP-E004",
        severity: Error,
        summary: "contraction index structure matches no operator",
    },
    CodeInfo {
        code: "SP-E005",
        severity: Error,
        summary: "program structure fails to lower (reassignment, bad carry, cycle)",
    },
    CodeInfo {
        code: "SP-E006",
        severity: Warning,
        summary: "no matrix contraction: the program compiles to no OS/IS pass",
    },
    CodeInfo {
        code: "SP-E007",
        severity: Warning,
        summary: "declared tensor or produced result is never used",
    },
    // SP-C: static cost & reuse analysis
    CodeInfo {
        code: "SP-C001",
        severity: Warning,
        summary: "OEI fusion is legal but statically unprofitable on the analyzed matrix",
    },
    CodeInfo {
        code: "SP-C002",
        severity: Warning,
        summary: "buffer capacity statically guarantees eviction thrashing",
    },
    CodeInfo {
        code: "SP-C003",
        severity: Warning,
        summary: "fusion adds vector traffic; profitable only above a matrix-density break-even",
    },
    CodeInfo {
        code: "SP-C004",
        severity: Warning,
        summary: "SpGEMM expansion pressure: intermediate or accumulator statically dominates",
    },
];

/// Looks up a code's catalog entry.
#[must_use]
pub fn lookup(code: &str) -> Option<&'static CodeInfo> {
    CATALOG.iter().find(|info| info.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::path::Path;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = BTreeSet::new();
        for info in CATALOG {
            assert!(
                seen.insert(info.code),
                "duplicate catalog code {}",
                info.code
            );
            let bytes = info.code.as_bytes();
            assert_eq!(bytes.len(), 7, "{} is not SP-Xnnn", info.code);
            assert!(info.code.starts_with("SP-"), "{}", info.code);
            assert!(bytes[3].is_ascii_uppercase(), "{}", info.code);
            assert!(bytes[4..].iter().all(u8::is_ascii_digit), "{}", info.code);
            assert!(!info.summary.is_empty());
        }
    }

    /// Extracts every `"SP-Xnnn"` string literal from a source file.
    fn codes_in(text: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for (i, _) in text.match_indices("\"SP-") {
            let lit = &text[i + 1..];
            if lit.len() >= 8 && lit.as_bytes()[7] == b'"' {
                let code = &lit[..7];
                let b = code.as_bytes();
                if b[3].is_ascii_uppercase() && b[4..7].iter().all(u8::is_ascii_digit) {
                    out.insert(code.to_string());
                }
            }
        }
        out
    }

    #[test]
    fn catalog_covers_every_emitted_code() {
        let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let mut emitted = BTreeSet::new();
        for entry in std::fs::read_dir(&src).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "rs") {
                emitted.extend(codes_in(&std::fs::read_to_string(&path).unwrap()));
            }
        }
        let cataloged: BTreeSet<String> = CATALOG.iter().map(|i| i.code.to_string()).collect();
        let missing: Vec<_> = emitted.difference(&cataloged).collect();
        assert!(
            missing.is_empty(),
            "codes used in src/ but absent from the catalog: {missing:?}"
        );
        let stale: Vec<_> = cataloged.difference(&emitted).collect();
        assert!(
            stale.is_empty(),
            "catalog codes no check ever emits: {stale:?}"
        );
    }

    #[test]
    fn lints_md_documents_every_code() {
        let doc = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../LINTS.md");
        let text =
            std::fs::read_to_string(&doc).expect("LINTS.md must exist at the repository root");
        for info in CATALOG {
            assert!(
                text.contains(info.code),
                "{} is not documented in LINTS.md",
                info.code
            );
        }
    }

    #[test]
    fn lookup_finds_known_codes() {
        let info = lookup("SP-C001").unwrap();
        assert_eq!(info.severity, crate::Severity::Warning);
        assert!(lookup("SP-unknown").is_none());
    }
}
