//! Front-door checks for sparse-einsum expressions — the `SP-E` family.
//!
//! The einsum front end (`sparsepipe_frontend::einsum`) rejects bad input
//! with spanned, typed errors; this module maps each rejection class onto
//! a stable diagnostic code and adds two advisory checks the front end
//! itself cannot express (a lowered program that no backend pass will
//! accept, and declarations or results that are dead weight). The graph
//! checks (`SP-G`/`SP-S`/…) still apply to the lowered graph — callers
//! compose this report with [`crate::lint_program`].

use sparsepipe_frontend::einsum::{
    self, ast::Operand, ast::Program, ast::Rhs, EinsumError, EinsumErrorKind, Lowered,
};
use sparsepipe_frontend::TensorRole;

use crate::LintReport;

/// Outcome of checking one expression: the parse/lower products (as far
/// as they got) plus every finding.
#[derive(Debug, Clone)]
pub struct ExpressionCheck {
    /// The parsed AST, if parsing succeeded.
    pub program: Option<Program>,
    /// The lowered graph bundle, if lowering succeeded.
    pub lowered: Option<Lowered>,
    /// The findings, in check order.
    pub report: LintReport,
}

/// The stable code for one front-end rejection class.
#[must_use]
pub fn code_for(kind: EinsumErrorKind) -> &'static str {
    match kind {
        EinsumErrorKind::Syntax => "SP-E001",
        EinsumErrorKind::UnknownOperator => "SP-E002",
        EinsumErrorKind::Arity => "SP-E003",
        EinsumErrorKind::Contraction => "SP-E004",
        EinsumErrorKind::Structure => "SP-E005",
    }
}

fn record(report: &mut LintReport, e: &EinsumError) {
    report.error(code_for(e.kind), None, None, e.to_string());
}

/// Parses, lowers, and checks one sparse-einsum expression.
///
/// Rejections surface as `SP-E001`–`SP-E005` errors; accepted programs
/// may still collect `SP-E006` (no matrix operator — the compile stack
/// will refuse it) and `SP-E007` (unused declaration or dead result)
/// warnings.
#[must_use]
pub fn check_expression(src: &str) -> ExpressionCheck {
    let mut report = LintReport::new();
    let program = match einsum::parse(src) {
        Ok(p) => p,
        Err(e) => {
            record(&mut report, &e);
            return ExpressionCheck {
                program: None,
                lowered: None,
                report,
            };
        }
    };
    let lowered = match einsum::lower(&program) {
        Ok(l) => l,
        Err(e) => {
            record(&mut report, &e);
            return ExpressionCheck {
                program: Some(program),
                lowered: None,
                report,
            };
        }
    };
    advisory_checks(&program, &lowered, &mut report);
    ExpressionCheck {
        program: Some(program),
        lowered: Some(lowered),
        report,
    }
}

fn operand_names<'a>(rhs: &'a Rhs, out: &mut Vec<&'a str>) {
    let mut push = |op: &'a Operand| {
        if let Operand::Tensor { name, .. } = op {
            out.push(name);
        }
    };
    match rhs {
        Rhs::Contract(a, b) | Rhs::Binary(_, a, b) | Rhs::Dot(a, b) => {
            push(a);
            push(b);
        }
        Rhs::Unary(_, a) | Rhs::Reduce(_, a) => push(a),
    }
}

fn advisory_checks(program: &Program, lowered: &Lowered, report: &mut LintReport) {
    // SP-E006: nothing touches a matrix — `compile` will reject the
    // program as a pure e-wise chain with no pass structure.
    if !lowered.graph.ops().any(|(_, op)| op.kind.touches_matrix()) {
        report.warning(
            "SP-E006",
            None,
            None,
            "no matrix contraction: the program compiles to no OS/IS pass and \
             the backend will refuse it",
        );
    }

    // SP-E007 (declarations): a declared tensor no statement or carry
    // ever references.
    let mut referenced: Vec<&str> = Vec::new();
    for stmt in &program.stmts {
        operand_names(&stmt.rhs, &mut referenced);
    }
    for c in &program.settings.carries {
        referenced.push(&c.to);
        if let Some(from) = &c.from {
            referenced.push(from);
        }
    }
    for d in &program.decls {
        if !referenced.iter().any(|n| *n == d.name) {
            report.warning(
                "SP-E007",
                None,
                None,
                format!("declared tensor `{}` is never used", d.name),
            );
        }
    }

    // SP-E007 (results): a produced tensor nothing consumes, nothing
    // carries, and that is not the program's final result.
    let last_target = program.stmts.last().map(|s| s.target.as_str());
    for (id, node) in lowered.graph.tensors() {
        if node.role != TensorRole::Produced
            || node.carries_into.is_some()
            || Some(node.name.as_str()) == last_target
        {
            continue;
        }
        if lowered.graph.consumers(id).is_empty() {
            report.warning(
                "SP-E007",
                None,
                Some(id),
                format!("result `{}` is never consumed or carried", node.name),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<&'static str> {
        check_expression(src)
            .report
            .diagnostics()
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_pagerank_expression_has_no_findings() {
        let check = check_expression(
            "contrib[j] +.*= pr[i] * L[i,j]; next[j] = contrib[j] * 0.85 @ carry=next->pr",
        );
        assert!(check.report.is_clean());
        assert!(check.report.diagnostics().is_empty());
        assert!(check.lowered.is_some());
    }

    #[test]
    fn each_rejection_class_maps_to_its_code() {
        assert_eq!(codes("y[j] +.*= x[i] * A[i,j"), ["SP-E001"]);
        assert_eq!(codes("y[j] max.*= x[i] * A[i,j]"), ["SP-E002"]);
        assert_eq!(codes("in x[i]; y[j] +.*= x[i,k] * A[i,j]"), ["SP-E003"]);
        assert_eq!(codes("y[k] +.*= x[i] * A[j,k]"), ["SP-E004"]);
        assert_eq!(
            codes("y[j] +.*= x[i] * A[i,j]; y[j] = y[j] + 1.0"),
            ["SP-E005"]
        );
    }

    #[test]
    fn matrix_free_program_warns_sp_e006() {
        let check = check_expression("y[i] = x[i] + 1.0");
        assert!(check.report.has_code("SP-E006"));
        assert!(check.report.is_clean(), "SP-E006 is advisory");
    }

    #[test]
    fn unused_decl_and_dead_result_warn_sp_e007() {
        let check = check_expression(
            "in ghost[i]; y[j] +.*= x[i] * A[i,j]; dead[j] = y[j] * 2.0; out[j] = y[j] + 1.0",
        );
        let findings: Vec<_> = check
            .report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "SP-E007")
            .map(|d| d.message.clone())
            .collect();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].contains("ghost"));
        assert!(findings[1].contains("dead"));
    }
}
