//! Independent OEI fusion-legality oracle (`SP-O…`).
//!
//! `sparsepipe_frontend::analysis::analyze` decides, per graph, whether two
//! matrix operators may fuse under the OEI dataflow. A wrong answer is
//! costly in both directions: a false *positive* simulates an illegal
//! schedule (the CG/BiCGSTAB scalar-reduction hazard), a false *negative*
//! silently forfeits the paper's headline reuse. This module re-derives
//! the legality conditions of §III-A **from scratch** — a taint fixpoint
//! instead of the analyzer's worklist, a DFS pair enumeration instead of
//! its first-hit BFS — and cross-checks the analyzer's published
//! [`Analysis`] against the oracle's answer.
//!
//! The legality conditions re-derived here:
//!
//! 1. a path from the OS matrix op's output to the IS matrix op's vector
//!    input, crossing **at most one** loop-carried edge;
//! 2. every op on the path has *sub-tensor dependency*
//!    ([`sparsepipe_frontend::OpKind::has_subtensor_dependency`]);
//! 3. no op on the path takes a **side operand tainted** by a matrix op of
//!    the same iteration (a scalar like CG's `α = rᵀr/pᵀAp` depends on
//!    every element of the `vxm` output — the scalar-reduction blocker);
//! 4. both matrix ops read the **same shared matrix** operand;
//! 5. a cross-iteration pairing additionally requires the shared matrix
//!    to **persist** across the carry (role `Constant`): sharing one
//!    sweep between two iterations is meaningless if the carry replaces
//!    the matrix in between (Markov clustering's `mxm(M, M)`).
//!
//! Condition (2) admits one non-e-wise shape: an `mxm` whose *flowing*
//! (left) operand is the path tensor and whose stationary (right)
//! operand is a `Constant`. Under Gustavson's dataflow, row `i` of
//! `T·W` needs only row `i` of `T`, so the op preserves the sub-tensor
//! dependency the OEI pipeline relies on — the same argument that puts
//! GCN's `DenseMM` on the path (Fig 5 of the paper).
//!
//! | code | disagreement |
//! |---|---|
//! | SP-O001 | analysis claims OEI; the oracle finds no legal pair |
//! | SP-O002 | the oracle finds a legal pair; analysis claims none |
//! | SP-O003 | pair agreed, but the `cross_iteration` flag differs |
//! | SP-O004 | the analysis's specific (os, is) pair is not legal |
//! | SP-O005 | the reported e-wise path is broken or illegal |
//! | SP-O006 | the analysis's taint set differs from the oracle's |

use std::collections::HashSet;

use sparsepipe_frontend::analysis::{Analysis, OeiSubgraph};
use sparsepipe_frontend::{DataflowGraph, OpId, OpKind, OpNode, TensorId, TensorRole};

use crate::diag::LintReport;

/// One legal OEI pairing found by the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OraclePair {
    /// The output-stationary matrix op.
    pub os_op: OpId,
    /// The input-stationary matrix op.
    pub is_op: OpId,
    /// Whether the connecting path crosses a loop-carried edge.
    pub cross_iteration: bool,
}

/// Recomputes the tainted-tensor set as a dataflow fixpoint: a tensor is
/// tainted when it is a matrix op's output or any of its producer's inputs
/// is tainted (within one iteration — loop-carried edges do not propagate).
pub fn derive_taint(g: &DataflowGraph) -> Vec<bool> {
    let mut tainted = vec![false; g.n_tensors()];
    loop {
        let mut changed = false;
        for (_, op) in g.ops() {
            let out_tainted =
                op.kind.touches_matrix() || op.inputs.iter().any(|&t| tainted[t.index()]);
            if out_tainted && !tainted[op.output.index()] {
                tainted[op.output.index()] = true;
                changed = true;
            }
        }
        if !changed {
            return tainted;
        }
    }
}

/// Enumerates **every** legal OEI pairing in `g` by depth-first search
/// from each matrix op's output.
pub fn derive_pairs(g: &DataflowGraph) -> Vec<OraclePair> {
    let tainted = derive_taint(g);
    let matrix_ops: Vec<OpId> = g
        .ops()
        .filter(|(_, op)| op.kind.touches_matrix())
        .map(|(id, _)| id)
        .collect();

    let mut pairs = Vec::new();
    for &os_op in &matrix_ops {
        let Some(&shared_matrix) = g.op(os_op).inputs.get(1) else {
            continue;
        };
        // Condition (5): only a `Constant` matrix is the same bytes next
        // iteration; an `Input` matrix is overwritten by the carry.
        let shared_persists = g.tensor(shared_matrix).role == TensorRole::Constant;
        let mut visited: HashSet<(TensorId, bool)> = HashSet::new();
        let mut stack = vec![(g.op(os_op).output, false)];
        visited.insert((g.op(os_op).output, false));
        while let Some((cur, crossed)) = stack.pop() {
            for consumer in g.consumers(cur) {
                let node = g.op(consumer);
                // Terminal: a matrix op reading `cur` as its vector operand
                // over the same shared matrix.
                if node.kind.touches_matrix()
                    && node.inputs.first() == Some(&cur)
                    && node.inputs.get(1) == Some(&shared_matrix)
                    && (crossed || consumer != os_op)
                    && (!crossed || shared_persists)
                {
                    let pair = OraclePair {
                        os_op,
                        is_op: consumer,
                        cross_iteration: crossed,
                    };
                    if !pairs.contains(&pair) {
                        pairs.push(pair);
                    }
                }
                // Extension: sub-tensor-dependency op (or a row-wise
                // constant-weight mxm) with clean sides.
                if (node.kind.has_subtensor_dependency() || mxm_streams_rows(g, node, cur))
                    && side_operands_clean(g, consumer, cur, &tainted)
                    && visited.insert((node.output, crossed))
                {
                    stack.push((node.output, crossed));
                }
            }
            if !crossed {
                if let Some(next) = g.carry_target(cur) {
                    if visited.insert((next, true)) {
                        stack.push((next, true));
                    }
                }
            }
        }
    }
    pairs
}

/// The path-extension allowance for `mxm`: row `i` of the product needs
/// only row `i` of the flowing left operand when the stationary right
/// operand is a `Constant`, so the op streams rows like an e-wise op.
fn mxm_streams_rows(g: &DataflowGraph, node: &OpNode, path_tensor: TensorId) -> bool {
    matches!(node.kind, OpKind::Mxm { .. })
        && node.inputs.first() == Some(&path_tensor)
        && node
            .inputs
            .get(1)
            .is_some_and(|&m| g.tensor(m).role == TensorRole::Constant)
}

/// Condition (3): every operand of `op` other than the path tensor must be
/// available before the OS pass completes — a live-in, a constant, or an
/// untainted intermediate.
fn side_operands_clean(
    g: &DataflowGraph,
    op: OpId,
    path_tensor: TensorId,
    tainted: &[bool],
) -> bool {
    g.op(op).inputs.iter().all(|&input| {
        input == path_tensor
            || matches!(
                g.tensor(input).role,
                TensorRole::Input | TensorRole::Constant
            )
            || !tainted[input.index()]
    })
}

/// Cross-checks `analysis` against the oracle, appending `SP-O`
/// disagreements to `report`.
///
/// Assumes `g` passed the `SP-G` checks (ids are dereferenced).
pub fn check(g: &DataflowGraph, analysis: &Analysis, report: &mut LintReport) {
    check_taint(g, analysis, report);
    let pairs = derive_pairs(g);
    match (&analysis.oei, pairs.is_empty()) {
        (None, true) => {}
        (None, false) => {
            let p = pairs[0];
            report.error(
                "SP-O002",
                Some(p.os_op),
                None,
                format!(
                    "analysis reports no OEI subgraph, but fusing op #{} (OS) with op #{} (IS, \
                     cross_iteration={}) is legal — cross-iteration reuse forfeited",
                    p.os_op.index(),
                    p.is_op.index(),
                    p.cross_iteration
                ),
            );
        }
        (Some(oei), true) => {
            report.error(
                "SP-O001",
                Some(oei.os_op),
                None,
                format!(
                    "analysis claims OEI fusion of op #{} with op #{}, but no legal pairing \
                     exists (scalar-reduction or non-sub-tensor op on every path)",
                    oei.os_op.index(),
                    oei.is_op.index()
                ),
            );
        }
        (Some(oei), false) => {
            let exact = pairs.iter().any(|p| {
                p.os_op == oei.os_op
                    && p.is_op == oei.is_op
                    && p.cross_iteration == oei.cross_iteration
            });
            if !exact {
                let same_ops = pairs
                    .iter()
                    .find(|p| p.os_op == oei.os_op && p.is_op == oei.is_op);
                match same_ops {
                    Some(p) => report.error(
                        "SP-O003",
                        Some(oei.os_op),
                        None,
                        format!(
                            "analysis marks the op #{} → op #{} fusion cross_iteration={}, \
                             but the only legal connection has cross_iteration={}",
                            oei.os_op.index(),
                            oei.is_op.index(),
                            oei.cross_iteration,
                            p.cross_iteration
                        ),
                    ),
                    None => report.error(
                        "SP-O004",
                        Some(oei.os_op),
                        None,
                        format!(
                            "analysis fuses op #{} with op #{}, which is not a legal OEI \
                             pairing (legal pairings: {:?})",
                            oei.os_op.index(),
                            oei.is_op.index(),
                            pairs
                                .iter()
                                .map(|p| (p.os_op.index(), p.is_op.index()))
                                .collect::<Vec<_>>()
                        ),
                    ),
                }
            }
            check_path(g, oei, report);
        }
    }
}

/// SP-O006: set-compare the analysis's taint list with the oracle's.
fn check_taint(g: &DataflowGraph, analysis: &Analysis, report: &mut LintReport) {
    let oracle: Vec<bool> = derive_taint(g);
    let published: HashSet<usize> = analysis.tainted.iter().map(|t| t.index()).collect();
    for (i, &t) in oracle.iter().enumerate() {
        if t != published.contains(&i) {
            report.error(
                "SP-O006",
                None,
                Some(TensorId::from_raw(i)),
                format!(
                    "tensor {:?} is {} per the oracle but {} per the analysis",
                    g.tensor(TensorId::from_raw(i)).name,
                    if t { "tainted" } else { "clean" },
                    if t { "clean" } else { "tainted" },
                ),
            );
        }
    }
}

/// SP-O005: re-walk the reported e-wise path edge by edge, verifying
/// connectivity, sub-tensor dependency, side-operand cleanliness, at most
/// one carry crossing, and that the walk terminates at the IS op's vector
/// input with the claimed `cross_iteration` flag.
fn check_path(g: &DataflowGraph, oei: &OeiSubgraph, report: &mut LintReport) {
    let tainted = derive_taint(g);
    let mut cur = g.op(oei.os_op).output;
    let mut crossed = false;
    for &step in &oei.path {
        let node = g.op(step);
        // The path may hop through a loop-carried edge between ops.
        let feeds = if node.inputs.contains(&cur) {
            Some(cur)
        } else if let Some(next) = g.carry_target(cur) {
            if !crossed && node.inputs.contains(&next) {
                crossed = true;
                Some(next)
            } else {
                None
            }
        } else {
            None
        };
        let Some(path_tensor) = feeds else {
            report.error(
                "SP-O005",
                Some(step),
                Some(cur),
                format!(
                    "path op #{} does not consume tensor #{} — the reported path is not \
                     connected",
                    step.index(),
                    cur.index()
                ),
            );
            return;
        };
        if !(node.kind.has_subtensor_dependency() || mxm_streams_rows(g, node, path_tensor)) {
            report.error(
                "SP-O005",
                Some(step),
                None,
                format!(
                    "path op #{} ({:?}) lacks sub-tensor dependency — it cannot sit between \
                     the fused matrix ops",
                    step.index(),
                    node.kind
                ),
            );
            return;
        }
        if !side_operands_clean(g, step, path_tensor, &tainted) {
            report.error(
                "SP-O005",
                Some(step),
                None,
                format!(
                    "path op #{} reads a side operand tainted by a matrix op of the same \
                     iteration (the scalar-reduction blocker)",
                    step.index()
                ),
            );
            return;
        }
        cur = node.output;
    }
    // Terminus: `cur` (possibly through one more carry) must be the IS
    // op's vector operand.
    let is_input = g.op(oei.is_op).inputs.first().copied();
    let reaches = if Some(cur) == is_input {
        true
    } else if let Some(next) = g.carry_target(cur) {
        if !crossed && Some(next) == is_input {
            crossed = true;
            true
        } else {
            false
        }
    } else {
        false
    };
    if !reaches {
        report.error(
            "SP-O005",
            Some(oei.is_op),
            Some(cur),
            format!(
                "the reported path ends at tensor #{}, which is not op #{}'s vector input",
                cur.index(),
                oei.is_op.index()
            ),
        );
        return;
    }
    if crossed != oei.cross_iteration {
        report.error(
            "SP-O005",
            Some(oei.os_op),
            None,
            format!(
                "the reported path crosses {} loop-carried edge(s) but is flagged \
                 cross_iteration={}",
                usize::from(crossed),
                oei.cross_iteration
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use sparsepipe_frontend::analysis::analyze;
    use sparsepipe_frontend::GraphBuilder;
    use sparsepipe_semiring::{EwiseBinary, SemiringOp};

    use super::*;

    fn pagerank() -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let pr = b.input_vector("pr");
        let l = b.constant_matrix("L");
        let y = b.vxm(pr, l, SemiringOp::MulAdd).unwrap();
        let s = b.ewise_scalar(EwiseBinary::Mul, y, 0.85).unwrap();
        let next = b.ewise_scalar(EwiseBinary::Add, s, 0.15).unwrap();
        b.carry(next, pr).unwrap();
        b.build().unwrap()
    }

    fn cg() -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let p = b.input_vector("p");
        let r = b.input_vector("r");
        let a = b.constant_matrix("A");
        let q = b.vxm(p, a, SemiringOp::MulAdd).unwrap();
        let pq = b.dot(p, q).unwrap();
        let step = b.ewise_broadcast(EwiseBinary::Mul, q, pq).unwrap();
        let r_next = b.ewise(EwiseBinary::Sub, r, step).unwrap();
        let p_next = b.ewise(EwiseBinary::Add, r_next, p).unwrap();
        b.carry(p_next, p).unwrap();
        b.carry(r_next, r).unwrap();
        b.build().unwrap()
    }

    fn lint(g: &DataflowGraph, a: &Analysis) -> LintReport {
        let mut r = LintReport::new();
        check(g, a, &mut r);
        r
    }

    #[test]
    fn oracle_agrees_with_analysis_on_pagerank() {
        let g = pagerank();
        let a = analyze(&g);
        assert!(a.oei.is_some());
        let r = lint(&g, &a);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn oracle_agrees_with_analysis_on_cg() {
        let g = cg();
        let a = analyze(&g);
        assert!(a.oei.is_none());
        assert!(derive_pairs(&g).is_empty(), "CG has no legal pairing");
        assert!(lint(&g, &a).is_clean());
    }

    #[test]
    fn fabricated_oei_on_cg_is_sp_o001() {
        let g = cg();
        let mut a = analyze(&g);
        let vxm = a.matrix_ops[0];
        a.oei = Some(OeiSubgraph {
            os_op: vxm,
            is_op: vxm,
            path: vec![],
            cross_iteration: true,
        });
        let r = lint(&g, &a);
        assert!(r.has_code("SP-O001"), "{r}");
    }

    #[test]
    fn suppressed_oei_on_pagerank_is_sp_o002() {
        let g = pagerank();
        let mut a = analyze(&g);
        a.oei = None;
        let r = lint(&g, &a);
        assert!(r.has_code("SP-O002"), "{r}");
    }

    #[test]
    fn flipped_cross_iteration_flag_is_sp_o003() {
        let g = pagerank();
        let mut a = analyze(&g);
        a.oei.as_mut().unwrap().cross_iteration = false;
        let r = lint(&g, &a);
        assert!(r.has_code("SP-O003"), "{r}");
    }

    #[test]
    fn truncated_path_is_sp_o005() {
        let g = pagerank();
        let mut a = analyze(&g);
        // Drop the first path op: the remaining path is disconnected from
        // the OS output.
        a.oei.as_mut().unwrap().path.remove(0);
        let r = lint(&g, &a);
        assert!(r.has_code("SP-O005"), "{r}");
    }

    #[test]
    fn corrupted_taint_set_is_sp_o006() {
        let g = pagerank();
        let mut a = analyze(&g);
        a.tainted.clear();
        let r = lint(&g, &a);
        assert!(r.has_code("SP-O006"), "{r}");
    }

    /// Multi-source BFS: one `mxm` over a constant adjacency, frontier
    /// carried. Analysis and oracle must both find the cross-iteration
    /// pairing of the mxm with itself.
    #[test]
    fn oracle_agrees_on_mxm_over_constant_matrix() {
        let mut b = GraphBuilder::new();
        let f = b.input_matrix("F");
        let a = b.constant_matrix("A");
        let next = b.mxm(f, a, SemiringOp::AndOr).unwrap();
        b.carry(next, f).unwrap();
        let g = b.build().unwrap();
        let an = analyze(&g);
        let oei = an.oei.as_ref().expect("msbfs admits OEI");
        assert!(oei.cross_iteration);
        assert!(lint(&g, &an).is_clean());
    }

    /// Markov clustering squares a *carried* matrix: the oracle must not
    /// offer a cross-iteration pairing (the shared operand is replaced
    /// by the carry every iteration), matching the analysis's refusal.
    #[test]
    fn oracle_rejects_cross_iteration_over_carried_matrix() {
        let mut b = GraphBuilder::new();
        let m = b.input_matrix("M");
        let sq = b.mxm(m, m, SemiringOp::MulAdd).unwrap();
        let infl = b.ewise_matrix(EwiseBinary::Mul, sq, sq).unwrap();
        b.carry(infl, m).unwrap();
        let g = b.build().unwrap();
        let an = analyze(&g);
        assert!(an.oei.is_none(), "mcl has nothing stationary to share");
        assert!(derive_pairs(&g).is_empty());
        assert!(lint(&g, &an).is_clean());
    }

    /// Sparse-weight GCN: the second (constant-weight) `mxm` streams
    /// rows, so it may sit on the OEI path; the oracle must validate the
    /// analysis's reported path through it.
    #[test]
    fn oracle_accepts_constant_weight_mxm_on_the_path() {
        let mut b = GraphBuilder::new();
        let h = b.input_matrix("H");
        let a = b.constant_matrix("A");
        let w = b.constant_matrix("W");
        let z = b.mxm(h, a, SemiringOp::MulAdd).unwrap();
        let h2 = b.mxm(z, w, SemiringOp::MulAdd).unwrap();
        b.carry(h2, h).unwrap();
        let g = b.build().unwrap();
        let an = analyze(&g);
        let oei = an.oei.as_ref().expect("gcnw admits OEI");
        assert!(oei.cross_iteration);
        assert_eq!(oei.path.len(), 1, "the weight mxm is the path");
        let r = lint(&g, &an);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn taint_fixpoint_matches_expectations() {
        let g = cg();
        let t = derive_taint(&g);
        let q = g.find_tensor("p").unwrap();
        assert!(!t[q.index()], "live-in p is clean");
        // every produced tensor in CG is downstream of the vxm
        for (tid, node) in g.tensors() {
            if node.role == TensorRole::Produced {
                assert!(t[tid.index()], "{} should be tainted", node.name);
            }
        }
    }
}
