//! GPU baseline: NVIDIA RTX 4070 running GraphBLAST / Gunrock (Fig 17 /
//! Fig 22).
//!
//! The GPU has Sparsepipe's bandwidth (504 GB/s GDDR6X) but: each operator
//! is a kernel launch; intermediates round-trip through DRAM (GraphBLAST
//! does not fuse across operators); sparse gathers and skewed degree
//! distributions depress achieved bandwidth; small frontiers/matrices
//! cannot fill the machine. No cross-iteration reuse is possible — the
//! matrix streams every iteration (the 36 MB L2 absorbs a sliver).

use sparsepipe_core::energy::{EnergyModel, EnergyTally};

use crate::{BaselineReport, WorkloadInstance};

/// Parameters of the GPU model.
#[derive(Debug, Clone, Copy)]
pub struct GpuModel {
    /// Peak memory bandwidth (RTX 4070: 504 GB/s).
    pub bw_gbps: f64,
    /// L2 cache capacity (RTX 4070: 36 MB).
    pub l2_bytes: f64,
    /// Achieved bandwidth fraction on well-occupied streaming kernels.
    pub stream_utilization: f64,
    /// Achieved fraction on irregular sparse kernels.
    pub gather_utilization: f64,
    /// Non-zeros needed to fully occupy the machine; smaller inputs scale
    /// utilization down (kernel tail effects, low occupancy).
    pub saturation_nnz: f64,
    /// Kernel launch + framework overhead per operator invocation.
    pub launch_overhead_s: f64,
    /// Sustained FP64-class sparse compute in Gflop/s.
    pub sparse_gflops: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            bw_gbps: 504.0,
            l2_bytes: 36.0 * 1024.0 * 1024.0,
            stream_utilization: 0.78,
            gather_utilization: 0.52,
            saturation_nnz: 2_000_000.0,
            launch_overhead_s: 5e-6,
            sparse_gflops: 600.0,
        }
    }
}

impl GpuModel {
    /// Evaluates the model on a workload.
    pub fn evaluate(&self, w: &WorkloadInstance<'_>) -> BaselineReport {
        let n = w.n as f64;
        let nnz = w.nnz as f64;
        let _f = w.profile.feature_dim as f64;
        let iters = w.iterations as f64;

        let matrix_image = nnz * 12.0;
        let cached = (self.l2_bytes / matrix_image).min(0.5); // streaming L2 retains little
        let matrix_bytes = w.profile.matrix_passes as f64 * matrix_image * (1.0 - cached) * iters;
        // Unfused vector traffic: every operator round-trips DRAM.
        // (the unfused read/write counts are feature-scaled already)
        let vec_bytes =
            (w.profile.unfused_vector_reads + w.profile.unfused_vector_writes) * iters * n * 8.0;

        // SpGEMM surcharge: row gathers and the product matrix both move
        // at the irregular-kernel rate (GraphBLAST-class SpGEMM is
        // gather/scatter bound end to end).
        let mw = w.mxm_work();
        let mxm_bytes = (mw.b_read_bytes * (1.0 - cached) + mw.c_write_bytes) * iters;

        // Occupancy: small inputs cannot fill the machine.
        let occupancy = (nnz / self.saturation_nnz).clamp(0.15, 1.0).sqrt();
        let skew_penalty = (1.0 + (w.stats.row_skew.log2().max(0.0)) * 0.05).min(1.6);
        let matrix_bw = self.bw_gbps * 1e9 * self.gather_utilization * occupancy / skew_penalty;
        let vec_bw = self.bw_gbps * 1e9 * self.stream_utilization * occupancy;
        let mem_time = (matrix_bytes + mxm_bytes) / matrix_bw + vec_bytes / vec_bw;

        let compute_time = w.flops_per_iteration() * iters / (self.sparse_gflops * 1e9);
        let overhead = self.launch_overhead_s * w.profile.operators.len().max(3) as f64 * iters;
        let runtime = mem_time.max(compute_time) + overhead;

        let traffic = matrix_bytes + vec_bytes + mxm_bytes;
        let mut tally = EnergyTally::new(EnergyModel::default());
        tally.dram_read(traffic * 0.75);
        tally.dram_write(traffic * 0.25);
        tally.sram(2.5 * traffic);
        tally.compute(w.flops_per_iteration() * iters * 2.0);

        BaselineReport {
            runtime_s: runtime,
            traffic_bytes: traffic,
            bw_utilization: (traffic / (runtime * self.bw_gbps * 1e9)).min(1.0),
            energy: tally.breakdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsepipe_frontend::{compile, GraphBuilder};
    use sparsepipe_semiring::SemiringOp;
    use sparsepipe_tensor::{gen, MatrixStats};

    fn bfs_program() -> sparsepipe_frontend::SparsepipeProgram {
        let mut b = GraphBuilder::new();
        let fr = b.input_vector("frontier");
        let a = b.constant_matrix("A");
        let next = b.vxm(fr, a, SemiringOp::AndOr).unwrap();
        b.carry(next, fr).unwrap();
        compile(&b.build().unwrap(), 1).unwrap()
    }

    #[test]
    fn small_inputs_underutilize_the_gpu() {
        let program = bfs_program();
        let small = gen::uniform(5_000, 5_000, 50_000, 1);
        let stats_s = MatrixStats::compute(&small);
        let w_small = WorkloadInstance {
            profile: &program.profile,
            n: 5_000,
            nnz: 50_000,
            stats: &stats_s,
            iterations: 10,
            mxm: None,
        };
        let r_small = GpuModel::default().evaluate(&w_small);
        let w_big = WorkloadInstance {
            nnz: 50_000_000,
            n: 5_000_000,
            ..w_small
        };
        let r_big = GpuModel::default().evaluate(&w_big);
        assert!(r_small.bw_utilization < r_big.bw_utilization);
    }

    #[test]
    fn gpu_never_beats_its_own_roofline() {
        let program = bfs_program();
        let m = gen::uniform(100_000, 100_000, 1_000_000, 2);
        let stats = MatrixStats::compute(&m);
        let w = WorkloadInstance {
            profile: &program.profile,
            n: 100_000,
            nnz: m.nnz() as u64,
            stats: &stats,
            iterations: 10,
            mxm: None,
        };
        let r = GpuModel::default().evaluate(&w);
        assert!(r.runtime_s >= r.traffic_bytes / 504e9);
        assert!(r.bw_utilization <= 1.0);
    }
}
