//! Die-area constants for performance-per-area comparisons (Fig 20b).
//!
//! The paper synthesizes Sparsepipe's RTL at 45 nm and scales to TSMC N5:
//! **253.95 mm²**, with the on-chip buffer contributing 78% of the area.
//! The RTX 4070's published die (AD104) is **294 mm²**. The CPU compute
//! area is derived from the paper's own ratio (9.84× perf/area vs CPU at
//! the reported performance ratios), giving ≈126 mm² of
//! compute-relevant silicon (CCD + V-cache).

/// Sparsepipe die area at N5, mm² (from the paper's synthesis).
pub const SPARSEPIPE_MM2: f64 = 253.95;

/// Fraction of Sparsepipe's area taken by the on-chip buffer.
pub const SPARSEPIPE_BUFFER_AREA_FRAC: f64 = 0.78;

/// NVIDIA RTX 4070 (AD104) die area, mm².
pub const GPU_MM2: f64 = 294.0;

/// AMD 5800X3D compute-relevant area (CCD + stacked V-cache), mm².
pub const CPU_MM2: f64 = 126.0;

/// Relative performance-per-area of system A over system B.
///
/// `speedup_a_over_b` is A's measured speedup over B on the same workload.
///
/// ```
/// use sparsepipe_baselines::area;
/// // Sparsepipe 4.65x faster than the GPU on a slightly smaller die:
/// let ppa = area::perf_per_area_ratio(4.65, area::SPARSEPIPE_MM2, area::GPU_MM2);
/// assert!(ppa > 4.65); // smaller die amplifies the ratio
/// ```
pub fn perf_per_area_ratio(speedup_a_over_b: f64, area_a_mm2: f64, area_b_mm2: f64) -> f64 {
    speedup_a_over_b * area_b_mm2 / area_a_mm2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_published_ratios_are_reachable() {
        // Fig 20b: 5.38x vs GPU at the paper's 4.65x speedup…
        let vs_gpu = perf_per_area_ratio(4.65, SPARSEPIPE_MM2, GPU_MM2);
        assert!((vs_gpu - 5.38).abs() < 0.1, "vs GPU: {vs_gpu}");
        // …and 9.84x vs CPU at the paper's ~19.82x speedup.
        let vs_cpu = perf_per_area_ratio(19.82, SPARSEPIPE_MM2, CPU_MM2);
        assert!((vs_cpu - 9.84).abs() < 0.2, "vs CPU: {vs_cpu}");
    }
}
