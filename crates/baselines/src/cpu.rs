//! CPU baseline: AMD 5800X3D running ALP/GraphBLAS (Fig 16 / Fig 22).
//!
//! The paper's CPU baseline exploits *producer-consumer* reuse through
//! ALP/GraphBLAS's non-blocking execution (fused e-wise chains), benefits
//! from a 96 MB 3D V-cache that absorbs matrix re-reads when the working
//! set fits, and sustains a measured 44 GB/s of DDR4 bandwidth — but it
//! cannot exploit cross-iteration reuse, and irregular sparse gathers keep
//! its achieved bandwidth well under peak (Fig 22).

use sparsepipe_core::energy::{EnergyModel, EnergyTally};

use crate::{BaselineReport, WorkloadInstance};

/// Parameters of the CPU model.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Measured STREAM-class bandwidth (paper: 44 GB/s).
    pub measured_bw_gbps: f64,
    /// Last-level cache capacity (5800X3D: 96 MB V-cache).
    pub llc_bytes: f64,
    /// Fraction of cached data actually re-hit across iterations (cache is
    /// shared with vectors and suffers conflict misses).
    pub cache_efficiency: f64,
    /// Achieved fraction of measured bandwidth on regular streaming.
    pub stream_utilization: f64,
    /// Achieved fraction on irregular (gather/scatter) access.
    pub gather_utilization: f64,
    /// Sustained sparse-kernel compute throughput in Gflop/s (8 Zen-3
    /// cores on indirection-heavy code sustain a small fraction of peak).
    pub sparse_gflops: f64,
    /// Sustained *dense* GEMM throughput in Gflop/s (cache-blocked dense
    /// kernels run far more efficiently than sparse gathers; GCN's weight
    /// multiply uses this rate).
    pub dense_gflops: f64,
    /// Sustained non-zeros processed per second by the SpMV gather kernel
    /// — the instruction-side bound that keeps the CPU slow even when the
    /// matrix is fully cache-resident (index decode, gather, dependent
    /// FMA: GraphBLAS-class SpMV sustains a few Gnnz/s on 8 cores).
    pub nnz_per_s: f64,
    /// Per-operator software dispatch overhead in seconds (framework
    /// interpretation, task creation).
    pub op_overhead_s: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            measured_bw_gbps: 44.0,
            llc_bytes: 96.0 * 1024.0 * 1024.0,
            cache_efficiency: 0.85,
            stream_utilization: 0.80,
            gather_utilization: 0.55,
            sparse_gflops: 18.0,
            dense_gflops: 45.0,
            nnz_per_s: 2.5e9,
            op_overhead_s: 2e-6,
        }
    }
}

impl CpuModel {
    /// Evaluates the model on a workload.
    pub fn evaluate(&self, w: &WorkloadInstance<'_>) -> BaselineReport {
        let n = w.n as f64;
        let nnz = w.nnz as f64;
        let f = w.profile.feature_dim as f64;
        let iters = w.iterations as f64;

        // Matrix traffic: one image per matrix operator per iteration,
        // discounted by the fraction the V-cache retains across
        // iterations.
        let matrix_image = nnz * 12.0;
        let footprint = matrix_image + 4.0 * n * 8.0 * f;
        let cached_fraction = (self.llc_bytes / footprint).min(1.0) * self.cache_efficiency;
        let matrix_bytes_per_iter =
            w.profile.matrix_passes as f64 * matrix_image * (1.0 - cached_fraction);
        // First iteration always streams the full image.
        let matrix_bytes =
            matrix_image * w.profile.matrix_passes as f64 + matrix_bytes_per_iter * (iters - 1.0);

        // Vector traffic (fused, thanks to non-blocking execution), also
        // cache-discounted.
        // (the fused read/write counts are feature-scaled already)
        let vec_bytes = (w.profile.fused_vector_reads + w.profile.fused_vector_writes)
            * iters
            * n
            * 8.0
            * (1.0 - cached_fraction * 0.5);

        // Effective bandwidth: matrix access is gather-limited; the
        // penalty deepens with degree skew (pointer-chasing hot rows).
        // SpGEMM surcharge: stationary-row gathers miss the cache like
        // matrix traffic; the product matrix streams out at the regular
        // rate.
        let mw = w.mxm_work();
        let mxm_read = mw.b_read_bytes * (1.0 - cached_fraction) * iters;
        let mxm_write = mw.c_write_bytes * iters;

        let skew_penalty = (1.0 + (w.stats.row_skew.log2().max(0.0)) * 0.04).min(1.5);
        let matrix_bw = self.measured_bw_gbps * 1e9 * self.gather_utilization / skew_penalty;
        let vec_bw = self.measured_bw_gbps * 1e9 * self.stream_utilization;
        let mem_time = (matrix_bytes + mxm_read) / matrix_bw + (vec_bytes + mxm_write) / vec_bw;

        // Sparse work (gathers, e-wise) runs at the sparse rate; the dense
        // weight multiply at the (much higher) dense GEMM rate.
        let dense_flops = n * f * w.profile.dense_flops_per_element;
        let sparse_flops = w.flops_per_iteration() - dense_flops;
        let flop_time = iters
            * (sparse_flops / (self.sparse_gflops * 1e9) + dense_flops / (self.dense_gflops * 1e9));
        // Index decode/gather happens once per non-zero regardless of the
        // feature width (SpMM amortizes it across feature columns); each
        // SpGEMM partial product is one more indexed gather.
        let gather_time =
            (w.profile.matrix_passes as f64 * nnz + mw.flops / 2.0) * iters / self.nnz_per_s;
        let compute_time = flop_time.max(gather_time);
        let overhead = self.op_overhead_s * w.profile.operators.len() as f64 * iters;
        let runtime = mem_time.max(compute_time) + overhead;

        let traffic = matrix_bytes + vec_bytes + mxm_read + mxm_write;
        let mut tally = EnergyTally::new(EnergyModel::default());
        tally.dram_read(traffic * 0.8);
        tally.dram_write(traffic * 0.2);
        // cache hierarchy moves every accessed byte several times (L1/L2/L3)
        tally.sram(3.0 * (traffic + cached_fraction * matrix_image * iters));
        tally.compute(w.flops_per_iteration() * iters * 4.0); // CPU pJ/op premium

        BaselineReport {
            runtime_s: runtime,
            traffic_bytes: traffic,
            bw_utilization: (traffic / (runtime * self.measured_bw_gbps * 1e9)).min(1.0),
            energy: tally.breakdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsepipe_frontend::{compile, GraphBuilder};
    use sparsepipe_semiring::{EwiseBinary, SemiringOp};
    use sparsepipe_tensor::{gen, MatrixStats};

    fn pagerank() -> sparsepipe_frontend::SparsepipeProgram {
        let mut b = GraphBuilder::new();
        let pr = b.input_vector("pr");
        let l = b.constant_matrix("L");
        let y = b.vxm(pr, l, SemiringOp::MulAdd).unwrap();
        let s = b.ewise_scalar(EwiseBinary::Mul, y, 0.85).unwrap();
        let next = b.ewise_scalar(EwiseBinary::Add, s, 0.15).unwrap();
        b.carry(next, pr).unwrap();
        compile(&b.build().unwrap(), 1).unwrap()
    }

    #[test]
    fn cache_absorbs_small_working_sets() {
        let program = pagerank();
        let small = gen::uniform(10_000, 10_000, 100_000, 1);
        let small_stats = MatrixStats::compute(&small);
        let w_small = WorkloadInstance {
            profile: &program.profile,
            n: 10_000,
            nnz: small.nnz() as u64,
            stats: &small_stats,
            iterations: 20,
            mxm: None,
        };
        let r = CpuModel::default().evaluate(&w_small);
        // 1.2 MB image « 96 MB cache: traffic must be far below 20 images
        assert!(
            r.traffic_bytes < 6.0 * small.nnz() as f64 * 12.0,
            "traffic {} should be cache-absorbed",
            r.traffic_bytes
        );
        // small cached workloads leave DRAM idle
        assert!(r.bw_utilization < 0.6);
    }

    #[test]
    fn large_matrices_stream_every_iteration() {
        let program = pagerank();
        // fake a huge matrix via the instance numbers (the model only
        // reads n/nnz/stats)
        let probe = gen::uniform(20_000, 20_000, 400_000, 1);
        let stats = MatrixStats::compute(&probe);
        let w = WorkloadInstance {
            profile: &program.profile,
            n: 50_000_000,
            nnz: 1_000_000_000,
            stats: &stats,
            iterations: 10,
            mxm: None,
        };
        let r = CpuModel::default().evaluate(&w);
        // ≥ ~10 full images of traffic
        assert!(r.traffic_bytes > 9.0 * 12e9);
        // bandwidth-bound: utilization approaches the gather ceiling
        assert!(r.bw_utilization > 0.4);
    }

    #[test]
    fn compute_heavy_workloads_bind_on_flops() {
        // GCN-like: huge dense flops per element
        let mut b = GraphBuilder::new();
        let h = b.input_dense("H");
        let a = b.constant_matrix("A");
        let wt = b.constant_dense("W");
        let agg = b.spmm(h, a, SemiringOp::MulAdd).unwrap();
        let lin = b.dense_mm(agg, wt).unwrap();
        let act = b
            .ewise_unary(sparsepipe_semiring::EwiseUnary::Relu, lin)
            .unwrap();
        b.carry(act, h).unwrap();
        let program = compile(&b.build().unwrap(), 32).unwrap();
        let m = gen::uniform(30_000, 30_000, 300_000, 2);
        let stats = MatrixStats::compute(&m);
        let w = WorkloadInstance {
            profile: &program.profile,
            n: 30_000,
            nnz: m.nnz() as u64,
            stats: &stats,
            iterations: 4,
            mxm: None,
        };
        let r = CpuModel::default().evaluate(&w);
        // compute-bound: the runtime must track the split-rate flop time
        // (sparse work at the sparse rate, the weight GEMM at the dense
        // rate), not the memory time
        let m = CpuModel::default();
        let dense = 30_000.0 * 32.0 * program.profile.dense_flops_per_element;
        let sparse = w.flops_per_iteration() - dense;
        let flop_time = 4.0 * (sparse / (m.sparse_gflops * 1e9) + dense / (m.dense_gflops * 1e9));
        assert!(
            (r.runtime_s - flop_time).abs() / flop_time < 0.5,
            "GCN on CPU should be compute-bound: runtime {} vs flops {flop_time}",
            r.runtime_s
        );
    }
}
