//! The idealized sparse accelerator baseline (Fig 14's denominator).
//!
//! "An idealized sparse accelerator that utilizes the same compute and
//! memory bandwidth as Sparsepipe, but does not exploit inter-operator
//! data reuse. This idealized sparse accelerator always has the throughput
//! as its roofline, representing the upper bound of prior sparse
//! accelerators."
//!
//! Concretely: each operator of each iteration runs as its own perfectly
//! pipelined kernel — `cycles = max(traffic / BW, compute / PEs)` with
//! *perfect intra-operator reuse* (the matrix is read exactly once per
//! matrix operator) — but intermediates spill to DRAM between operators
//! (no producer-consumer fusion) and the matrix is re-read **every
//! iteration** (no cross-iteration reuse).

use sparsepipe_core::energy::{EnergyModel, EnergyTally};
use sparsepipe_core::SparsepipeConfig;
use sparsepipe_frontend::OperatorClass;

use crate::{BaselineReport, WorkloadInstance};

/// The ideal roofline accelerator model. See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct IdealAccelerator {
    /// Hardware parameters shared with Sparsepipe (compute + bandwidth).
    pub config: SparsepipeConfig,
}

impl IdealAccelerator {
    /// Creates the model with the given (Sparsepipe-equivalent) hardware.
    pub fn new(config: SparsepipeConfig) -> Self {
        IdealAccelerator { config }
    }

    /// Evaluates the model on a workload.
    pub fn evaluate(&self, w: &WorkloadInstance<'_>) -> BaselineReport {
        let bpc = self.config.memory.bytes_per_cycle(self.config.clock_ghz);
        let pes = self.config.pes_per_core as f64;
        let n = w.n as f64;
        let nnz = w.nnz as f64;
        let f = w.profile.feature_dim as f64;
        let vec_b = 8.0;

        let mut iter_cycles = 0.0f64;
        let mut iter_read = 0.0f64;
        let mut iter_write = 0.0f64;
        let mut iter_flops = 0.0f64;
        for op in &w.profile.operators {
            let (read, write, compute) = match op.class {
                OperatorClass::Matrix => (
                    nnz * 12.0 + op.unfused_vector_reads * n * vec_b,
                    op.unfused_vector_writes * n * vec_b,
                    // one mul + one reduce per nnz per feature column; two
                    // ops per PE-cycle (fused MAC)
                    nnz * op.flops_per_unit / 2.0,
                ),
                OperatorClass::FusedEwise => (
                    // the e-wise chain runs as one fused kernel here too
                    // (any BLAS-style backend keeps intermediates in
                    // registers), but its operands round-trip DRAM
                    op.unfused_vector_reads * n * vec_b,
                    op.unfused_vector_writes * n * vec_b,
                    n * f * op.flops_per_unit,
                ),
                OperatorClass::DenseMM => (
                    op.unfused_vector_reads * n * vec_b,
                    op.unfused_vector_writes * n * vec_b,
                    n * f * op.flops_per_unit / 2.0,
                ),
            };
            let mem_cycles = (read + write) / bpc;
            let compute_cycles = compute / pes;
            iter_cycles += mem_cycles.max(compute_cycles);
            iter_read += read;
            iter_write += write;
            iter_flops += compute;
        }

        // SpGEMM surcharge: its own perfectly pipelined kernel per
        // iteration — stationary-row gathers in, product matrix out, one
        // fused MAC per partial product — with no reuse across
        // iterations (the ideal accelerator has none by construction).
        let mw = w.mxm_work();
        if mw != crate::MxmWork::ZERO {
            let mem_cycles = (mw.b_read_bytes + mw.c_write_bytes) / bpc;
            let compute_cycles = mw.flops / 2.0 / pes;
            iter_cycles += mem_cycles.max(compute_cycles);
            iter_read += mw.b_read_bytes;
            iter_write += mw.c_write_bytes;
            iter_flops += mw.flops / 2.0;
        }

        let iters = w.iterations as f64;
        let cycles = iter_cycles * iters;
        let read = iter_read * iters;
        let write = iter_write * iters;

        let mut tally = EnergyTally::new(EnergyModel::default());
        tally.dram_read(read);
        tally.dram_write(write);
        // every DRAM byte staged through the on-chip buffer once each way
        tally.sram(2.0 * (read + write));
        tally.compute(iter_flops * iters * 2.0);

        BaselineReport {
            runtime_s: cycles / (self.config.clock_ghz * 1e9),
            traffic_bytes: read + write,
            bw_utilization: ((read + write) / (cycles * bpc)).min(1.0),
            energy: tally.breakdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsepipe_frontend::{compile, GraphBuilder};
    use sparsepipe_semiring::{EwiseBinary, SemiringOp};
    use sparsepipe_tensor::{gen, MatrixStats};

    fn pagerank_instance(
        m: &sparsepipe_tensor::CooMatrix,
        iterations: usize,
    ) -> (sparsepipe_frontend::SparsepipeProgram, MatrixStats) {
        let mut b = GraphBuilder::new();
        let pr = b.input_vector("pr");
        let l = b.constant_matrix("L");
        let y = b.vxm(pr, l, SemiringOp::MulAdd).unwrap();
        let s = b.ewise_scalar(EwiseBinary::Mul, y, 0.85).unwrap();
        let next = b.ewise_scalar(EwiseBinary::Add, s, 0.15).unwrap();
        b.carry(next, pr).unwrap();
        let program = compile(&b.build().unwrap(), 1).unwrap();
        let stats = MatrixStats::compute(m);
        let _ = iterations;
        (program, stats)
    }

    #[test]
    fn memory_bound_runs_at_roofline() {
        let m = gen::uniform(10_000, 10_000, 100_000, 3);
        let (program, stats) = pagerank_instance(&m, 10);
        let w = WorkloadInstance {
            profile: &program.profile,
            n: 10_000,
            nnz: m.nnz() as u64,
            stats: &stats,
            iterations: 10,
            mxm: None,
        };
        let r = IdealAccelerator::new(SparsepipeConfig::iso_gpu()).evaluate(&w);
        // memory-bound: runtime ≈ traffic / BW exactly
        let expected = r.traffic_bytes / 504e9;
        assert!((r.runtime_s - expected).abs() / expected < 1e-9);
        assert!((r.bw_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matrix_reread_every_iteration() {
        let m = gen::uniform(10_000, 10_000, 100_000, 3);
        let (program, stats) = pagerank_instance(&m, 1);
        let mk = |iters| WorkloadInstance {
            profile: &program.profile,
            n: 10_000,
            nnz: m.nnz() as u64,
            stats: &stats,
            iterations: iters,
            mxm: None,
        };
        let model = IdealAccelerator::new(SparsepipeConfig::iso_gpu());
        let one = model.evaluate(&mk(1));
        let ten = model.evaluate(&mk(10));
        assert!((ten.traffic_bytes / one.traffic_bytes - 10.0).abs() < 1e-9);
        assert!((ten.runtime_s / one.runtime_s - 10.0).abs() < 1e-9);
    }
}
