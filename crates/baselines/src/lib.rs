//! Baseline cost models for the Sparsepipe evaluation (§V-B of the paper).
//!
//! The paper compares Sparsepipe against four reference points; this crate
//! implements each as an analytic cost model driven by the *same*
//! machine-independent [`WorkloadProfile`] the simulator uses, so every
//! comparison is apples-to-apples on workload:
//!
//! * [`ideal::IdealAccelerator`] — "an idealized sparse accelerator that
//!   utilizes the same compute and memory bandwidth as Sparsepipe, but
//!   does not exploit inter-operator data reuse. This idealized sparse
//!   accelerator **always has the throughput as its roofline**" — the
//!   denominator of Fig 14.
//! * [`oracle::OracleAccelerator`] — perfect inter-operator reuse
//!   "irrespective of on-chip buffer size" (Fig 18's upper bound).
//! * [`cpu::CpuModel`] — the AMD 5800X3D running ALP/GraphBLAS with
//!   non-blocking (producer-consumer-fused) execution and a 96 MB V-cache
//!   (Fig 16/22).
//! * [`gpu::GpuModel`] — the RTX 4070 running GraphBLAST/Gunrock
//!   (Fig 17/22).
//!
//! [`area`] holds the published die areas behind Fig 20(b)'s
//! performance-per-area comparison.
//!
//! All models return a [`BaselineReport`] with runtime, traffic, achieved
//! bandwidth, and an energy breakdown comparable to the simulator's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod cpu;
pub mod gpu;
pub mod ideal;
pub mod oracle;

use serde::Serialize;
use sparsepipe_core::EnergyBreakdown;

/// Result of evaluating a baseline cost model on one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BaselineReport {
    /// End-to-end runtime in seconds.
    pub runtime_s: f64,
    /// Total DRAM traffic in bytes.
    pub traffic_bytes: f64,
    /// Achieved fraction of peak memory bandwidth.
    pub bw_utilization: f64,
    /// Energy breakdown (compute / memory / cache-buffer).
    pub energy: EnergyBreakdown,
}

impl BaselineReport {
    /// Speedup of `other_runtime` relative to this baseline (>1 means the
    /// other system is faster).
    pub fn speedup_of(&self, other_runtime_s: f64) -> f64 {
        self.runtime_s / other_runtime_s
    }
}

/// Extra per-iteration work the workload's `mxm` (SpGEMM) passes add on
/// top of the `matrix_passes`-based accounting every model already
/// charges.
///
/// The Matrix-class accounting treats a matrix pass as one sweep of the
/// stored image plus `n`-vector operands. A Gustavson SpGEMM pass
/// additionally gathers stationary-operand rows, materializes a product
/// *matrix* instead of a vector, and performs one multiply-accumulate
/// per partial product. The bench sweep derives these from the exact
/// `O(nnz)` statics (`MatrixProfile`'s `spgemm_*` fields) so baselines
/// and simulator price the same work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MxmWork {
    /// Bytes of stationary (right-operand) rows gathered per iteration.
    pub b_read_bytes: f64,
    /// Bytes of product-matrix writeback per iteration.
    pub c_write_bytes: f64,
    /// Arithmetic operations per iteration (2 per partial product).
    pub flops: f64,
}

impl MxmWork {
    /// No SpGEMM work (the default for the Table-III `vxm` apps).
    pub const ZERO: MxmWork = MxmWork {
        b_read_bytes: 0.0,
        c_write_bytes: 0.0,
        flops: 0.0,
    };
}

/// Static description of one workload instance, shared by all models.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadInstance<'a> {
    /// The per-iteration profile from the frontend compiler.
    pub profile: &'a sparsepipe_frontend::WorkloadProfile,
    /// Matrix dimension (square).
    pub n: u64,
    /// Matrix non-zeros.
    pub nnz: u64,
    /// Structural statistics of the matrix (skew drives utilization
    /// penalties on CPU/GPU).
    pub stats: &'a sparsepipe_tensor::MatrixStats,
    /// Loop iterations.
    pub iterations: usize,
    /// SpGEMM surcharge, `None` for pure-`vxm` workloads.
    pub mxm: Option<MxmWork>,
}

impl<'a> WorkloadInstance<'a> {
    /// Bytes of one single-format (CSR) image of the matrix, 8-byte values.
    pub fn matrix_bytes(&self) -> f64 {
        self.nnz as f64 * 12.0
    }

    /// Bytes of one `n`-vector at the workload's feature width.
    pub fn vector_bytes(&self) -> f64 {
        self.n as f64 * 8.0 * self.profile.feature_dim as f64
    }

    /// Arithmetic operations per iteration (matrix + e-wise + dense +
    /// the SpGEMM surcharge).
    pub fn flops_per_iteration(&self) -> f64 {
        let f = self.profile.feature_dim as f64;
        self.profile.matrix_passes as f64 * self.nnz as f64 * 2.0 * f
            + self.n as f64
                * f
                * (self.profile.ewise_flops_per_element + self.profile.dense_flops_per_element)
            + self.mxm_work().flops
    }

    /// The SpGEMM surcharge, [`MxmWork::ZERO`] when absent.
    pub fn mxm_work(&self) -> MxmWork {
        self.mxm.unwrap_or(MxmWork::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_speedup_direction() {
        let r = BaselineReport {
            runtime_s: 2.0,
            traffic_bytes: 0.0,
            bw_utilization: 1.0,
            energy: EnergyBreakdown::default(),
        };
        assert_eq!(r.speedup_of(1.0), 2.0);
        assert_eq!(r.speedup_of(4.0), 0.5);
    }
}
