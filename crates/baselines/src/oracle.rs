//! The oracle accelerator (Fig 18's upper bound).
//!
//! "We modeled an oracle STA accelerator that assumes that all elements of
//! the input sparse matrix are always ready when reuse opportunities
//! across iterations present, fully exploiting all inter-operator data
//! reuse opportunities irrespective of on-chip buffer size."
//!
//! The oracle therefore executes the same OEI fusion structure as
//! Sparsepipe — one matrix sweep per *fused opportunity* (two iterations
//! for cross-iteration apps, one for KNN-style within-iteration fusion) —
//! but with an unbounded buffer: no evictions, no refetch ping-pong, no
//! load-imbalance bubbles, and full producer-consumer fusion of vector
//! traffic. Fig 18 measures how close the real (64 MB) Sparsepipe comes
//! to this bound (66.78% on average in the paper).

use sparsepipe_core::energy::{EnergyModel, EnergyTally};
use sparsepipe_core::SparsepipeConfig;

use crate::{BaselineReport, WorkloadInstance};

/// The infinite-buffer, perfectly balanced OEI accelerator.
#[derive(Debug, Clone, Copy)]
pub struct OracleAccelerator {
    /// Hardware parameters shared with Sparsepipe.
    pub config: SparsepipeConfig,
}

impl OracleAccelerator {
    /// Creates the model.
    pub fn new(config: SparsepipeConfig) -> Self {
        OracleAccelerator { config }
    }

    /// Evaluates the model on a workload.
    pub fn evaluate(&self, w: &WorkloadInstance<'_>) -> BaselineReport {
        let bpc = self.config.memory.bytes_per_cycle(self.config.clock_ghz);
        let pes = self.config.pes_per_core as f64;
        let n = w.n as f64;
        let nnz = w.nnz as f64;
        let f = w.profile.feature_dim as f64;
        let fetch_b = self.config.fetch_bytes_per_element();
        let iters = w.iterations as f64;

        // Matrix loads over the whole run: when the app presents
        // cross-/within-iteration reuse opportunities, the oracle's
        // unbounded buffer keeps every element "always ready" after the
        // FIRST load — one image per distinct matrix operand for the
        // entire run. Without OEI (CG-class), no such opportunity
        // presents and the matrix streams every iteration.
        let sweeps = if w.profile.has_oei {
            w.profile.matrix_passes as f64
        } else {
            iters * w.profile.matrix_passes as f64
        };
        let mut matrix_bytes = sweeps * nnz * fetch_b;

        // SpGEMM surcharge: with OEI the unbounded buffer keeps every
        // stationary row "always ready" after the first gather (one
        // B-side load for the whole run); without OEI the gathers repeat
        // per iteration. The intermediate product never round-trips —
        // the unbounded buffer holds it for its downstream consumers —
        // so DRAM sees only the final materialization, once per run.
        let mw = w.mxm_work();
        let mxm_reads = if w.profile.has_oei {
            mw.b_read_bytes
        } else {
            mw.b_read_bytes * iters
        };
        matrix_bytes += mxm_reads + mw.c_write_bytes;

        // Fully fused vector traffic (feature-scaled counts); the
        // unbounded buffer also eliminates inter-pass result round-trips.
        let vec_bytes =
            (w.profile.fused_vector_reads + w.profile.fused_vector_writes) * iters * n * 8.0;

        // Compute runs on the same three pipelined cores as Sparsepipe:
        // per iteration the bottleneck stage governs.
        let os_is_cycles = (w.profile.matrix_passes as f64 * nnz * f + mw.flops / 2.0) / pes; // MACs @ 2/cycle
        let ew_cycles =
            n * f * (w.profile.ewise_flops_per_element + w.profile.dense_flops_per_element) / pes;
        let compute_cycles = iters * os_is_cycles.max(ew_cycles);
        let mem_cycles = (matrix_bytes + vec_bytes) / bpc;
        let cycles = mem_cycles.max(compute_cycles);

        let mut tally = EnergyTally::new(EnergyModel::default());
        let write_frac = 0.4;
        tally.dram_read(
            (matrix_bytes + vec_bytes)
                * (1.0 - write_frac * vec_bytes / (matrix_bytes + vec_bytes)),
        );
        tally.dram_write(vec_bytes * write_frac);
        tally.sram(2.0 * (matrix_bytes + vec_bytes));
        tally.compute(compute_cycles * pes * 2.0);

        BaselineReport {
            runtime_s: cycles / (self.config.clock_ghz * 1e9),
            traffic_bytes: matrix_bytes + vec_bytes,
            bw_utilization: (mem_cycles / cycles).min(1.0),
            energy: tally.breakdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsepipe_frontend::{compile, GraphBuilder};
    use sparsepipe_semiring::{EwiseBinary, SemiringOp};
    use sparsepipe_tensor::{gen, MatrixStats};

    #[test]
    fn oracle_bounds_sparsepipe_from_above() {
        let mut b = GraphBuilder::new();
        let pr = b.input_vector("pr");
        let l = b.constant_matrix("L");
        let y = b.vxm(pr, l, SemiringOp::MulAdd).unwrap();
        let s = b.ewise_scalar(EwiseBinary::Mul, y, 0.85).unwrap();
        let next = b.ewise_scalar(EwiseBinary::Add, s, 0.15).unwrap();
        b.carry(next, pr).unwrap();
        let program = compile(&b.build().unwrap(), 1).unwrap();

        // A scattered matrix under a cramped buffer: Sparsepipe pays for
        // evictions, the oracle does not.
        let m = gen::uniform(8000, 8000, 120_000, 3);
        let stats = MatrixStats::compute(&m);
        let cfg = SparsepipeConfig::iso_gpu()
            .with_buffer(256 << 10)
            .with_preprocessing(sparsepipe_core::Preprocessing::none());
        let w = WorkloadInstance {
            profile: &program.profile,
            n: 8000,
            nnz: m.nnz() as u64,
            stats: &stats,
            iterations: 20,
            mxm: None,
        };
        let oracle = OracleAccelerator::new(cfg).evaluate(&w);
        let sim = sparsepipe_core::SimRequest::new(&program, &m)
            .iterations(20)
            .config(cfg)
            .run()
            .unwrap()
            .report;
        assert!(
            oracle.runtime_s <= sim.runtime_s * 1.02,
            "oracle {} must not be slower than simulated {}",
            oracle.runtime_s,
            sim.runtime_s
        );
        // …and Sparsepipe should achieve a sane fraction of the oracle
        // (the oracle loads the matrix once for the whole run, so dense
        // matrices over many iterations legitimately sit far below it)
        let frac = oracle.runtime_s / sim.runtime_s;
        assert!(
            frac > 0.03,
            "Sparsepipe at {frac} of oracle — model broken?"
        );
    }
}
