//! The E-Wise core's vector instruction set.
//!
//! Sparsepipe "uses offline compilation to pre-generate instructions for
//! fused e-wise operations specific to an application" (§IV-C2). This
//! module defines that instruction set and the compiler from a fused e-wise
//! group to a register program.
//!
//! The program is SIMD in spirit: [`EwiseProgram::run`] executes the same
//! instruction sequence on every *lane* (element index), with scalar
//! *accumulators* (for fused `fold`/`dot` reductions) combined across
//! lanes. The E-Wise core in the simulator charges one PE-op per
//! arithmetic instruction per lane, so the compiled instruction count is
//! also the timing model's per-element cost.

use serde::{Deserialize, Serialize};
use sparsepipe_semiring::{EwiseBinary, EwiseUnary};

use crate::graph::{DataflowGraph, OpId, OpKind, TensorId};
use crate::FrontendError;

/// A register index in the e-wise VM (the compiled programs here are tiny;
/// 256 registers is far beyond any fused group).
pub type Reg = u8;

/// One e-wise VM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EwInstr {
    /// `reg[dst] = inputs[slot][lane]` — stream an operand vector element.
    Load {
        /// Input slot index.
        slot: usize,
        /// Destination register.
        dst: Reg,
    },
    /// `reg[dst] = params[idx]` — a runtime scalar parameter (e.g. a
    /// loop-carried `α`).
    LoadParam {
        /// Parameter index.
        idx: usize,
        /// Destination register.
        dst: Reg,
    },
    /// `reg[dst] = op(reg[a], reg[b])`.
    Binary {
        /// The operator.
        op: EwiseBinary,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
        /// Destination register.
        dst: Reg,
    },
    /// `reg[dst] = op(reg[a], imm)`.
    BinaryImm {
        /// The operator.
        op: EwiseBinary,
        /// Left operand register.
        a: Reg,
        /// Immediate right operand.
        imm: f64,
        /// Destination register.
        dst: Reg,
    },
    /// `reg[dst] = op(reg[a])`.
    Unary {
        /// The operator.
        op: EwiseUnary,
        /// Operand register.
        a: Reg,
        /// Destination register.
        dst: Reg,
    },
    /// `outputs[slot][lane] = reg[src]`.
    Store {
        /// Output slot index.
        slot: usize,
        /// Source register.
        src: Reg,
    },
    /// `acc[slot] = op(acc[slot], reg[src])` — cross-lane reduction.
    Accumulate {
        /// Accumulator slot index.
        slot: usize,
        /// The (commutative) reduction operator.
        op: EwiseBinary,
        /// Source register.
        src: Reg,
    },
}

impl EwInstr {
    /// `true` for instructions that occupy a PE (arithmetic), as opposed to
    /// data movement.
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            EwInstr::Binary { .. }
                | EwInstr::BinaryImm { .. }
                | EwInstr::Unary { .. }
                | EwInstr::Accumulate { .. }
        )
    }
}

/// The identity element of a reduction monoid (initial accumulator value).
///
/// # Panics
///
/// Panics for non-reduction operators (no identity).
pub fn reduce_identity(op: EwiseBinary) -> f64 {
    match op {
        EwiseBinary::Add | EwiseBinary::Or | EwiseBinary::AbsDiff => 0.0,
        EwiseBinary::Mul | EwiseBinary::And => 1.0,
        EwiseBinary::Min => f64::INFINITY,
        EwiseBinary::Max => f64::NEG_INFINITY,
        other => panic!("{other:?} is not a reduction monoid"),
    }
}

/// A compiled fused e-wise program.
///
/// # Example
///
/// ```
/// use sparsepipe_frontend::ewise_vm::{EwInstr, EwiseProgram};
/// use sparsepipe_semiring::EwiseBinary;
///
/// // out[i] = a[i] * 0.85 + 0.15, residual = Σ |out[i] - b[i]|
/// let prog = EwiseProgram::from_instrs(
///     vec![
///         EwInstr::Load { slot: 0, dst: 0 },
///         EwInstr::BinaryImm { op: EwiseBinary::Mul, a: 0, imm: 0.85, dst: 1 },
///         EwInstr::BinaryImm { op: EwiseBinary::Add, a: 1, imm: 0.15, dst: 1 },
///         EwInstr::Store { slot: 0, src: 1 },
///         EwInstr::Load { slot: 1, dst: 2 },
///         EwInstr::Binary { op: EwiseBinary::AbsDiff, a: 1, b: 2, dst: 3 },
///         EwInstr::Accumulate { slot: 0, op: EwiseBinary::Add, src: 3 },
///     ],
///     2, 1, vec![0.0],
/// );
/// let a = [1.0, 2.0];
/// let b = [1.0, 1.0];
/// let (outs, accs) = prog.run(&[&a, &b], 2);
/// assert!((outs[0][0] - 1.0).abs() < 1e-12);
/// assert!((outs[0][1] - 1.85).abs() < 1e-12);
/// assert!((accs[0] - 0.85).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EwiseProgram {
    instrs: Vec<EwInstr>,
    n_inputs: usize,
    n_outputs: usize,
    acc_init: Vec<f64>,
    n_params: usize,
    n_regs: usize,
}

impl EwiseProgram {
    /// Builds a program from raw instructions.
    ///
    /// # Panics
    ///
    /// Panics if an instruction references an input/output slot outside the
    /// declared counts.
    pub fn from_instrs(
        instrs: Vec<EwInstr>,
        n_inputs: usize,
        n_outputs: usize,
        acc_init: Vec<f64>,
    ) -> Self {
        let mut n_regs = 0usize;
        let mut n_params = 0usize;
        for instr in &instrs {
            match *instr {
                EwInstr::Load { slot, dst } => {
                    assert!(slot < n_inputs, "input slot {slot} out of range");
                    n_regs = n_regs.max(dst as usize + 1);
                }
                EwInstr::LoadParam { idx, dst } => {
                    n_params = n_params.max(idx + 1);
                    n_regs = n_regs.max(dst as usize + 1);
                }
                EwInstr::Binary { a, b, dst, .. } => {
                    n_regs = n_regs.max(a.max(b).max(dst) as usize + 1);
                }
                EwInstr::BinaryImm { a, dst, .. } => {
                    n_regs = n_regs.max(a.max(dst) as usize + 1);
                }
                EwInstr::Unary { a, dst, .. } => n_regs = n_regs.max(a.max(dst) as usize + 1),
                EwInstr::Store { slot, src } => {
                    assert!(slot < n_outputs, "output slot {slot} out of range");
                    n_regs = n_regs.max(src as usize + 1);
                }
                EwInstr::Accumulate { slot, src, .. } => {
                    assert!(
                        slot < acc_init.len(),
                        "accumulator slot {slot} out of range"
                    );
                    n_regs = n_regs.max(src as usize + 1);
                }
            }
        }
        EwiseProgram {
            instrs,
            n_inputs,
            n_outputs,
            acc_init,
            n_params,
            n_regs,
        }
    }

    /// The instruction sequence.
    pub fn instrs(&self) -> &[EwInstr] {
        &self.instrs
    }

    /// Number of vector input slots.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of vector output slots.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Number of scalar accumulators.
    pub fn n_accumulators(&self) -> usize {
        self.acc_init.len()
    }

    /// Number of scalar runtime parameters.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Arithmetic instructions per lane — the E-Wise core's per-element
    /// compute cost.
    pub fn arithmetic_per_lane(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_arithmetic()).count()
    }

    /// Executes one lane: reads `lane` of each input, writes `lane` of each
    /// output, folds into `accs`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the program's slot counts.
    pub fn run_lane(
        &self,
        lane: usize,
        inputs: &[&[f64]],
        params: &[f64],
        outputs: &mut [Vec<f64>],
        accs: &mut [f64],
    ) {
        assert_eq!(inputs.len(), self.n_inputs, "input slot count");
        assert_eq!(outputs.len(), self.n_outputs, "output slot count");
        assert!(params.len() >= self.n_params, "missing params");
        let mut regs = vec![0.0f64; self.n_regs];
        for instr in &self.instrs {
            match *instr {
                EwInstr::Load { slot, dst } => regs[dst as usize] = inputs[slot][lane],
                EwInstr::LoadParam { idx, dst } => regs[dst as usize] = params[idx],
                EwInstr::Binary { op, a, b, dst } => {
                    regs[dst as usize] = op.apply(regs[a as usize], regs[b as usize]);
                }
                EwInstr::BinaryImm { op, a, imm, dst } => {
                    regs[dst as usize] = op.apply(regs[a as usize], imm);
                }
                EwInstr::Unary { op, a, dst } => regs[dst as usize] = op.apply(regs[a as usize]),
                EwInstr::Store { slot, src } => outputs[slot][lane] = regs[src as usize],
                EwInstr::Accumulate { slot, op, src } => {
                    accs[slot] = op.apply(accs[slot], regs[src as usize]);
                }
            }
        }
    }

    /// Executes all `n` lanes, returning the output vectors and final
    /// accumulator values.
    ///
    /// # Panics
    ///
    /// Panics if any input slice is shorter than `n`.
    pub fn run(&self, inputs: &[&[f64]], n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        self.run_with_params(inputs, &[], n)
    }

    /// Like [`EwiseProgram::run`] but with scalar parameters.
    ///
    /// # Panics
    ///
    /// Panics if any input slice is shorter than `n` or parameters are
    /// missing.
    pub fn run_with_params(
        &self,
        inputs: &[&[f64]],
        params: &[f64],
        n: usize,
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut outputs = vec![vec![0.0; n]; self.n_outputs];
        let mut accs = self.acc_init.clone();
        for lane in 0..n {
            self.run_lane(lane, inputs, params, &mut outputs, &mut accs);
        }
        (outputs, accs)
    }
}

/// Layout of a compiled group's interface: which graph tensors map to which
/// VM slots.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupInterface {
    /// Graph tensors streamed as vector inputs, in slot order.
    pub input_tensors: Vec<TensorId>,
    /// Graph tensors produced as vector outputs, in slot order.
    pub output_tensors: Vec<TensorId>,
    /// Graph tensors read as scalar parameters, in parameter order.
    pub param_tensors: Vec<TensorId>,
    /// Graph tensors produced as scalar accumulators, in slot order.
    pub acc_tensors: Vec<TensorId>,
}

/// Compiles one fused e-wise group into a VM program.
///
/// `group` must be in topological order (as produced by
/// [`crate::fusion::fuse`]). Vector tensors produced outside the group (or
/// live-in) become input slots; vector tensors produced inside the group
/// that are consumed outside it (or loop-carried) become output slots;
/// scalar operands become parameters; `Reduce`/`Dot` results become
/// accumulators.
///
/// # Errors
///
/// Returns [`FrontendError::Uncompilable`] if the group contains a
/// non-e-wise op or a `Dot`/`Reduce` over group-external operands that are
/// not vectors.
pub fn compile_group(
    g: &DataflowGraph,
    group: &[OpId],
) -> Result<(EwiseProgram, GroupInterface), FrontendError> {
    use std::collections::HashMap;

    let in_group = |op: OpId| group.contains(&op);
    let mut tensor_reg: HashMap<TensorId, Reg> = HashMap::new();
    let mut input_tensors: Vec<TensorId> = Vec::new();
    let mut output_tensors: Vec<TensorId> = Vec::new();
    let mut param_tensors: Vec<TensorId> = Vec::new();
    let mut acc_tensors: Vec<TensorId> = Vec::new();
    let mut acc_init: Vec<f64> = Vec::new();
    let mut instrs: Vec<EwInstr> = Vec::new();
    let mut next_reg: usize = 0;

    let mut alloc_reg = || -> Result<Reg, FrontendError> {
        if next_reg > u8::MAX as usize {
            return Err(FrontendError::Uncompilable {
                context: "fused group needs more than 256 registers".into(),
            });
        }
        let r = next_reg as Reg;
        next_reg += 1;
        Ok(r)
    };

    // Resolves an operand tensor to a register, emitting Load/LoadParam for
    // group-external operands on first use.
    let mut operand = |t: TensorId,
                       instrs: &mut Vec<EwInstr>,
                       tensor_reg: &mut HashMap<TensorId, Reg>,
                       alloc_reg: &mut dyn FnMut() -> Result<Reg, FrontendError>|
     -> Result<Reg, FrontendError> {
        if let Some(&r) = tensor_reg.get(&t) {
            return Ok(r);
        }
        let node = g.tensor(t);
        let r = alloc_reg()?;
        match node.kind {
            crate::graph::TensorKind::Vector | crate::graph::TensorKind::DenseMatrix => {
                let slot = input_tensors.len();
                input_tensors.push(t);
                instrs.push(EwInstr::Load { slot, dst: r });
            }
            crate::graph::TensorKind::Scalar => {
                let idx = param_tensors.len();
                param_tensors.push(t);
                instrs.push(EwInstr::LoadParam { idx, dst: r });
            }
            crate::graph::TensorKind::SparseMatrix => {
                return Err(FrontendError::Uncompilable {
                    context: "sparse matrix operand inside an e-wise group".into(),
                });
            }
        }
        tensor_reg.insert(t, r);
        Ok(r)
    };

    for &op_id in group {
        let op = g.op(op_id);
        if !op.kind.is_ewise() {
            return Err(FrontendError::Uncompilable {
                context: format!("non-e-wise op {op_id:?} in fused group"),
            });
        }
        match op.kind {
            OpKind::EwiseBinary { op: bop } => {
                let a = operand(op.inputs[0], &mut instrs, &mut tensor_reg, &mut alloc_reg)?;
                let b = operand(op.inputs[1], &mut instrs, &mut tensor_reg, &mut alloc_reg)?;
                let dst = alloc_reg()?;
                instrs.push(EwInstr::Binary { op: bop, a, b, dst });
                tensor_reg.insert(op.output, dst);
            }
            OpKind::EwiseScalarBroadcast { op: bop } => {
                let a = operand(op.inputs[0], &mut instrs, &mut tensor_reg, &mut alloc_reg)?;
                let b = operand(op.inputs[1], &mut instrs, &mut tensor_reg, &mut alloc_reg)?;
                let dst = alloc_reg()?;
                instrs.push(EwInstr::Binary { op: bop, a, b, dst });
                tensor_reg.insert(op.output, dst);
            }
            OpKind::EwiseImmediate { op: bop, imm } => {
                let a = operand(op.inputs[0], &mut instrs, &mut tensor_reg, &mut alloc_reg)?;
                let dst = alloc_reg()?;
                instrs.push(EwInstr::BinaryImm {
                    op: bop,
                    a,
                    imm,
                    dst,
                });
                tensor_reg.insert(op.output, dst);
            }
            OpKind::EwiseUnary { op: uop } => {
                let a = operand(op.inputs[0], &mut instrs, &mut tensor_reg, &mut alloc_reg)?;
                let dst = alloc_reg()?;
                instrs.push(EwInstr::Unary { op: uop, a, dst });
                tensor_reg.insert(op.output, dst);
            }
            OpKind::Reduce { op: rop } => {
                let a = operand(op.inputs[0], &mut instrs, &mut tensor_reg, &mut alloc_reg)?;
                let slot = acc_tensors.len();
                acc_tensors.push(op.output);
                acc_init.push(reduce_identity(rop));
                instrs.push(EwInstr::Accumulate {
                    slot,
                    op: rop,
                    src: a,
                });
            }
            OpKind::Dot => {
                let a = operand(op.inputs[0], &mut instrs, &mut tensor_reg, &mut alloc_reg)?;
                let b = operand(op.inputs[1], &mut instrs, &mut tensor_reg, &mut alloc_reg)?;
                let prod = alloc_reg()?;
                instrs.push(EwInstr::Binary {
                    op: EwiseBinary::Mul,
                    a,
                    b,
                    dst: prod,
                });
                let slot = acc_tensors.len();
                acc_tensors.push(op.output);
                acc_init.push(0.0);
                instrs.push(EwInstr::Accumulate {
                    slot,
                    op: EwiseBinary::Add,
                    src: prod,
                });
            }
            _ => {
                return Err(FrontendError::Uncompilable {
                    context: format!("op kind {:?} cannot run on the E-Wise core", op.kind),
                });
            }
        }
    }

    // Outputs: vector tensors produced in the group and observable outside
    // it (consumed by an op outside the group, or loop-carried).
    for &op_id in group {
        let out = g.op(op_id).output;
        if g.tensor(out).kind == crate::graph::TensorKind::Scalar {
            continue;
        }
        let escapes =
            g.carry_target(out).is_some() || g.consumers(out).iter().any(|&c| !in_group(c));
        if escapes {
            let slot = output_tensors.len();
            let src = tensor_reg[&out];
            output_tensors.push(out);
            instrs.push(EwInstr::Store { slot, src });
        }
    }

    let program =
        EwiseProgram::from_instrs(instrs, input_tensors.len(), output_tensors.len(), acc_init);
    Ok((
        program,
        GroupInterface {
            input_tensors,
            output_tensors,
            param_tensors,
            acc_tensors,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fusion, GraphBuilder};
    use sparsepipe_semiring::SemiringOp;

    #[test]
    fn compiles_pagerank_ewise_group() {
        let mut b = GraphBuilder::new();
        let pr = b.input_vector("pr");
        let l = b.constant_matrix("L");
        let y = b.vxm(pr, l, SemiringOp::MulAdd).unwrap();
        let s = b.ewise_scalar(EwiseBinary::Mul, y, 0.85).unwrap();
        let next = b.ewise_scalar(EwiseBinary::Add, s, 0.15).unwrap();
        let d = b.ewise(EwiseBinary::AbsDiff, next, pr).unwrap();
        let _res = b.reduce(EwiseBinary::Add, d).unwrap();
        b.carry(next, pr).unwrap();
        let g = b.build().unwrap();
        let fused = fusion::fuse(&g);
        assert_eq!(fused.n_groups(), 1);

        let (prog, iface) = compile_group(&g, &fused.groups[0]).unwrap();
        // inputs: y (vxm output) and pr
        assert_eq!(iface.input_tensors.len(), 2);
        // outputs: `next` (carried)
        assert_eq!(iface.output_tensors, vec![next]);
        assert_eq!(prog.n_accumulators(), 1);

        // Functional check: pr = [0.5, 0.3], y = [0.2, 0.4]
        let yv = [0.2, 0.4];
        let prv = [0.5, 0.3];
        // slot order follows first use: y first, then pr
        let (outs, accs) = prog.run(&[&yv, &prv], 2);
        let expect0 = 0.2 * 0.85 + 0.15;
        let expect1 = 0.4 * 0.85 + 0.15;
        assert!((outs[0][0] - expect0).abs() < 1e-12);
        assert!((outs[0][1] - expect1).abs() < 1e-12);
        let resid = (expect0 - 0.5).abs() + (expect1 - 0.3).abs();
        assert!((accs[0] - resid).abs() < 1e-12);
    }

    #[test]
    fn dot_lowered_to_mul_accumulate() {
        let mut b = GraphBuilder::new();
        let x = b.input_vector("x");
        let y = b.input_vector("y");
        let _d = b.dot(x, y).unwrap();
        let g = b.build().unwrap();
        let fused = fusion::fuse(&g);
        let (prog, iface) = compile_group(&g, &fused.groups[0]).unwrap();
        assert_eq!(iface.acc_tensors.len(), 1);
        let (_, accs) = prog.run(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]], 3);
        assert_eq!(accs[0], 32.0);
    }

    #[test]
    fn scalar_params_are_loaded_per_run() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let alpha = b.input_scalar("alpha");
        let _s = b.ewise_broadcast(EwiseBinary::Mul, v, alpha).unwrap();
        let g = b.build().unwrap();
        let fused = fusion::fuse(&g);
        let (prog, iface) = compile_group(&g, &fused.groups[0]).unwrap();
        assert_eq!(iface.param_tensors, vec![alpha]);
        assert_eq!(prog.n_params(), 1);
        // _s has no external consumer and no carry... so no output slot:
        assert_eq!(prog.n_outputs(), 0);
    }

    #[test]
    fn intermediate_values_stay_in_registers() {
        // a chain of 4 e-wise ops: only the last escaping value is stored.
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let a = b.ewise_scalar(EwiseBinary::Mul, v, 2.0).unwrap();
        let c = b.ewise_scalar(EwiseBinary::Add, a, 1.0).unwrap();
        let d = b.ewise_scalar(EwiseBinary::Mul, c, 3.0).unwrap();
        b.carry(d, v).unwrap();
        let g = b.build().unwrap();
        let fused = fusion::fuse(&g);
        let (prog, _) = compile_group(&g, &fused.groups[0]).unwrap();
        let stores = prog
            .instrs()
            .iter()
            .filter(|i| matches!(i, EwInstr::Store { .. }))
            .count();
        assert_eq!(stores, 1, "only the escaping tensor is stored");
        assert_eq!(prog.n_inputs(), 1);
        let (outs, _) = prog.run(&[&[1.0]], 1);
        assert_eq!(outs[0][0], (1.0 * 2.0 + 1.0) * 3.0);
    }

    #[test]
    fn arithmetic_count_matches_ops() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let a = b.ewise_scalar(EwiseBinary::Mul, v, 2.0).unwrap();
        let c = b
            .ewise_unary(sparsepipe_semiring::EwiseUnary::Abs, a)
            .unwrap();
        b.carry(c, v).unwrap();
        let g = b.build().unwrap();
        let fused = fusion::fuse(&g);
        let (prog, _) = compile_group(&g, &fused.groups[0]).unwrap();
        assert_eq!(prog.arithmetic_per_lane(), 2);
    }

    #[test]
    fn reduce_identities() {
        assert_eq!(reduce_identity(EwiseBinary::Add), 0.0);
        assert_eq!(reduce_identity(EwiseBinary::Min), f64::INFINITY);
        assert_eq!(reduce_identity(EwiseBinary::Max), f64::NEG_INFINITY);
        assert_eq!(reduce_identity(EwiseBinary::Mul), 1.0);
    }

    #[test]
    #[should_panic(expected = "not a reduction monoid")]
    fn reduce_identity_rejects_nonmonoid() {
        reduce_identity(EwiseBinary::Sub);
    }
}

#[cfg(test)]
mod multi_output_tests {
    use super::*;
    use crate::{fusion, GraphBuilder};

    /// A fused group with two escaping tensors stores both (PageRank-like
    /// loops often carry several vectors out of one group).
    #[test]
    fn two_escaping_outputs_are_both_stored() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let w = b.input_vector("w");
        let a = b.ewise_scalar(EwiseBinary::Mul, v, 2.0).unwrap();
        let c = b.ewise_scalar(EwiseBinary::Add, a, 1.0).unwrap();
        let d = b.ewise(EwiseBinary::Max, a, w).unwrap();
        b.carry(c, v).unwrap();
        b.carry(d, w).unwrap();
        let g = b.build().unwrap();
        let fused = fusion::fuse(&g);
        assert_eq!(fused.n_groups(), 1);
        let (prog, iface) = compile_group(&g, &fused.groups[0]).unwrap();
        assert_eq!(prog.n_outputs(), 2);
        assert_eq!(iface.output_tensors.len(), 2);
        let (outs, _) = prog.run(&[&[3.0], &[10.0]], 1);
        // slot order follows the group's (valid but unspecified)
        // topological order — resolve through the interface
        let slot_of = |t| iface.output_tensors.iter().position(|&x| x == t).unwrap();
        assert_eq!(outs[slot_of(c)][0], 3.0 * 2.0 + 1.0);
        assert_eq!(outs[slot_of(d)][0], 10.0f64.max(6.0));
    }

    /// A tensor consumed both inside and outside the group is stored once
    /// and still feeds the in-group consumer from its register.
    #[test]
    fn escaping_intermediate_feeds_both_paths() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let mid = b.ewise_scalar(EwiseBinary::Mul, v, 3.0).unwrap();
        let fin = b.ewise_scalar(EwiseBinary::Add, mid, 1.0).unwrap();
        b.carry(mid, v).unwrap(); // mid escapes via carry
        let _sink = fin; // fin does not escape (no consumer, no carry)
        let g = b.build().unwrap();
        let fused = fusion::fuse(&g);
        let (prog, iface) = compile_group(&g, &fused.groups[0]).unwrap();
        assert_eq!(iface.output_tensors, vec![mid]);
        let (outs, _) = prog.run(&[&[2.0]], 1);
        assert_eq!(outs[0][0], 6.0);
    }
}
