//! Ergonomic construction of [`DataflowGraph`]s.

use sparsepipe_semiring::{EwiseBinary, EwiseUnary, SemiringOp};

use crate::graph::{
    DataflowGraph, OpId, OpKind, OpNode, TensorId, TensorKind, TensorNode, TensorRole,
};
use crate::FrontendError;

/// Builder for [`DataflowGraph`]s — the programmer-facing API, mirroring a
/// GraphBLAS program (Fig 1 of the paper).
///
/// Each method adds a data or operation node and returns the [`TensorId`]
/// of the result. [`GraphBuilder::carry`] declares loop-carried
/// dependencies; [`GraphBuilder::build`] validates shapes and acyclicity.
///
/// # Example
///
/// ```
/// use sparsepipe_frontend::GraphBuilder;
/// use sparsepipe_semiring::SemiringOp;
///
/// # fn main() -> Result<(), sparsepipe_frontend::FrontendError> {
/// let mut b = GraphBuilder::new();
/// let frontier = b.input_vector("frontier");
/// let adj = b.constant_matrix("A");
/// let next = b.vxm(frontier, adj, SemiringOp::AndOr)?;
/// b.carry(next, frontier)?;
/// let graph = b.build()?;
/// assert_eq!(graph.n_ops(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    tensors: Vec<TensorNode>,
    ops: Vec<OpNode>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    fn add_tensor(
        &mut self,
        name: impl Into<String>,
        kind: TensorKind,
        role: TensorRole,
    ) -> TensorId {
        self.tensors.push(TensorNode {
            name: name.into(),
            kind,
            role,
            carries_into: None,
        });
        TensorId(self.tensors.len() - 1)
    }

    /// Declares a live-in dense vector (bound by the caller).
    pub fn input_vector(&mut self, name: impl Into<String>) -> TensorId {
        self.add_tensor(name, TensorKind::Vector, TensorRole::Input)
    }

    /// Declares a live-in scalar.
    pub fn input_scalar(&mut self, name: impl Into<String>) -> TensorId {
        self.add_tensor(name, TensorKind::Scalar, TensorRole::Input)
    }

    /// Declares a live-in dense feature matrix (GCN activations).
    pub fn input_dense(&mut self, name: impl Into<String>) -> TensorId {
        self.add_tensor(name, TensorKind::DenseMatrix, TensorRole::Input)
    }

    /// Declares the constant sparse matrix shared across iterations (the
    /// `vxm` operand whose reuse the OEI dataflow captures).
    pub fn constant_matrix(&mut self, name: impl Into<String>) -> TensorId {
        self.add_tensor(name, TensorKind::SparseMatrix, TensorRole::Constant)
    }

    /// Declares a live-in *sparse matrix* that changes across iterations
    /// (a multi-source BFS frontier, Markov clustering's evolving `M`,
    /// sparse GCN activations) — the flowing operand of `mxm` loops,
    /// eligible as a loop-carry target.
    pub fn input_matrix(&mut self, name: impl Into<String>) -> TensorId {
        self.add_tensor(name, TensorKind::SparseMatrix, TensorRole::Input)
    }

    /// Declares a constant dense matrix (GCN weights).
    pub fn constant_dense(&mut self, name: impl Into<String>) -> TensorId {
        self.add_tensor(name, TensorKind::DenseMatrix, TensorRole::Constant)
    }

    /// Declares a constant vector (e.g. a per-vertex normalization).
    pub fn constant_vector(&mut self, name: impl Into<String>) -> TensorId {
        self.add_tensor(name, TensorKind::Vector, TensorRole::Constant)
    }

    fn check(&self, t: TensorId) -> Result<&TensorNode, FrontendError> {
        self.tensors.get(t.0).ok_or(FrontendError::UnknownTensor(t))
    }

    fn expect_kind(&self, t: TensorId, kind: TensorKind, ctx: &str) -> Result<(), FrontendError> {
        let node = self.check(t)?;
        if node.kind != kind {
            return Err(FrontendError::KindMismatch {
                context: format!("{ctx}: {} is {:?}, expected {kind:?}", node.name, node.kind),
            });
        }
        Ok(())
    }

    fn add_op(&mut self, kind: OpKind, inputs: Vec<TensorId>, out_kind: TensorKind) -> TensorId {
        let out = self.add_tensor(
            format!("%{}", self.tensors.len()),
            out_kind,
            TensorRole::Produced,
        );
        self.ops.push(OpNode {
            kind,
            inputs,
            output: out,
        });
        out
    }

    /// `out = x ⊗⊕ A` — vector × sparse-matrix product under `semiring`.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::KindMismatch`] unless `x` is a vector and
    /// `a` a sparse matrix.
    pub fn vxm(
        &mut self,
        x: TensorId,
        a: TensorId,
        semiring: SemiringOp,
    ) -> Result<TensorId, FrontendError> {
        self.expect_kind(x, TensorKind::Vector, "vxm input")?;
        self.expect_kind(a, TensorKind::SparseMatrix, "vxm matrix")?;
        Ok(self.add_op(OpKind::Vxm { semiring }, vec![x, a], TensorKind::Vector))
    }

    /// `out = A ⊗⊕ x` — sparse-matrix × vector product under `semiring`
    /// (row-oriented: `out[r] = ⊕_c A[r][c] ⊗ x[c]`).
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::KindMismatch`] unless `a` is a sparse
    /// matrix and `x` a vector.
    pub fn mxv(
        &mut self,
        a: TensorId,
        x: TensorId,
        semiring: SemiringOp,
    ) -> Result<TensorId, FrontendError> {
        self.expect_kind(x, TensorKind::Vector, "mxv input")?;
        self.expect_kind(a, TensorKind::SparseMatrix, "mxv matrix")?;
        Ok(self.add_op(OpKind::Mxv { semiring }, vec![x, a], TensorKind::Vector))
    }

    /// `out = A ⊗⊕ B` — sparse × sparse matrix multiplication
    /// (GraphBLAS's `mxm` / SpMSpM), evaluated with Gustavson's algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::KindMismatch`] unless both operands are
    /// sparse matrices.
    pub fn mxm(
        &mut self,
        a: TensorId,
        b2: TensorId,
        semiring: SemiringOp,
    ) -> Result<TensorId, FrontendError> {
        self.expect_kind(a, TensorKind::SparseMatrix, "mxm lhs")?;
        self.expect_kind(b2, TensorKind::SparseMatrix, "mxm rhs")?;
        Ok(self.add_op(
            OpKind::Mxm { semiring },
            vec![a, b2],
            TensorKind::SparseMatrix,
        ))
    }

    /// `out = X ⊗⊕ A` — dense-feature-matrix × sparse-matrix product
    /// (GCN's SpMM; decomposes into one `vxm` per feature column).
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::KindMismatch`] on wrong input kinds.
    pub fn spmm(
        &mut self,
        x: TensorId,
        a: TensorId,
        semiring: SemiringOp,
    ) -> Result<TensorId, FrontendError> {
        self.expect_kind(x, TensorKind::DenseMatrix, "spmm input")?;
        self.expect_kind(a, TensorKind::SparseMatrix, "spmm matrix")?;
        Ok(self.add_op(
            OpKind::SpMM { semiring },
            vec![x, a],
            TensorKind::DenseMatrix,
        ))
    }

    /// `out[i,j] = a[i,j] op b[i,j]` — element-wise combination of two
    /// sparse matrices (GraphBLAS's `eWiseMult`/`eWiseAdd`), with absent
    /// entries read as zero and exact-zero results kept implicit. The
    /// masking/inflation companion of [`GraphBuilder::mxm`].
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::KindMismatch`] unless both operands are
    /// sparse matrices.
    pub fn ewise_matrix(
        &mut self,
        op: EwiseBinary,
        a: TensorId,
        b2: TensorId,
    ) -> Result<TensorId, FrontendError> {
        self.expect_kind(a, TensorKind::SparseMatrix, "ewise_matrix lhs")?;
        self.expect_kind(b2, TensorKind::SparseMatrix, "ewise_matrix rhs")?;
        Ok(self.add_op(
            OpKind::EwiseMatrix { op },
            vec![a, b2],
            TensorKind::SparseMatrix,
        ))
    }

    /// `out = X · W` — dense matrix multiply (GCN's weight application).
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::KindMismatch`] on wrong input kinds.
    pub fn dense_mm(&mut self, x: TensorId, w: TensorId) -> Result<TensorId, FrontendError> {
        self.expect_kind(x, TensorKind::DenseMatrix, "dense_mm lhs")?;
        self.expect_kind(w, TensorKind::DenseMatrix, "dense_mm rhs")?;
        Ok(self.add_op(OpKind::DenseMM, vec![x, w], TensorKind::DenseMatrix))
    }

    /// Element-wise binary operation over two same-kind tensors.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::KindMismatch`] if kinds differ or are
    /// scalar/matrix (use [`GraphBuilder::ewise_broadcast`] for scalars).
    pub fn ewise(
        &mut self,
        op: EwiseBinary,
        a: TensorId,
        b: TensorId,
    ) -> Result<TensorId, FrontendError> {
        let ka = self.check(a)?.kind;
        let kb = self.check(b)?.kind;
        if ka != kb || !matches!(ka, TensorKind::Vector | TensorKind::DenseMatrix) {
            return Err(FrontendError::KindMismatch {
                context: format!("ewise {op:?}: {ka:?} vs {kb:?}"),
            });
        }
        Ok(self.add_op(OpKind::EwiseBinary { op }, vec![a, b], ka))
    }

    /// Element-wise binary operation against a *scalar tensor* (broadcast):
    /// `out[i] = a[i] op s`.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::KindMismatch`] unless `a` is a vector or
    /// dense matrix and `s` a scalar.
    pub fn ewise_broadcast(
        &mut self,
        op: EwiseBinary,
        a: TensorId,
        s: TensorId,
    ) -> Result<TensorId, FrontendError> {
        let ka = self.check(a)?.kind;
        if !matches!(ka, TensorKind::Vector | TensorKind::DenseMatrix) {
            return Err(FrontendError::KindMismatch {
                context: format!("ewise_broadcast {op:?}: lhs is {ka:?}"),
            });
        }
        self.expect_kind(s, TensorKind::Scalar, "ewise_broadcast scalar")?;
        Ok(self.add_op(OpKind::EwiseScalarBroadcast { op }, vec![a, s], ka))
    }

    /// Element-wise binary operation against an immediate constant:
    /// `out[i] = a[i] op imm`.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::KindMismatch`] unless `a` is a vector or
    /// dense matrix.
    pub fn ewise_scalar(
        &mut self,
        op: EwiseBinary,
        a: TensorId,
        imm: f64,
    ) -> Result<TensorId, FrontendError> {
        let ka = self.check(a)?.kind;
        if !matches!(ka, TensorKind::Vector | TensorKind::DenseMatrix) {
            return Err(FrontendError::KindMismatch {
                context: format!("ewise_scalar {op:?}: lhs is {ka:?}"),
            });
        }
        Ok(self.add_op(OpKind::EwiseImmediate { op, imm }, vec![a], ka))
    }

    /// Element-wise unary operation `out[i] = op(a[i])`.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::KindMismatch`] unless `a` is a vector or
    /// dense matrix.
    pub fn ewise_unary(&mut self, op: EwiseUnary, a: TensorId) -> Result<TensorId, FrontendError> {
        let ka = self.check(a)?.kind;
        if !matches!(ka, TensorKind::Vector | TensorKind::DenseMatrix) {
            return Err(FrontendError::KindMismatch {
                context: format!("ewise_unary {op:?}: input is {ka:?}"),
            });
        }
        Ok(self.add_op(OpKind::EwiseUnary { op }, vec![a], ka))
    }

    /// Reduces a vector to a scalar with a commutative monoid
    /// (GraphBLAS's `fold`).
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::KindMismatch`] unless `a` is a vector.
    pub fn reduce(&mut self, op: EwiseBinary, a: TensorId) -> Result<TensorId, FrontendError> {
        self.expect_kind(a, TensorKind::Vector, "reduce input")?;
        Ok(self.add_op(OpKind::Reduce { op }, vec![a], TensorKind::Scalar))
    }

    /// Dot product of two vectors.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::KindMismatch`] unless both are vectors.
    pub fn dot(&mut self, a: TensorId, b: TensorId) -> Result<TensorId, FrontendError> {
        self.expect_kind(a, TensorKind::Vector, "dot lhs")?;
        self.expect_kind(b, TensorKind::Vector, "dot rhs")?;
        Ok(self.add_op(OpKind::Dot, vec![a, b], TensorKind::Scalar))
    }

    /// Declares that produced tensor `from` becomes tensor `to` at the
    /// start of the next iteration (GraphBLAS's `swap`).
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::InvalidCarry`] unless `from` is produced,
    /// `to` is an input of the same kind, and neither end is already part
    /// of another carry.
    pub fn carry(&mut self, from: TensorId, to: TensorId) -> Result<(), FrontendError> {
        let from_node = self.check(from)?;
        let to_node = self.check(to)?;
        if from_node.role != TensorRole::Produced {
            return Err(FrontendError::InvalidCarry {
                context: format!("{} is not produced this iteration", from_node.name),
            });
        }
        if to_node.role != TensorRole::Input {
            return Err(FrontendError::InvalidCarry {
                context: format!("{} is not a loop input", to_node.name),
            });
        }
        if from_node.kind != to_node.kind {
            return Err(FrontendError::InvalidCarry {
                context: format!("kind mismatch: {:?} -> {:?}", from_node.kind, to_node.kind),
            });
        }
        if from_node.carries_into.is_some() {
            return Err(FrontendError::InvalidCarry {
                context: format!("{} already carries into another tensor", from_node.name),
            });
        }
        if self.tensors.iter().any(|t| t.carries_into == Some(to)) {
            return Err(FrontendError::InvalidCarry {
                context: format!("{} is already the target of a carry", to_node.name),
            });
        }
        self.tensors[from.0].carries_into = Some(to);
        Ok(())
    }

    /// Validates the graph and returns it.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::Cycle`] if the combinational part of the
    /// graph (ignoring loop-carried edges) is cyclic, or
    /// [`FrontendError::DuplicateName`] if two caller-visible tensors
    /// (inputs/constants) share a name.
    pub fn build(self) -> Result<DataflowGraph, FrontendError> {
        let mut seen: Vec<&str> = Vec::new();
        for t in &self.tensors {
            if t.role == TensorRole::Produced {
                continue;
            }
            if seen.contains(&t.name.as_str()) {
                return Err(FrontendError::DuplicateName {
                    name: t.name.clone(),
                });
            }
            seen.push(&t.name);
        }
        let topo_order = topo_sort(&self.tensors, &self.ops)?;
        Ok(DataflowGraph {
            tensors: self.tensors,
            ops: self.ops,
            topo_order,
        })
    }
}

/// Kahn's algorithm over op nodes; tensors are edges.
fn topo_sort(tensors: &[TensorNode], ops: &[OpNode]) -> Result<Vec<OpId>, FrontendError> {
    let producer_of: Vec<Option<usize>> = {
        let mut p = vec![None; tensors.len()];
        for (i, op) in ops.iter().enumerate() {
            p[op.output.0] = Some(i);
        }
        p
    };
    let mut indegree = vec![0usize; ops.len()];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); ops.len()];
    for (i, op) in ops.iter().enumerate() {
        for &input in &op.inputs {
            if let Some(p) = producer_of[input.0] {
                indegree[i] += 1;
                consumers[p].push(i);
            }
        }
    }
    let mut ready: Vec<usize> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| i)
        .collect();
    let mut order = Vec::with_capacity(ops.len());
    while let Some(i) = ready.pop() {
        order.push(OpId(i));
        for &c in &consumers[i] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                ready.push(c);
            }
        }
    }
    if order.len() != ops.len() {
        return Err(FrontendError::Cycle);
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_pagerank_like_graph() {
        let mut b = GraphBuilder::new();
        let pr = b.input_vector("pr");
        let l = b.constant_matrix("L");
        let y = b.vxm(pr, l, SemiringOp::MulAdd).unwrap();
        let scaled = b.ewise_scalar(EwiseBinary::Mul, y, 0.85).unwrap();
        let next = b.ewise_scalar(EwiseBinary::Add, scaled, 0.15).unwrap();
        let resid = b.ewise(EwiseBinary::AbsDiff, next, pr).unwrap();
        let _res = b.reduce(EwiseBinary::Add, resid).unwrap();
        b.carry(next, pr).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.n_ops(), 5);
        assert_eq!(g.carries(), vec![(next, pr)]);
        assert_eq!(g.shared_matrix(), Some(l));
    }

    #[test]
    fn vxm_rejects_wrong_kinds() {
        let mut b = GraphBuilder::new();
        let s = b.input_scalar("s");
        let l = b.constant_matrix("L");
        assert!(b.vxm(s, l, SemiringOp::MulAdd).is_err());
        let v = b.input_vector("v");
        assert!(b.vxm(v, v, SemiringOp::MulAdd).is_err());
    }

    #[test]
    fn ewise_requires_matching_kinds() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let s = b.input_scalar("s");
        assert!(b.ewise(EwiseBinary::Add, v, s).is_err());
        assert!(b.ewise_broadcast(EwiseBinary::Add, v, s).is_ok());
        assert!(b.ewise_broadcast(EwiseBinary::Add, s, s).is_err());
    }

    #[test]
    fn carry_validation() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let w = b.input_vector("w");
        let l = b.constant_matrix("L");
        let y = b.vxm(v, l, SemiringOp::MulAdd).unwrap();
        // input -> input is invalid
        assert!(b.carry(v, w).is_err());
        // produced -> produced is invalid
        let y2 = b.vxm(w, l, SemiringOp::MulAdd).unwrap();
        assert!(b.carry(y, y2).is_err());
        // valid carry
        b.carry(y, v).unwrap();
        // double-carry from same source is invalid
        assert!(b.carry(y, w).is_err());
        // double-carry into same target is invalid
        assert!(b.carry(y2, v).is_err());
        b.carry(y2, w).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn kind_mismatch_on_carry() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let _s = b.input_scalar("s");
        let sum = b.reduce(EwiseBinary::Add, v).unwrap();
        let s_in = b.input_scalar("t");
        // scalar -> scalar carry is fine
        b.carry(sum, s_in).unwrap();
        // vector result into scalar input is not
        let mut b2 = GraphBuilder::new();
        let v2 = b2.input_vector("v");
        let l = b2.constant_matrix("L");
        let y = b2.vxm(v2, l, SemiringOp::MulAdd).unwrap();
        let sc = b2.input_scalar("sc");
        assert!(b2.carry(y, sc).is_err());
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let l = b.constant_matrix("L");
        let y = b.vxm(v, l, SemiringOp::MulAdd).unwrap();
        let z = b.ewise_scalar(EwiseBinary::Mul, y, 2.0).unwrap();
        let _w = b.ewise(EwiseBinary::Add, z, y).unwrap();
        let g = b.build().unwrap();
        let order = g.topo_order();
        let pos = |target: OpId| order.iter().position(|&o| o == target).unwrap();
        // producer of y must precede producer of z which precedes w's op
        let y_op = g.producer(y).unwrap();
        let z_op = g.producer(z).unwrap();
        assert!(pos(y_op) < pos(z_op));
    }
}
