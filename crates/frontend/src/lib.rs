//! GraphBLAS-style tensor dataflow frontend for Sparsepipe.
//!
//! Modern STA frameworks (GraphBLAS, ALP, TACO, …) let programmers express
//! applications as **tensor dataflow graphs** of semiring operators (`vxm`,
//! `mxm`) and element-wise (*e-wise*) operations. The Sparsepipe paper's
//! key observation is that this representation exposes *inter-operator*
//! reuse that hand-written loop nests hide:
//!
//! 1. **Producer–consumer reuse** — e-wise chains can be fused so
//!    intermediate vectors never leave the chip (§II-A, Fig 2b).
//! 2. **Cross-iteration reuse** — when the path from one `vxm`'s output to
//!    the next `vxm`'s input consists only of operations with *sub-tensor
//!    dependency* (element `i` of the output depends only on element `i` of
//!    the inputs), the two `vxm`s can execute concurrently under the OEI
//!    dataflow, and the shared sparse matrix is fetched once for both
//!    (§III).
//!
//! This crate implements that pipeline:
//!
//! * [`DataflowGraph`] / [`GraphBuilder`] — the IR and its construction API.
//! * [`fusion`] — groups connected e-wise operations (Fig 2b's pass).
//! * [`analysis`] — sub-tensor dependency analysis and OEI-subgraph
//!   detection (§III-A).
//! * [`ewise_vm`] — the E-Wise core's vector instruction set and the
//!   compiler from fused groups to instructions (§IV-F's "fixed vector
//!   instructions for the e-wise core").
//! * [`program`] — [`SparsepipeProgram`], the compiled artifact the
//!   simulator executes, plus [`WorkloadProfile`] consumed by the baseline
//!   cost models.
//! * [`interp`] — a scalar reference interpreter (golden model) used to
//!   validate every transformed/fused/simulated execution.
//!
//! # Example: PageRank's inner loop as a dataflow graph
//!
//! ```
//! use sparsepipe_frontend::GraphBuilder;
//! use sparsepipe_semiring::{EwiseBinary, SemiringOp};
//!
//! # fn main() -> Result<(), sparsepipe_frontend::FrontendError> {
//! let mut b = GraphBuilder::new();
//! let pr = b.input_vector("pr");
//! let graph_matrix = b.constant_matrix("L");
//! let contrib = b.vxm(pr, graph_matrix, SemiringOp::MulAdd)?;
//! let scaled = b.ewise_scalar(EwiseBinary::Mul, contrib, 0.85)?;
//! let pr_next = b.ewise_scalar(EwiseBinary::Add, scaled, 0.15)?;
//! b.carry(pr_next, pr)?; // pr_next becomes next iteration's pr
//! let g = b.build()?;
//!
//! let analysis = sparsepipe_frontend::analysis::analyze(&g);
//! assert!(analysis.oei.is_some(), "PageRank exposes the OEI dataflow");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod builder;
pub mod einsum;
mod error;
pub mod ewise_vm;
pub mod fusion;
mod graph;
pub mod interp;
pub mod program;

pub use builder::GraphBuilder;
pub use error::FrontendError;
pub use graph::{
    DataflowGraph, OpId, OpKind, OpNode, TensorId, TensorKind, TensorNode, TensorRole,
};
pub use program::{compile, OperatorClass, OperatorSummary, SparsepipeProgram, WorkloadProfile};
