//! Error type for graph construction, analysis, and compilation.

use std::fmt;

use crate::{OpId, TensorId};

/// Errors produced while building, analyzing, compiling, or interpreting a
/// dataflow graph.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrontendError {
    /// An operation was given a tensor of the wrong kind (e.g. `vxm` with a
    /// scalar where a vector is expected).
    KindMismatch {
        /// Which construction call failed.
        context: String,
    },
    /// A tensor id does not belong to this graph/builder.
    UnknownTensor(TensorId),
    /// An operation id does not belong to this graph.
    UnknownOp(OpId),
    /// A loop-carried edge is invalid (e.g. carrying into a non-input, or
    /// kinds differ).
    InvalidCarry {
        /// Why the carry was rejected.
        context: String,
    },
    /// The graph contains a combinational cycle (only loop-carried edges may
    /// close cycles).
    Cycle,
    /// Compilation found no executable schedule for the graph.
    Uncompilable {
        /// Why compilation failed.
        context: String,
    },
    /// The interpreter was started with missing or ill-shaped bindings.
    BadBinding {
        /// Which binding and why.
        context: String,
    },
    /// Two caller-visible tensors (inputs/constants) share a name, which
    /// would make name-based binding and carry resolution ambiguous.
    DuplicateName {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::KindMismatch { context } => write!(f, "kind mismatch: {context}"),
            FrontendError::UnknownTensor(t) => write!(f, "unknown tensor id {t:?}"),
            FrontendError::UnknownOp(o) => write!(f, "unknown op id {o:?}"),
            FrontendError::InvalidCarry { context } => {
                write!(f, "invalid loop-carried edge: {context}")
            }
            FrontendError::Cycle => write!(f, "combinational cycle in dataflow graph"),
            FrontendError::Uncompilable { context } => write!(f, "cannot compile: {context}"),
            FrontendError::BadBinding { context } => write!(f, "bad binding: {context}"),
            FrontendError::DuplicateName { name } => {
                write!(f, "duplicate tensor name {name:?} among inputs/constants")
            }
        }
    }
}

impl std::error::Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrontendError>();
    }

    #[test]
    fn display_is_nonempty() {
        let e = FrontendError::Cycle;
        assert!(!e.to_string().is_empty());
    }
}
