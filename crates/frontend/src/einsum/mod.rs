//! A text front door for STA programs: sparse-einsum expressions with
//! semiring annotations, compiled onto the existing [`DataflowGraph`] IR.
//!
//! # Grammar
//!
//! ```text
//! program  := item (';' item)* ('@' setting*)?
//! item     := decl | stmt
//! decl     := ('in' | 'const') 'dense'? name indices?
//! stmt     := name indices? assign rhs
//! assign   := '='                                  e-wise statement
//!           | addop '.' mulop '='                  semiring contraction
//!             (known: '+.*=' '|.&=' 'min.+=' 'aril.+=')
//! rhs      := tensor '*' tensor                    (contraction form)
//!           | operand SYMBOL operand               e-wise infix
//!           | NAME '(' operand (',' operand)? ')'  e-wise call / reduction
//!           | operand                              copy (identity)
//! operand  := tensor | NUMBER | '-' NUMBER
//! tensor   := name indices?
//! indices  := '[' name (',' name)* ']'
//! setting  := 'iter' '=' INT | 'feature' '=' INT | 'name' '=' name
//!           | 'carry' '=' name ('->' name)?
//! ```
//!
//! `#` starts a comment to end of line. Identifiers are ASCII. Undeclared
//! names default by index count: none → scalar input, one → vector input,
//! two → sparse constant matrix (the reuse-bearing role). Example —
//! PageRank's inner loop:
//!
//! ```
//! use sparsepipe_frontend::einsum;
//!
//! let src = "contrib[j] +.*= pr[i] * L[i,j]; scaled[j] = contrib[j] * 0.85; \
//!            next[j] = scaled[j] + 0.15 @ iter=8 name=pr carry=next->pr";
//! let program = einsum::parse(src)?;
//! let lowered = einsum::lower(&program)?;
//! assert_eq!(lowered.iterations, 8);
//! let analysis = sparsepipe_frontend::analysis::analyze(&lowered.graph);
//! assert!(analysis.oei.is_some(), "the expressed loop exposes OEI reuse");
//! # Ok::<(), sparsepipe_frontend::einsum::EinsumError>(())
//! ```
//!
//! Every accepted expression flows through the unchanged
//! fusion/analysis/lint stack; the conformance suites check each corpus
//! expression bitwise against the scalar interpreter.

pub mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{Program, Span};
pub use lower::{lower, Lowered};
pub use parser::parse;

use sparsepipe_tensor::{CooMatrix, DenseMatrix, DenseVector};

use crate::graph::{DataflowGraph, OpKind, TensorKind, TensorRole};
use crate::interp::{Bindings, Value};

/// The classification of an einsum front-end rejection; each kind maps to
/// one stable `SP-E` lint code in `sparsepipe-lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EinsumErrorKind {
    /// Lexical or grammatical violation.
    Syntax,
    /// Unknown semiring, function, or reduction name.
    UnknownOperator,
    /// Index-count or operand-kind inconsistency.
    Arity,
    /// A contraction whose index structure matches no operator.
    Contraction,
    /// A program-level violation (reassignment, bad carry, cycle, …).
    Structure,
}

impl EinsumErrorKind {
    /// Short lowercase label used in rendered diagnostics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EinsumErrorKind::Syntax => "syntax",
            EinsumErrorKind::UnknownOperator => "unknown operator",
            EinsumErrorKind::Arity => "arity",
            EinsumErrorKind::Contraction => "contraction",
            EinsumErrorKind::Structure => "structure",
        }
    }
}

/// A spanned front-end rejection: every hostile input yields one of
/// these — never a panic.
#[derive(Debug, Clone, PartialEq)]
pub struct EinsumError {
    /// Rejection class.
    pub kind: EinsumErrorKind,
    /// Byte span of the offending source region.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl EinsumError {
    /// Builds an error.
    #[must_use]
    pub fn new(kind: EinsumErrorKind, span: Span, message: impl Into<String>) -> Self {
        EinsumError {
            kind,
            span,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for EinsumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} error at {}: {}",
            self.kind.label(),
            self.span,
            self.message
        )
    }
}

impl std::error::Error for EinsumError {}

/// Parses and lowers in one step.
///
/// # Errors
///
/// Propagates the spanned [`EinsumError`] from [`parse`] or [`lower`].
pub fn compile_expression(src: &str) -> Result<Lowered, EinsumError> {
    lower(&parse(src)?)
}

/// Synthesizes deterministic interpreter bindings for a lowered graph.
///
/// The first constant sparse matrix (the shared, reuse-bearing operand)
/// is bound to `matrix`; every other input/constant gets a value computed
/// from its tensor index alone, so two structurally equal graphs always
/// receive bitwise-identical bindings — the property the differential
/// conformance suites build on. Dense tensors consumed as the weight
/// operand of a dense matmul are shaped `f×f`, all others `n×f`.
#[must_use]
pub fn bindings_for(graph: &DataflowGraph, matrix: &CooMatrix, feature_dim: usize) -> Bindings {
    let n = matrix.nrows() as usize;
    let f = feature_dim.max(1);
    let shared = graph.shared_matrix();
    // Dense tensors used as the right operand of DenseMM are weights
    // (f×f); everything else is an n×f activation.
    let mut weight_like = std::collections::HashSet::new();
    for (_, op) in graph.ops() {
        if op.kind == OpKind::DenseMM {
            if let Some(&w) = op.inputs.get(1) {
                weight_like.insert(w);
            }
        }
    }
    let mut out = Bindings::new();
    for (id, node) in graph.tensors() {
        if node.role == TensorRole::Produced {
            continue;
        }
        let t = id.index() as u64;
        let value = match node.kind {
            TensorKind::SparseMatrix => {
                if Some(id) == shared {
                    Value::sparse(matrix)
                } else {
                    Value::sparse(&synth_sparse(matrix.nrows(), t))
                }
            }
            TensorKind::Vector => {
                let v: Vec<f64> = (0..n as u64).map(|i| synth_value(i, t)).collect();
                Value::Vector(DenseVector::from(v))
            }
            TensorKind::DenseMatrix => {
                let rows = if weight_like.contains(&id) { f } else { n };
                let data: Vec<f64> = (0..(rows * f) as u64)
                    .map(|i| synth_value(i, t.wrapping_add(101)))
                    .collect();
                Value::Dense(
                    DenseMatrix::from_row_major(rows, f, data)
                        .expect("rows*f elements were generated"),
                )
            }
            TensorKind::Scalar => Value::Scalar(0.5 + 0.125 * (t % 5) as f64),
        };
        out.insert(node.name.clone(), value);
    }
    out
}

/// A deterministic value in `(0, 2]`, exactly representable, so e-wise
/// chains stay finite under every semiring.
fn synth_value(i: u64, salt: u64) -> f64 {
    let h = i
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    ((h >> 59) + 1) as f64 / 16.0
}

/// A deterministic circulant band matrix distinct from the dataset
/// matrix, for auxiliary sparse operands (weights, masks).
fn synth_sparse(n: u32, salt: u64) -> CooMatrix {
    let band = 3u32.min(n.max(1));
    let mut entries = Vec::with_capacity((n * band) as usize);
    for i in 0..n {
        for k in 0..band {
            let j = (i + k * (1 + salt as u32 % 3)) % n;
            entries.push((i, j, synth_value(u64::from(i * band + k), salt)));
        }
    }
    entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
    entries.dedup_by_key(|&mut (r, c, _)| (r, c));
    CooMatrix::from_entries(n, n, entries).expect("synthesized coordinates are in range")
}
