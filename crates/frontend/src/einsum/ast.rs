//! Typed AST for the sparse-einsum expression language.
//!
//! Every node records the byte [`Span`] it was parsed from so diagnostics
//! can point back into the source text. Structural equality (`PartialEq`)
//! deliberately **ignores spans**: the round-trip obligation is
//! `parse(p.pretty()) == p`, and a reprint never preserves byte offsets.

use sparsepipe_semiring::{EwiseBinary, EwiseUnary, SemiringOp};

/// A half-open byte range `start..end` into the source expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the spanned region.
    pub start: usize,
    /// One past the last byte of the spanned region.
    pub end: usize,
}

impl Span {
    /// Builds a span covering `start..end`.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// How a declaration binds its tensor into the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclRole {
    /// `in` — a live-in bound before the first iteration (may be carried
    /// into).
    In,
    /// `const` — invariant across iterations (the reuse-bearing role).
    Const,
}

/// A tensor declaration, e.g. `in pr[i]` or `const dense W[f,g]`.
#[derive(Debug, Clone)]
pub struct Decl {
    /// Binding role.
    pub role: DeclRole,
    /// `true` when the `dense` modifier is present (two-index tensors
    /// default to sparse).
    pub dense: bool,
    /// Tensor name.
    pub name: String,
    /// Index labels; the count fixes the kind (0 scalar, 1 vector,
    /// 2 matrix).
    pub indices: Vec<String>,
    /// Source span of the whole declaration.
    pub span: Span,
}

impl PartialEq for Decl {
    fn eq(&self, other: &Self) -> bool {
        self.role == other.role
            && self.dense == other.dense
            && self.name == other.name
            && self.indices == other.indices
    }
}

/// One operand of a right-hand side.
#[derive(Debug, Clone)]
pub enum Operand {
    /// An indexed tensor reference, e.g. `A[i,j]` or the scalar `alpha`.
    Tensor {
        /// Referenced tensor name.
        name: String,
        /// Index labels (empty for scalars).
        indices: Vec<String>,
        /// Source span.
        span: Span,
    },
    /// A numeric literal (lowered to an e-wise immediate).
    Number {
        /// The literal value.
        value: f64,
        /// Source span.
        span: Span,
    },
}

impl Operand {
    /// The operand's source span.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Operand::Tensor { span, .. } | Operand::Number { span, .. } => *span,
        }
    }
}

impl PartialEq for Operand {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                Operand::Tensor { name, indices, .. },
                Operand::Tensor {
                    name: n2,
                    indices: i2,
                    ..
                },
            ) => name == n2 && indices == i2,
            (Operand::Number { value, .. }, Operand::Number { value: v2, .. }) => {
                value.to_bits() == v2.to_bits()
            }
            _ => false,
        }
    }
}

/// The assignment operator of a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// Plain `=` — an e-wise / dense / reduction statement.
    Ewise,
    /// `<add>.<mul>=` — a semiring contraction (e.g. `+.*=`, `min.+=`).
    Semiring(SemiringOp),
}

/// A statement's right-hand side.
#[derive(Debug, Clone, PartialEq)]
pub enum Rhs {
    /// `a * b` under a semiring assignment — a contraction whose operator
    /// is inferred from the operand kinds and index positions.
    Contract(Operand, Operand),
    /// An e-wise binary application (infix symbol or call form).
    Binary(EwiseBinary, Operand, Operand),
    /// An e-wise unary application, e.g. `relu(z[i])`.
    Unary(EwiseUnary, Operand),
    /// A vector → scalar reduction, e.g. `sum(err[i])`.
    Reduce(EwiseBinary, Operand),
    /// A dot product, `dot(a[i], b[i])`.
    Dot(Operand, Operand),
}

/// One statement: `target[indices] <assign> rhs`.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Name the result is bound to.
    pub target: String,
    /// Target index labels (empty for a scalar target).
    pub indices: Vec<String>,
    /// Assignment operator.
    pub assign: AssignOp,
    /// Right-hand side.
    pub rhs: Rhs,
    /// Source span of the whole statement.
    pub span: Span,
}

impl PartialEq for Stmt {
    fn eq(&self, other: &Self) -> bool {
        self.target == other.target
            && self.indices == other.indices
            && self.assign == other.assign
            && self.rhs == other.rhs
    }
}

/// A loop-carry setting: `carry=to` (last statement's result) or
/// `carry=from->to`.
#[derive(Debug, Clone)]
pub struct Carry {
    /// Carried produced tensor; `None` means the last statement's target.
    pub from: Option<String>,
    /// The input tensor it becomes next iteration.
    pub to: String,
    /// Source span of the setting.
    pub span: Span,
}

impl PartialEq for Carry {
    fn eq(&self, other: &Self) -> bool {
        self.from == other.from && self.to == other.to
    }
}

/// Trailing `@ key=value` settings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Settings {
    /// `iter=N` — default iteration count.
    pub iterations: Option<u32>,
    /// `feature=N` — feature dimension for dense activations.
    pub feature_dim: Option<u32>,
    /// `name=ident` — display name of the compiled program.
    pub name: Option<String>,
    /// `carry=…` settings, in source order.
    pub carries: Vec<Carry>,
}

/// A parsed sparse-einsum program: declarations, statements, settings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Leading declarations.
    pub decls: Vec<Decl>,
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// Trailing settings.
    pub settings: Settings,
}

/// The infix symbol for an e-wise binary operator, if it has one;
/// operators without a symbol pretty-print in call form.
#[must_use]
pub fn infix_symbol(op: EwiseBinary) -> Option<&'static str> {
    Some(match op {
        EwiseBinary::Add => "+",
        EwiseBinary::Sub => "-",
        EwiseBinary::Mul => "*",
        EwiseBinary::Div => "/",
        EwiseBinary::Less => "<",
        EwiseBinary::Greater => ">",
        EwiseBinary::Equal => "==",
        EwiseBinary::And => "&",
        EwiseBinary::Or => "|",
        _ => return None,
    })
}

/// The call-form name of an e-wise binary operator (also accepted by the
/// parser for the symbol operators).
#[must_use]
pub fn binary_name(op: EwiseBinary) -> &'static str {
    match op {
        EwiseBinary::Add => "add",
        EwiseBinary::Sub => "sub",
        EwiseBinary::Mul => "mul",
        EwiseBinary::Div => "div",
        EwiseBinary::Min => "min",
        EwiseBinary::Max => "max",
        EwiseBinary::AbsDiff => "absdiff",
        EwiseBinary::Select => "select",
        EwiseBinary::First => "first",
        EwiseBinary::Second => "second",
        EwiseBinary::Less => "less",
        EwiseBinary::Greater => "greater",
        EwiseBinary::Equal => "equal",
        EwiseBinary::And => "and",
        EwiseBinary::Or => "or",
    }
}

/// The call-form name of an e-wise unary operator.
#[must_use]
pub fn unary_name(op: EwiseUnary) -> &'static str {
    match op {
        EwiseUnary::Identity => "identity",
        EwiseUnary::Neg => "neg",
        EwiseUnary::Abs => "abs",
        EwiseUnary::Recip => "recip",
        EwiseUnary::Relu => "relu",
        EwiseUnary::Sqrt => "sqrt",
        EwiseUnary::Not => "not",
        EwiseUnary::Square => "square",
    }
}

/// The canonical reduction name for a monoid: the alias where one exists
/// (`sum`, `any`, `all`), otherwise the binary call name.
#[must_use]
pub fn reduce_name(op: EwiseBinary) -> &'static str {
    match op {
        EwiseBinary::Add => "sum",
        EwiseBinary::Or => "any",
        EwiseBinary::And => "all",
        other => binary_name(other),
    }
}

/// The surface spelling of a semiring assignment: `<add>.<mul>=`.
#[must_use]
pub fn semiring_spelling(s: SemiringOp) -> &'static str {
    match s {
        SemiringOp::MulAdd => "+.*=",
        SemiringOp::AndOr => "|.&=",
        SemiringOp::MinAdd => "min.+=",
        SemiringOp::ArilAdd => "aril.+=",
    }
}

fn push_tensor(out: &mut String, name: &str, indices: &[String]) {
    out.push_str(name);
    if !indices.is_empty() {
        out.push('[');
        out.push_str(&indices.join(","));
        out.push(']');
    }
}

fn push_operand(out: &mut String, op: &Operand) {
    match op {
        Operand::Tensor { name, indices, .. } => push_tensor(out, name, indices),
        Operand::Number { value, .. } => {
            use std::fmt::Write as _;
            let _ = write!(out, "{value}");
        }
    }
}

impl Program {
    /// Renders the canonical text form. The canonical form re-parses to a
    /// structurally equal [`Program`] (the round-trip property the
    /// conformance suite enforces).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        for d in &self.decls {
            match d.role {
                DeclRole::In => out.push_str("in "),
                DeclRole::Const => out.push_str("const "),
            }
            if d.dense {
                out.push_str("dense ");
            }
            push_tensor(&mut out, &d.name, &d.indices);
            out.push_str("; ");
        }
        for (i, s) in self.stmts.iter().enumerate() {
            if i > 0 {
                out.push_str("; ");
            }
            push_tensor(&mut out, &s.target, &s.indices);
            match s.assign {
                AssignOp::Ewise => out.push_str(" = "),
                AssignOp::Semiring(sr) => {
                    out.push(' ');
                    out.push_str(semiring_spelling(sr));
                    out.push(' ');
                }
            }
            match &s.rhs {
                Rhs::Contract(a, b) => {
                    push_operand(&mut out, a);
                    out.push_str(" * ");
                    push_operand(&mut out, b);
                }
                Rhs::Binary(op, a, b) => {
                    if let Some(sym) = infix_symbol(*op) {
                        push_operand(&mut out, a);
                        out.push(' ');
                        out.push_str(sym);
                        out.push(' ');
                        push_operand(&mut out, b);
                    } else {
                        out.push_str(binary_name(*op));
                        out.push('(');
                        push_operand(&mut out, a);
                        out.push_str(", ");
                        push_operand(&mut out, b);
                        out.push(')');
                    }
                }
                Rhs::Unary(op, a) => {
                    out.push_str(unary_name(*op));
                    out.push('(');
                    push_operand(&mut out, a);
                    out.push(')');
                }
                Rhs::Reduce(op, a) => {
                    out.push_str(reduce_name(*op));
                    out.push('(');
                    push_operand(&mut out, a);
                    out.push(')');
                }
                Rhs::Dot(a, b) => {
                    out.push_str("dot(");
                    push_operand(&mut out, a);
                    out.push_str(", ");
                    push_operand(&mut out, b);
                    out.push(')');
                }
            }
        }
        let st = &self.settings;
        if st.iterations.is_some()
            || st.feature_dim.is_some()
            || st.name.is_some()
            || !st.carries.is_empty()
        {
            out.push_str(" @");
            if let Some(n) = st.iterations {
                use std::fmt::Write as _;
                let _ = write!(out, " iter={n}");
            }
            if let Some(f) = st.feature_dim {
                use std::fmt::Write as _;
                let _ = write!(out, " feature={f}");
            }
            if let Some(name) = &st.name {
                out.push_str(" name=");
                out.push_str(name);
            }
            for c in &st.carries {
                out.push_str(" carry=");
                if let Some(from) = &c.from {
                    out.push_str(from);
                    out.push_str("->");
                }
                out.push_str(&c.to);
            }
        }
        out
    }
}
