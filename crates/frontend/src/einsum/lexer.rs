//! Hand-rolled lexer for the sparse-einsum expression language.
//!
//! Produces a flat token stream with byte spans. `#` starts a comment that
//! runs to the end of the line; whitespace separates tokens but is
//! otherwise insignificant. Identifiers are ASCII (`[A-Za-z_][A-Za-z0-9_]*`)
//! — any other character, including non-ASCII index names, is a spanned
//! [`EinsumError`] rather than a panic, no matter how hostile the input.

use super::ast::Span;
use super::{EinsumError, EinsumErrorKind};

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `@`
    At,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `&`
    Amp,
    /// `|`
    Pipe,
}

impl Tok {
    /// Human-readable description used in parse errors.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Number(v) => format!("number `{v}`"),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Semi => "`;`".into(),
            Tok::At => "`@`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Arrow => "`->`".into(),
            Tok::Eq => "`=`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Slash => "`/`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Amp => "`&`".into(),
            Tok::Pipe => "`|`".into(),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind (and payload).
    pub tok: Tok,
    /// Byte span in the source.
    pub span: Span,
}

/// Lexes `src` into tokens.
///
/// # Errors
///
/// Returns a spanned [`EinsumError`] of kind
/// [`EinsumErrorKind::Syntax`] on any character outside the language's
/// alphabet.
pub fn lex(src: &str) -> Result<Vec<Token>, EinsumError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'[' => i = push(&mut out, Tok::LBracket, i),
            b']' => i = push(&mut out, Tok::RBracket, i),
            b'(' => i = push(&mut out, Tok::LParen, i),
            b')' => i = push(&mut out, Tok::RParen, i),
            b',' => i = push(&mut out, Tok::Comma, i),
            b';' => i = push(&mut out, Tok::Semi, i),
            b'@' => i = push(&mut out, Tok::At, i),
            b'.' => i = push(&mut out, Tok::Dot, i),
            b'+' => i = push(&mut out, Tok::Plus, i),
            b'*' => i = push(&mut out, Tok::Star, i),
            b'/' => i = push(&mut out, Tok::Slash, i),
            b'<' => i = push(&mut out, Tok::Lt, i),
            b'>' => i = push(&mut out, Tok::Gt, i),
            b'&' => i = push(&mut out, Tok::Amp, i),
            b'|' => i = push(&mut out, Tok::Pipe, i),
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token {
                        tok: Tok::Arrow,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else {
                    i = push(&mut out, Tok::Minus, i);
                }
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::EqEq,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else {
                    i = push(&mut out, Tok::Eq, i);
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let value: f64 = text.parse().map_err(|_| {
                    EinsumError::new(
                        EinsumErrorKind::Syntax,
                        Span::new(start, i),
                        format!("malformed number literal `{text}`"),
                    )
                })?;
                out.push(Token {
                    tok: Tok::Number(value),
                    span: Span::new(start, i),
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            _ => {
                // Report the full (possibly multi-byte) character so the
                // span stays on a char boundary for unicode input.
                let ch = src[i..].chars().next().unwrap_or('\u{fffd}');
                let end = i + ch.len_utf8().min(bytes.len() - i);
                return Err(EinsumError::new(
                    EinsumErrorKind::Syntax,
                    Span::new(i, end),
                    format!("unexpected character `{ch}`"),
                ));
            }
        }
    }
    Ok(out)
}

fn push(out: &mut Vec<Token>, tok: Tok, i: usize) -> usize {
    out.push(Token {
        tok,
        span: Span::new(i, i + 1),
    });
    i + 1
}
