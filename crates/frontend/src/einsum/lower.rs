//! Lowering from the einsum AST to the [`DataflowGraph`] IR.
//!
//! The lowering is a single left-to-right pass: declarations (and
//! first-use defaults) materialize input/constant tensor nodes through
//! [`GraphBuilder`], each statement classifies into exactly one IR
//! operator from its operand kinds and index positions, and the trailing
//! settings attach loop carries. Every rejection is a spanned
//! [`EinsumError`]; the produced graph then flows through the unchanged
//! fusion/analysis/lint stack like any hand-built one.
//!
//! ## Contraction classification
//!
//! For `t <s>= a * b` the operator is inferred from the operand kinds:
//!
//! | operands            | rule                                   | operator  |
//! |---------------------|----------------------------------------|-----------|
//! | vector · matrix     | shared index is the matrix row index   | `vxm`     |
//! | vector · matrix     | shared index is the matrix col index   | `mxv`     |
//! | matrix · matrix     | `a`'s col index == `b`'s row index     | `mxm`     |
//! | dense · matrix      | dense row index == matrix row index    | `spmm`    |
//! | dense · dense       | `a`'s col index == `b`'s row index     | `dense_mm`|
//! | vector · vector     | same single index, scalar target       | `dot`     |
//!
//! `dense_mm` and `dot` admit only the `+.*` semiring — the IR operators
//! carry none.

use std::collections::HashMap;

use sparsepipe_semiring::SemiringOp;

use crate::graph::{DataflowGraph, TensorId, TensorKind};
use crate::{FrontendError, GraphBuilder};

use super::ast::{AssignOp, DeclRole, Operand, Program, Rhs, Span, Stmt};
use super::{EinsumError, EinsumErrorKind};

/// A lowered einsum program: the dataflow graph plus the execution
/// parameters carried by the expression's `@` settings.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// Display name (`name=` setting, default `expr`).
    pub name: String,
    /// The lowered graph; produced tensors are renamed to their statement
    /// targets so interpreter results are addressable by surface name.
    pub graph: DataflowGraph,
    /// Default iteration count (`iter=` setting, default 1).
    pub iterations: usize,
    /// Feature dimension for dense activations (`feature=` setting,
    /// default 1).
    pub feature_dim: usize,
}

/// Lowers a parsed [`Program`] to a [`Lowered`] dataflow graph.
///
/// # Errors
///
/// Returns a spanned [`EinsumError`]: [`EinsumErrorKind::Arity`] for
/// index-count/kind inconsistencies, [`EinsumErrorKind::Contraction`]
/// for malformed contractions, and [`EinsumErrorKind::Structure`] for
/// program-level violations (reassignment, bad carries, cyclic graphs,
/// anything [`GraphBuilder`] rejects).
pub fn lower(program: &Program) -> Result<Lowered, EinsumError> {
    Lowering::new(program).run()
}

/// How a name entered the symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Declared,
    Inferred,
    Produced,
}

#[derive(Debug, Clone)]
struct Slot {
    /// Materialized builder id (`None` until first use for declared
    /// inputs, so unused declarations never enter the graph).
    id: Option<TensorId>,
    kind: TensorKind,
    role: DeclRole,
    origin: Origin,
}

struct Lowering<'p> {
    program: &'p Program,
    builder: GraphBuilder,
    env: HashMap<String, Slot>,
    /// `(surface name, builder id)` per statement, for post-build rename.
    produced: Vec<(String, TensorId)>,
}

fn err(kind: EinsumErrorKind, span: Span, msg: impl Into<String>) -> EinsumError {
    EinsumError::new(kind, span, msg.into())
}

fn structure(span: Span, msg: impl Into<String>) -> EinsumError {
    err(EinsumErrorKind::Structure, span, msg)
}

fn from_frontend(span: Span, e: &FrontendError) -> EinsumError {
    structure(span, format!("lowering rejected: {e}"))
}

fn kind_name(kind: TensorKind) -> &'static str {
    match kind {
        TensorKind::SparseMatrix => "sparse matrix",
        TensorKind::Vector => "vector",
        TensorKind::DenseMatrix => "dense matrix",
        TensorKind::Scalar => "scalar",
    }
}

fn index_count(kind: TensorKind) -> usize {
    match kind {
        TensorKind::Scalar => 0,
        TensorKind::Vector => 1,
        TensorKind::SparseMatrix | TensorKind::DenseMatrix => 2,
    }
}

/// A resolved tensor operand reference.
struct Ref {
    id: TensorId,
    kind: TensorKind,
    indices: Vec<String>,
    span: Span,
}

impl<'p> Lowering<'p> {
    fn new(program: &'p Program) -> Self {
        Lowering {
            program,
            builder: GraphBuilder::new(),
            env: HashMap::new(),
            produced: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Lowered, EinsumError> {
        for d in &self.program.decls {
            if d.indices.len() > 2 {
                return Err(err(
                    EinsumErrorKind::Arity,
                    d.span,
                    format!(
                        "`{}` declares {} indices; tensors have at most 2",
                        d.name,
                        d.indices.len()
                    ),
                ));
            }
            let kind = match (d.indices.len(), d.dense) {
                (0, _) => TensorKind::Scalar,
                (1, _) => TensorKind::Vector,
                (2, true) => TensorKind::DenseMatrix,
                _ => TensorKind::SparseMatrix,
            };
            if kind == TensorKind::Scalar && d.role == DeclRole::Const {
                return Err(structure(
                    d.span,
                    format!(
                        "`{}`: scalar constants are not supported — write the literal",
                        d.name
                    ),
                ));
            }
            if self
                .env
                .insert(
                    d.name.clone(),
                    Slot {
                        id: None,
                        kind,
                        role: d.role,
                        origin: Origin::Declared,
                    },
                )
                .is_some()
            {
                return Err(structure(
                    d.span,
                    format!("`{}` is declared more than once", d.name),
                ));
            }
        }
        for stmt in &self.program.stmts {
            self.stmt(stmt)?;
        }
        self.carries()?;
        let settings = &self.program.settings;
        let mut graph = self
            .builder
            .build()
            .map_err(|e| from_frontend(Span::new(0, 0), &e))?;
        for (name, id) in &self.produced {
            graph.tensors[id.index()].name.clone_from(name);
        }
        Ok(Lowered {
            name: settings.name.clone().unwrap_or_else(|| "expr".into()),
            graph,
            iterations: settings.iterations.unwrap_or(1) as usize,
            feature_dim: settings.feature_dim.unwrap_or(1) as usize,
        })
    }

    /// Resolves an operand reference, materializing input/constant nodes
    /// on first use and inferring undeclared names from their index count
    /// (0 → scalar input, 1 → vector input, 2 → sparse constant).
    fn resolve(&mut self, op: &Operand) -> Result<Ref, EinsumError> {
        let Operand::Tensor {
            name,
            indices,
            span,
        } = op
        else {
            return Err(structure(
                op.span(),
                "a literal is only valid as the right operand of an e-wise binary",
            ));
        };
        distinct_labels(indices, *span)?;
        if !self.env.contains_key(name) {
            let kind = match indices.len() {
                0 => TensorKind::Scalar,
                1 => TensorKind::Vector,
                2 => TensorKind::SparseMatrix,
                n => {
                    return Err(err(
                        EinsumErrorKind::Arity,
                        *span,
                        format!("`{name}` is referenced with {n} indices; tensors have at most 2"),
                    ))
                }
            };
            let role = if kind == TensorKind::SparseMatrix {
                DeclRole::Const
            } else {
                DeclRole::In
            };
            self.env.insert(
                name.clone(),
                Slot {
                    id: None,
                    kind,
                    role,
                    origin: Origin::Inferred,
                },
            );
        }
        let slot = self.env.get(name).expect("inserted above");
        let (kind, role, origin, id) = (slot.kind, slot.role, slot.origin, slot.id);
        if indices.len() != index_count(kind) {
            return Err(err(
                EinsumErrorKind::Arity,
                *span,
                format!(
                    "`{name}` is a {} and takes {} index label(s), got {}",
                    kind_name(kind),
                    index_count(kind),
                    indices.len()
                ),
            ));
        }
        let id = match id {
            Some(id) => id,
            None => {
                debug_assert_ne!(
                    origin,
                    Origin::Produced,
                    "produced slots always carry an id"
                );
                let id = match (kind, role) {
                    (TensorKind::Vector, DeclRole::In) => self.builder.input_vector(name.clone()),
                    (TensorKind::Vector, DeclRole::Const) => {
                        self.builder.constant_vector(name.clone())
                    }
                    (TensorKind::SparseMatrix, DeclRole::In) => {
                        self.builder.input_matrix(name.clone())
                    }
                    (TensorKind::SparseMatrix, DeclRole::Const) => {
                        self.builder.constant_matrix(name.clone())
                    }
                    (TensorKind::DenseMatrix, DeclRole::In) => {
                        self.builder.input_dense(name.clone())
                    }
                    (TensorKind::DenseMatrix, DeclRole::Const) => {
                        self.builder.constant_dense(name.clone())
                    }
                    (TensorKind::Scalar, _) => self.builder.input_scalar(name.clone()),
                };
                self.env.get_mut(name).expect("present").id = Some(id);
                id
            }
        };
        Ok(Ref {
            id,
            kind,
            indices: indices.clone(),
            span: *span,
        })
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), EinsumError> {
        distinct_labels(&stmt.indices, stmt.span)?;
        if let Some(slot) = self.env.get(&stmt.target) {
            let what = match slot.origin {
                Origin::Produced => "assigned more than once (results are single-assignment)",
                _ => "already a declared input/constant — carry into it instead of assigning",
            };
            return Err(structure(stmt.span, format!("`{}` is {what}", stmt.target)));
        }
        let (id, kind) = match (&stmt.assign, &stmt.rhs) {
            (AssignOp::Semiring(s), Rhs::Contract(a, b)) => self.contract(stmt, *s, a, b)?,
            (AssignOp::Ewise, Rhs::Binary(op, a, b)) => self.binary(stmt, *op, a, b)?,
            (AssignOp::Ewise, Rhs::Unary(op, a)) => {
                let a = self.resolve(a)?;
                self.expect_target_labels(stmt, &a.indices)?;
                let id = self
                    .builder
                    .ewise_unary(*op, a.id)
                    .map_err(|e| from_frontend(stmt.span, &e))?;
                (id, a.kind)
            }
            (AssignOp::Ewise, Rhs::Reduce(op, a)) => {
                let a = self.resolve(a)?;
                if a.kind != TensorKind::Vector {
                    return Err(err(
                        EinsumErrorKind::Arity,
                        a.span,
                        format!("reductions take a vector, got a {}", kind_name(a.kind)),
                    ));
                }
                self.expect_target_labels(stmt, &[])?;
                let id = self
                    .builder
                    .reduce(*op, a.id)
                    .map_err(|e| from_frontend(stmt.span, &e))?;
                (id, TensorKind::Scalar)
            }
            (AssignOp::Ewise, Rhs::Dot(a, b)) => {
                let a = self.resolve(a)?;
                let b = self.resolve(b)?;
                if a.kind != TensorKind::Vector || b.kind != TensorKind::Vector {
                    return Err(err(
                        EinsumErrorKind::Arity,
                        a.span.to(b.span),
                        "`dot` takes two vectors",
                    ));
                }
                if a.indices != b.indices {
                    return Err(err(
                        EinsumErrorKind::Arity,
                        a.span.to(b.span),
                        "`dot` operands must share their index label",
                    ));
                }
                self.expect_target_labels(stmt, &[])?;
                let id = self
                    .builder
                    .dot(a.id, b.id)
                    .map_err(|e| from_frontend(stmt.span, &e))?;
                (id, TensorKind::Scalar)
            }
            (AssignOp::Semiring(_), _) | (AssignOp::Ewise, Rhs::Contract(..)) => {
                // The parser pairs `Contract` with semiring assignments
                // exclusively; reaching here means a hand-built AST.
                return Err(structure(
                    stmt.span,
                    "semiring assignments take a contraction right-hand side",
                ));
            }
        };
        self.produced.push((stmt.target.clone(), id));
        self.env.insert(
            stmt.target.clone(),
            Slot {
                id: Some(id),
                kind,
                role: DeclRole::In,
                origin: Origin::Produced,
            },
        );
        Ok(())
    }

    fn expect_target_labels(&self, stmt: &Stmt, want: &[String]) -> Result<(), EinsumError> {
        if stmt.indices != want {
            let want_text = if want.is_empty() {
                "no indices (a scalar)".to_string()
            } else {
                format!("[{}]", want.join(","))
            };
            return Err(err(
                EinsumErrorKind::Arity,
                stmt.span,
                format!(
                    "target `{}` must carry {want_text} to match the right-hand side",
                    stmt.target
                ),
            ));
        }
        Ok(())
    }

    fn binary(
        &mut self,
        stmt: &Stmt,
        op: sparsepipe_semiring::EwiseBinary,
        a: &Operand,
        b: &Operand,
    ) -> Result<(TensorId, TensorKind), EinsumError> {
        if matches!(a, Operand::Number { .. }) {
            return Err(structure(
                a.span(),
                "a literal must be the right operand of an e-wise binary",
            ));
        }
        let a = self.resolve(a)?;
        // Tensor ⊙ literal → e-wise immediate.
        if let Operand::Number { value, .. } = b {
            self.expect_target_labels(stmt, &a.indices)?;
            let id = self
                .builder
                .ewise_scalar(op, a.id, *value)
                .map_err(|e| from_frontend(stmt.span, &e))?;
            return Ok((id, a.kind));
        }
        let b = self.resolve(b)?;
        // Tensor ⊙ scalar tensor → broadcast.
        if b.kind == TensorKind::Scalar {
            self.expect_target_labels(stmt, &a.indices)?;
            let id = self
                .builder
                .ewise_broadcast(op, a.id, b.id)
                .map_err(|e| from_frontend(stmt.span, &e))?;
            return Ok((id, a.kind));
        }
        if a.kind != b.kind {
            return Err(err(
                EinsumErrorKind::Arity,
                a.span.to(b.span),
                format!(
                    "e-wise operands must agree in kind: {} vs {}",
                    kind_name(a.kind),
                    kind_name(b.kind)
                ),
            ));
        }
        if a.indices != b.indices {
            return Err(err(
                EinsumErrorKind::Arity,
                a.span.to(b.span),
                "e-wise operands must carry identical index labels",
            ));
        }
        self.expect_target_labels(stmt, &a.indices)?;
        let id = if a.kind == TensorKind::SparseMatrix {
            self.builder.ewise_matrix(op, a.id, b.id)
        } else {
            self.builder.ewise(op, a.id, b.id)
        }
        .map_err(|e| from_frontend(stmt.span, &e))?;
        Ok((id, a.kind))
    }

    fn contract(
        &mut self,
        stmt: &Stmt,
        semiring: SemiringOp,
        a: &Operand,
        b: &Operand,
    ) -> Result<(TensorId, TensorKind), EinsumError> {
        let a = self.resolve(a)?;
        let b = self.resolve(b)?;
        let whole = a.span.to(b.span);
        let contraction = |span: Span, msg: String| err(EinsumErrorKind::Contraction, span, msg);
        use TensorKind::{DenseMatrix, Scalar, SparseMatrix, Vector};
        match (a.kind, b.kind) {
            (Vector, SparseMatrix) | (SparseMatrix, Vector) => {
                let (v, m) = if a.kind == Vector { (&a, &b) } else { (&b, &a) };
                let shared = &v.indices[0];
                let (out_label, id) = if *shared == m.indices[0] {
                    // Contracting the matrix row index: vxm.
                    let id = self
                        .builder
                        .vxm(v.id, m.id, semiring)
                        .map_err(|e| from_frontend(stmt.span, &e))?;
                    (m.indices[1].clone(), id)
                } else if *shared == m.indices[1] {
                    // Contracting the matrix column index: mxv.
                    let id = self
                        .builder
                        .mxv(m.id, v.id, semiring)
                        .map_err(|e| from_frontend(stmt.span, &e))?;
                    (m.indices[0].clone(), id)
                } else {
                    return Err(contraction(
                        whole,
                        format!(
                            "vector index `{shared}` must match one of the matrix indices [{}]",
                            m.indices.join(",")
                        ),
                    ));
                };
                self.expect_contract_target(stmt, &[out_label])?;
                Ok((id, Vector))
            }
            (SparseMatrix, SparseMatrix) => {
                if a.indices[1] != b.indices[0] {
                    return Err(contraction(
                        whole,
                        format!(
                            "mxm contracts `{}`'s column index with `{}`'s row index \
                             (write C[i,k] <s>= A[i,j] * B[j,k])",
                            tensor_label(&a),
                            tensor_label(&b)
                        ),
                    ));
                }
                let id = self
                    .builder
                    .mxm(a.id, b.id, semiring)
                    .map_err(|e| from_frontend(stmt.span, &e))?;
                self.expect_contract_target(stmt, &[a.indices[0].clone(), b.indices[1].clone()])?;
                Ok((id, SparseMatrix))
            }
            (DenseMatrix, SparseMatrix) | (SparseMatrix, DenseMatrix) => {
                let (d, m) = if a.kind == DenseMatrix {
                    (&a, &b)
                } else {
                    (&b, &a)
                };
                if d.indices[0] != m.indices[0] {
                    return Err(contraction(
                        whole,
                        "spmm contracts the dense operand's row index with the sparse \
                         matrix's row index (write Z[c,f] <s>= H[r,f] * A[r,c])"
                            .to_string(),
                    ));
                }
                let id = self
                    .builder
                    .spmm(d.id, m.id, semiring)
                    .map_err(|e| from_frontend(stmt.span, &e))?;
                self.expect_contract_target(stmt, &[m.indices[1].clone(), d.indices[1].clone()])?;
                Ok((id, DenseMatrix))
            }
            (DenseMatrix, DenseMatrix) => {
                if semiring != SemiringOp::MulAdd {
                    return Err(contraction(
                        stmt.span,
                        "dense matmul supports only the `+.*` semiring".to_string(),
                    ));
                }
                if a.indices[1] != b.indices[0] {
                    return Err(contraction(
                        whole,
                        "dense matmul contracts the left operand's column index with the \
                         right operand's row index"
                            .to_string(),
                    ));
                }
                let id = self
                    .builder
                    .dense_mm(a.id, b.id)
                    .map_err(|e| from_frontend(stmt.span, &e))?;
                self.expect_contract_target(stmt, &[a.indices[0].clone(), b.indices[1].clone()])?;
                Ok((id, DenseMatrix))
            }
            (Vector, Vector) => {
                if semiring != SemiringOp::MulAdd {
                    return Err(contraction(
                        stmt.span,
                        "dot products support only the `+.*` semiring".to_string(),
                    ));
                }
                if a.indices != b.indices {
                    return Err(contraction(
                        whole,
                        "dot operands must share their index label".to_string(),
                    ));
                }
                let id = self
                    .builder
                    .dot(a.id, b.id)
                    .map_err(|e| from_frontend(stmt.span, &e))?;
                self.expect_contract_target(stmt, &[])?;
                Ok((id, Scalar))
            }
            _ => Err(contraction(
                whole,
                format!(
                    "cannot contract a {} with a {}",
                    kind_name(a.kind),
                    kind_name(b.kind)
                ),
            )),
        }
    }

    fn expect_contract_target(&self, stmt: &Stmt, want: &[String]) -> Result<(), EinsumError> {
        if stmt.indices != want {
            let want_text = if want.is_empty() {
                "no indices (a scalar)".to_string()
            } else {
                format!("[{}]", want.join(","))
            };
            return Err(err(
                EinsumErrorKind::Contraction,
                stmt.span,
                format!(
                    "contraction output is {want_text}, but target `{}` carries [{}]",
                    stmt.target,
                    stmt.indices.join(",")
                ),
            ));
        }
        Ok(())
    }

    fn carries(&mut self) -> Result<(), EinsumError> {
        let carries = self.program.settings.carries.clone();
        for c in &carries {
            let from_name = match &c.from {
                Some(name) => name.clone(),
                None => self
                    .program
                    .stmts
                    .last()
                    .map(|s| s.target.clone())
                    .expect("parser requires at least one statement"),
            };
            let from = match self.env.get(&from_name) {
                Some(slot) if slot.origin == Origin::Produced => {
                    slot.id.expect("produced slots always carry an id")
                }
                _ => {
                    return Err(structure(
                        c.span,
                        format!("carry source `{from_name}` is not a produced result"),
                    ))
                }
            };
            let to = match self.env.get(&c.to) {
                Some(slot) if slot.origin != Origin::Produced => match slot.id {
                    Some(id) => id,
                    None => {
                        return Err(structure(
                            c.span,
                            format!("carry target `{}` is declared but never read", c.to),
                        ))
                    }
                },
                _ => {
                    return Err(structure(
                        c.span,
                        format!("carry target `{}` is not an input tensor", c.to),
                    ))
                }
            };
            self.builder
                .carry(from, to)
                .map_err(|e| from_frontend(c.span, &e))?;
        }
        Ok(())
    }
}

fn tensor_label(r: &Ref) -> String {
    format!("[{}]", r.indices.join(","))
}

fn distinct_labels(labels: &[String], span: Span) -> Result<(), EinsumError> {
    if labels.len() == 2 && labels[0] == labels[1] {
        return Err(err(
            EinsumErrorKind::Contraction,
            span,
            format!("index labels must be distinct, got [{}]", labels.join(",")),
        ));
    }
    Ok(())
}
