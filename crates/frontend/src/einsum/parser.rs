//! Recursive-descent parser for the sparse-einsum expression language.
//!
//! The grammar is flat (one operator per statement; no nested
//! expressions), so parsing is iterative and total: any input — including
//! megabyte-long hostile strings — either yields a [`Program`] or a
//! spanned [`EinsumError`], never a panic and never unbounded recursion.

use sparsepipe_semiring::{EwiseBinary, EwiseUnary, SemiringOp};

use super::ast::{AssignOp, Carry, Decl, DeclRole, Operand, Program, Rhs, Settings, Span, Stmt};
use super::lexer::{lex, Tok, Token};
use super::{EinsumError, EinsumErrorKind};

/// Parses one sparse-einsum program from `src`.
///
/// # Errors
///
/// Returns a spanned [`EinsumError`]: [`EinsumErrorKind::Syntax`] for
/// lexical/structural violations, [`EinsumErrorKind::UnknownOperator`]
/// for unrecognized semirings or function names, and
/// [`EinsumErrorKind::Arity`] for known functions applied to the wrong
/// number of arguments.
pub fn parse(src: &str) -> Result<Program, EinsumError> {
    let tokens = lex(src)?;
    Parser {
        tokens,
        pos: 0,
        end: src.len(),
    }
    .program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eof_span(&self) -> Span {
        Span::new(self.end, self.end)
    }

    fn syntax(&self, span: Span, msg: impl Into<String>) -> EinsumError {
        EinsumError::new(EinsumErrorKind::Syntax, span, msg.into())
    }

    fn unexpected(&mut self, expected: &str) -> EinsumError {
        match self.peek() {
            Some(t) => {
                let msg = format!("expected {expected}, found {}", t.tok.describe());
                self.syntax(t.span, msg)
            }
            None => self.syntax(
                self.eof_span(),
                format!("expected {expected}, found end of expression"),
            ),
        }
    }

    fn expect(&mut self, want: &Tok, expected: &str) -> Result<Span, EinsumError> {
        match self.peek() {
            Some(t) if t.tok == *want => Ok(self.bump().expect("peeked").span),
            _ => Err(self.unexpected(expected)),
        }
    }

    fn ident(&mut self, expected: &str) -> Result<(String, Span), EinsumError> {
        match self.peek() {
            Some(Token {
                tok: Tok::Ident(_), ..
            }) => {
                let t = self.bump().expect("peeked");
                let Tok::Ident(name) = t.tok else {
                    unreachable!("peeked an identifier")
                };
                Ok((name, t.span))
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    fn program(mut self) -> Result<Program, EinsumError> {
        let mut program = Program::default();
        loop {
            match self.peek() {
                None | Some(Token { tok: Tok::At, .. }) => break,
                Some(Token {
                    tok: Tok::Ident(kw),
                    ..
                }) if kw == "in" || kw == "const" => {
                    let d = self.decl()?;
                    program.decls.push(d);
                }
                Some(_) => {
                    let s = self.stmt()?;
                    program.stmts.push(s);
                }
            }
            match self.peek() {
                Some(Token { tok: Tok::Semi, .. }) => {
                    self.bump();
                }
                _ => break,
            }
        }
        if let Some(Token { tok: Tok::At, .. }) = self.peek() {
            self.bump();
            program.settings = self.settings()?;
        }
        if let Some(t) = self.peek() {
            let msg = format!("unexpected trailing {}", t.tok.describe());
            return Err(self.syntax(t.span, msg));
        }
        if program.stmts.is_empty() {
            return Err(self.syntax(Span::new(0, self.end), "expected at least one statement"));
        }
        Ok(program)
    }

    fn decl(&mut self) -> Result<Decl, EinsumError> {
        let (kw, start) = self.ident("`in` or `const`")?;
        let role = if kw == "in" {
            DeclRole::In
        } else {
            DeclRole::Const
        };
        let mut dense = false;
        if let Some(Token {
            tok: Tok::Ident(w), ..
        }) = self.peek()
        {
            // `dense` is a modifier only when a tensor name follows it.
            if w == "dense"
                && matches!(
                    self.peek2(),
                    Some(Token {
                        tok: Tok::Ident(_),
                        ..
                    })
                )
            {
                dense = true;
                self.bump();
            }
        }
        let (name, name_span) = self.ident("a tensor name")?;
        let (indices, idx_span) = self.indices()?;
        let end = idx_span.unwrap_or(name_span);
        Ok(Decl {
            role,
            dense,
            name,
            indices,
            span: start.to(end),
        })
    }

    /// Parses an optional `[i,j]` index list; returns the labels and the
    /// span of the closing bracket, if present.
    fn indices(&mut self) -> Result<(Vec<String>, Option<Span>), EinsumError> {
        match self.peek() {
            Some(Token {
                tok: Tok::LBracket, ..
            }) => {
                self.bump();
                let mut labels = Vec::new();
                let (first, _) = self.ident("an index name")?;
                labels.push(first);
                loop {
                    match self.peek() {
                        Some(Token {
                            tok: Tok::Comma, ..
                        }) => {
                            self.bump();
                            let (next, _) = self.ident("an index name")?;
                            labels.push(next);
                        }
                        Some(Token {
                            tok: Tok::RBracket, ..
                        }) => {
                            let close = self.bump().expect("peeked").span;
                            return Ok((labels, Some(close)));
                        }
                        _ => return Err(self.unexpected("`,` or `]`")),
                    }
                }
            }
            _ => Ok((Vec::new(), None)),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, EinsumError> {
        let (target, start) = self.ident("a statement target")?;
        let (indices, _) = self.indices()?;
        let assign = self.assign()?;
        let rhs = match assign {
            AssignOp::Semiring(_) => self.contraction()?,
            AssignOp::Ewise => self.ewise_rhs()?,
        };
        let end = match &rhs {
            Rhs::Contract(_, b) | Rhs::Binary(_, _, b) | Rhs::Dot(_, b) => b.span(),
            Rhs::Unary(_, a) | Rhs::Reduce(_, a) => a.span(),
        };
        Ok(Stmt {
            target,
            indices,
            assign,
            rhs,
            span: start.to(end),
        })
    }

    fn assign(&mut self) -> Result<AssignOp, EinsumError> {
        let Some(first) = self.peek().cloned() else {
            return Err(self.unexpected("`=` or a semiring assignment"));
        };
        match first.tok {
            Tok::Eq => {
                self.bump();
                Ok(AssignOp::Ewise)
            }
            Tok::Plus | Tok::Pipe | Tok::Ident(_) => {
                let add = self.bump().expect("peeked");
                self.expect(&Tok::Dot, "`.` in the semiring assignment")?;
                let Some(mul) = self.bump() else {
                    return Err(self.syntax(
                        self.eof_span(),
                        "expected the semiring's multiply operator, found end of expression",
                    ));
                };
                let eq_span = self.expect(&Tok::Eq, "`=` after the semiring spec")?;
                let semiring = match (&add.tok, &mul.tok) {
                    (Tok::Plus, Tok::Star) => Some(SemiringOp::MulAdd),
                    (Tok::Pipe, Tok::Amp) => Some(SemiringOp::AndOr),
                    (Tok::Ident(a), Tok::Plus) if a == "min" => Some(SemiringOp::MinAdd),
                    (Tok::Ident(a), Tok::Plus) if a == "aril" => Some(SemiringOp::ArilAdd),
                    _ => None,
                };
                match semiring {
                    Some(s) => Ok(AssignOp::Semiring(s)),
                    None => Err(EinsumError::new(
                        EinsumErrorKind::UnknownOperator,
                        add.span.to(eq_span),
                        format!(
                            "unknown semiring `{}.{}` (known: +.*  |.&  min.+  aril.+)",
                            spec_text(&add.tok),
                            spec_text(&mul.tok)
                        ),
                    )),
                }
            }
            _ => Err(self.unexpected("`=` or a semiring assignment")),
        }
    }

    fn contraction(&mut self) -> Result<Rhs, EinsumError> {
        let a = self.tensor_operand("a contraction operand")?;
        self.expect(&Tok::Star, "`*` between the contraction operands")?;
        let b = self.tensor_operand("a contraction operand")?;
        Ok(Rhs::Contract(a, b))
    }

    fn tensor_operand(&mut self, what: &str) -> Result<Operand, EinsumError> {
        let op = self.operand(what)?;
        match op {
            Operand::Tensor { .. } => Ok(op),
            Operand::Number { span, .. } => Err(EinsumError::new(
                EinsumErrorKind::Contraction,
                span,
                "contraction operands must be indexed tensors, not literals",
            )),
        }
    }

    fn ewise_rhs(&mut self) -> Result<Rhs, EinsumError> {
        // Call form: `name(arg[, arg])`.
        if let (
            Some(Token {
                tok: Tok::Ident(_), ..
            }),
            Some(Token {
                tok: Tok::LParen, ..
            }),
        ) = (self.peek(), self.peek2())
        {
            let (name, name_span) = self.ident("a function name")?;
            self.bump(); // `(`
            let mut args = vec![self.operand("an argument")?];
            while matches!(
                self.peek(),
                Some(Token {
                    tok: Tok::Comma,
                    ..
                })
            ) {
                self.bump();
                args.push(self.operand("an argument")?);
            }
            self.expect(&Tok::RParen, "`)` closing the argument list")?;
            return resolve_call(&name, name_span, args);
        }
        let a = self.operand("an operand")?;
        let Some(next) = self.peek().cloned() else {
            return Ok(Rhs::Unary(EwiseUnary::Identity, a));
        };
        let op = match next.tok {
            Tok::Plus => EwiseBinary::Add,
            Tok::Minus => EwiseBinary::Sub,
            Tok::Star => EwiseBinary::Mul,
            Tok::Slash => EwiseBinary::Div,
            Tok::Lt => EwiseBinary::Less,
            Tok::Gt => EwiseBinary::Greater,
            Tok::EqEq => EwiseBinary::Equal,
            Tok::Amp => EwiseBinary::And,
            Tok::Pipe => EwiseBinary::Or,
            Tok::Semi | Tok::At => return Ok(Rhs::Unary(EwiseUnary::Identity, a)),
            _ => return Err(self.unexpected("an e-wise operator or the end of the statement")),
        };
        self.bump();
        let b = self.operand("the right-hand operand")?;
        Ok(Rhs::Binary(op, a, b))
    }

    fn operand(&mut self, what: &str) -> Result<Operand, EinsumError> {
        match self.peek().cloned() {
            Some(Token {
                tok: Tok::Number(value),
                span,
            }) => {
                self.bump();
                Ok(Operand::Number { value, span })
            }
            Some(Token {
                tok: Tok::Minus,
                span: minus_span,
            }) => {
                self.bump();
                match self.peek().cloned() {
                    Some(Token {
                        tok: Tok::Number(value),
                        span,
                    }) => {
                        self.bump();
                        Ok(Operand::Number {
                            value: -value,
                            span: minus_span.to(span),
                        })
                    }
                    _ => Err(self.unexpected("a number after `-`")),
                }
            }
            Some(Token {
                tok: Tok::Ident(_), ..
            }) => {
                let (name, name_span) = self.ident(what)?;
                let (indices, idx_span) = self.indices()?;
                Ok(Operand::Tensor {
                    name,
                    indices,
                    span: name_span.to(idx_span.unwrap_or(name_span)),
                })
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn settings(&mut self) -> Result<Settings, EinsumError> {
        let mut st = Settings::default();
        while matches!(
            self.peek(),
            Some(Token {
                tok: Tok::Ident(_),
                ..
            })
        ) {
            let (key, key_span) = self.ident("a setting name")?;
            self.expect(&Tok::Eq, "`=` after the setting name")?;
            match key.as_str() {
                "iter" | "feature" => {
                    let Some(Token {
                        tok: Tok::Number(v),
                        span,
                    }) = self.peek().cloned()
                    else {
                        return Err(self.unexpected("a positive integer"));
                    };
                    self.bump();
                    if v.fract() != 0.0 || v < 1.0 || v > f64::from(u32::MAX) {
                        return Err(self.syntax(
                            span,
                            format!("`{key}` must be a positive integer, got `{v}`"),
                        ));
                    }
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let n = v as u32;
                    let slot = if key == "iter" {
                        &mut st.iterations
                    } else {
                        &mut st.feature_dim
                    };
                    if slot.replace(n).is_some() {
                        return Err(self.syntax(key_span, format!("duplicate setting `{key}`")));
                    }
                }
                "name" => {
                    let (value, _) = self.ident("a program name")?;
                    if st.name.replace(value).is_some() {
                        return Err(self.syntax(key_span, "duplicate setting `name`"));
                    }
                }
                "carry" => {
                    let (a, a_span) = self.ident("a tensor name")?;
                    let carry = if matches!(
                        self.peek(),
                        Some(Token {
                            tok: Tok::Arrow,
                            ..
                        })
                    ) {
                        self.bump();
                        let (b, b_span) = self.ident("the carry target")?;
                        Carry {
                            from: Some(a),
                            to: b,
                            span: key_span.to(b_span),
                        }
                    } else {
                        Carry {
                            from: None,
                            to: a,
                            span: key_span.to(a_span),
                        }
                    };
                    st.carries.push(carry);
                }
                other => {
                    return Err(self.syntax(
                        key_span,
                        format!("unknown setting `{other}` (known: iter, feature, name, carry)"),
                    ))
                }
            }
        }
        Ok(st)
    }
}

fn spec_text(t: &Tok) -> String {
    match t {
        Tok::Ident(s) => s.clone(),
        other => {
            let d = other.describe();
            d.trim_matches('`').to_string()
        }
    }
}

fn unary_by_name(name: &str) -> Option<EwiseUnary> {
    EwiseUnary::ALL
        .into_iter()
        .find(|u| super::ast::unary_name(*u) == name)
}

fn binary_by_name(name: &str) -> Option<EwiseBinary> {
    EwiseBinary::ALL
        .into_iter()
        .find(|b| super::ast::binary_name(*b) == name)
}

fn reduce_by_name(name: &str) -> Option<EwiseBinary> {
    match name {
        "sum" => Some(EwiseBinary::Add),
        "any" => Some(EwiseBinary::Or),
        "all" => Some(EwiseBinary::And),
        other => binary_by_name(other),
    }
}

fn resolve_call(name: &str, span: Span, args: Vec<Operand>) -> Result<Rhs, EinsumError> {
    let argc = args.len();
    let mut it = args.into_iter();
    match argc {
        1 => {
            let a = it.next().expect("argc == 1");
            if let Some(u) = unary_by_name(name) {
                return Ok(Rhs::Unary(u, a));
            }
            if let Some(r) = reduce_by_name(name) {
                return Ok(Rhs::Reduce(r, a));
            }
            if name == "dot" {
                return Err(EinsumError::new(
                    EinsumErrorKind::Arity,
                    span,
                    "`dot` takes exactly 2 arguments",
                ));
            }
            Err(unknown_function(name, span))
        }
        2 => {
            let a = it.next().expect("argc == 2");
            let b = it.next().expect("argc == 2");
            if name == "dot" {
                return Ok(Rhs::Dot(a, b));
            }
            if let Some(op) = binary_by_name(name) {
                return Ok(Rhs::Binary(op, a, b));
            }
            if unary_by_name(name).is_some() || reduce_by_name(name).is_some() {
                return Err(EinsumError::new(
                    EinsumErrorKind::Arity,
                    span,
                    format!("`{name}` takes exactly 1 argument"),
                ));
            }
            Err(unknown_function(name, span))
        }
        n => {
            if unary_by_name(name).is_some()
                || reduce_by_name(name).is_some()
                || binary_by_name(name).is_some()
                || name == "dot"
            {
                Err(EinsumError::new(
                    EinsumErrorKind::Arity,
                    span,
                    format!("`{name}` does not take {n} arguments"),
                ))
            } else {
                Err(unknown_function(name, span))
            }
        }
    }
}

fn unknown_function(name: &str, span: Span) -> EinsumError {
    EinsumError::new(
        EinsumErrorKind::UnknownOperator,
        span,
        format!("unknown function `{name}`"),
    )
}
