//! Sub-tensor dependency analysis and OEI-subgraph detection (§III-A).
//!
//! The paper's generalized STA compute graph (Fig 3c): "For any STA compute
//! graph, if there exists a subgraph that includes both input and output
//! vector of `vxm`, and all operations within the subgraph exhibit
//! sub-tensor dependency, fusing two `vxm` can leverage cross-iteration
//! data reuse."
//!
//! [`analyze`] searches for exactly that subgraph: a path from one matrix
//! operator's output to a matrix operator's input vector (possibly the same
//! operator, reached through a loop-carried edge) where
//!
//! 1. every op on the path has sub-tensor dependency
//!    ([`OpKind::has_subtensor_dependency`]), **and**
//! 2. no op on the path takes a *side operand* that is itself downstream of
//!    a matrix operator within the iteration — a scalar like CG's `α =
//!    rᵀr / pᵀAp` depends on **every** element of the `vxm` output, which
//!    is what blocks CG and BiCGSTAB from the OEI dataflow (they retain
//!    only producer-consumer reuse, Table III).

use crate::fusion::{self, FusedGroups};
use crate::graph::{DataflowGraph, OpId, TensorId, TensorRole};

/// A detected OEI-fusible subgraph.
#[derive(Debug, Clone, PartialEq)]
pub struct OeiSubgraph {
    /// The matrix operator executed with the Output-Stationary dataflow.
    pub os_op: OpId,
    /// The matrix operator executed with the Input-Stationary dataflow.
    /// May equal [`OeiSubgraph::os_op`] when the fusion spans iterations of
    /// a single-`vxm` loop (PageRank); differs for KNN's two-`vxm` loops.
    pub is_op: OpId,
    /// The sub-tensor-dependency ops on the path from `os_op`'s output to
    /// `is_op`'s vector input, in traversal order (empty for a direct
    /// `vxm → vxm` connection like KNN's).
    pub path: Vec<OpId>,
    /// Whether the path crosses a loop-carried edge — i.e. the two fused
    /// `vxm`s belong to *different* loop iterations.
    pub cross_iteration: bool,
}

/// Full analysis result for a dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// The OEI subgraph, if the application admits the OEI dataflow.
    pub oei: Option<OeiSubgraph>,
    /// E-wise fusion groups (producer-consumer reuse, available even
    /// without OEI).
    pub fused: FusedGroups,
    /// All matrix-touching operators (`vxm`/`SpMM`) in topological order.
    pub matrix_ops: Vec<OpId>,
    /// Tensors downstream of a matrix operator within the iteration
    /// ("tainted": not available until that operator completes... unless
    /// produced elementwise along the OEI path itself).
    pub tainted: Vec<TensorId>,
}

/// Runs e-wise fusion and OEI detection on a graph.
pub fn analyze(g: &DataflowGraph) -> Analysis {
    let fused = fusion::fuse(g);
    let matrix_ops: Vec<OpId> = g
        .topo_order()
        .iter()
        .copied()
        .filter(|&op| g.op(op).kind.touches_matrix())
        .collect();
    let tainted = tainted_tensors(g, &matrix_ops);
    let oei = detect_oei(g, &matrix_ops, &tainted);
    Analysis {
        oei,
        fused,
        matrix_ops,
        tainted,
    }
}

/// Tensors reachable (within one iteration, no carry edges) from any matrix
/// operator's output.
fn tainted_tensors(g: &DataflowGraph, matrix_ops: &[OpId]) -> Vec<TensorId> {
    let mut tainted = vec![false; g.n_tensors()];
    let mut work: Vec<TensorId> = matrix_ops.iter().map(|&op| g.op(op).output).collect();
    for &t in &work {
        tainted[t.0] = true;
    }
    while let Some(t) = work.pop() {
        for consumer in g.consumers(t) {
            let out = g.op(consumer).output;
            if !tainted[out.0] {
                tainted[out.0] = true;
                work.push(out);
            }
        }
    }
    tainted
        .iter()
        .enumerate()
        .filter(|(_, &x)| x)
        .map(|(i, _)| TensorId(i))
        .collect()
}

fn detect_oei(g: &DataflowGraph, matrix_ops: &[OpId], tainted: &[TensorId]) -> Option<OeiSubgraph> {
    let is_tainted = |t: TensorId| tainted.contains(&t);

    // BFS from each matrix op's output along sub-tensor-dependency ops,
    // crossing at most one loop-carried edge. Shortest path wins, so the
    // reported e-wise path is minimal.
    for &os_op in matrix_ops {
        let os_matrix = *g.op(os_op).inputs.get(1)?;
        // Cross-iteration reuse is only real if the shared operand
        // *persists* across the carry: a `Constant` matrix is the same
        // bytes next iteration, whereas an `Input` matrix (Markov
        // clustering's `M` in `mxm(M, M)`) is overwritten by the carry —
        // fusing across it would share fetches of two different
        // matrices. Within-iteration fusion needs no such guard.
        let os_matrix_persists = g.tensor(os_matrix).role == TensorRole::Constant;
        let start = g.op(os_op).output;
        let mut queue: std::collections::VecDeque<(TensorId, bool, Vec<OpId>)> =
            std::collections::VecDeque::new();
        let mut seen: std::collections::HashSet<(TensorId, bool)> =
            std::collections::HashSet::new();
        queue.push_back((start, false, Vec::new()));
        seen.insert((start, false));

        while let Some((t, crossed, path)) = queue.pop_front() {
            // Terminal check: does a matrix op consume `t` as its vector
            // input, over the same shared matrix?
            for consumer in g.consumers(t) {
                let node = g.op(consumer);
                if node.kind.touches_matrix()
                    && node.inputs.first() == Some(&t)
                    && node.inputs.get(1) == Some(&os_matrix)
                    // A same-iteration match must be a *different* op
                    // (an op cannot pipeline with itself in one iteration).
                    && (crossed || consumer != os_op)
                    && (!crossed || os_matrix_persists)
                {
                    return Some(OeiSubgraph {
                        os_op,
                        is_op: consumer,
                        path,
                        cross_iteration: crossed,
                    });
                }
            }

            // Advance through sub-tensor-dependency ops whose side operands
            // are available before the OS vxm completes. An `mxm` whose
            // *stationary* (right) operand is constant also preserves
            // row-wise dependency on its flowing (left) operand — row `i`
            // of `T·W` needs only row `i` of `T` under Gustavson — the
            // same argument that admits `DenseMM` on GCN's path (Fig 5),
            // so a sparse-weight `mxm` may sit on the OEI path. A `vxm`
            // does not qualify (out[c] reduces over the whole vector).
            for consumer in g.consumers(t) {
                let node = g.op(consumer);
                let mxm_row_wise = matches!(node.kind, crate::graph::OpKind::Mxm { .. })
                    && node.inputs.first() == Some(&t)
                    && node
                        .inputs
                        .get(1)
                        .is_some_and(|&m| g.tensor(m).role == TensorRole::Constant);
                if !(node.kind.has_subtensor_dependency() || mxm_row_wise) {
                    continue;
                }
                let side_ok = node.inputs.iter().all(|&input| {
                    input == t
                        || matches!(
                            g.tensor(input).role,
                            TensorRole::Input | TensorRole::Constant
                        )
                        || !is_tainted(input)
                });
                if !side_ok {
                    continue;
                }
                let out = node.output;
                if seen.insert((out, crossed)) {
                    let mut p = path.clone();
                    p.push(consumer);
                    queue.push_back((out, crossed, p));
                }
            }

            // Cross a loop-carried edge (at most once).
            if !crossed {
                if let Some(next_input) = g.carry_target(t) {
                    if seen.insert((next_input, true)) {
                        queue.push_back((next_input, true, path.clone()));
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use sparsepipe_semiring::{EwiseBinary, EwiseUnary, SemiringOp};

    /// PageRank-shaped loop: vxm → scale → add → carry → (same vxm).
    #[test]
    fn pagerank_is_cross_iteration_oei() {
        let mut b = GraphBuilder::new();
        let pr = b.input_vector("pr");
        let l = b.constant_matrix("L");
        let y = b.vxm(pr, l, SemiringOp::MulAdd).unwrap();
        let s = b.ewise_scalar(EwiseBinary::Mul, y, 0.85).unwrap();
        let next = b.ewise_scalar(EwiseBinary::Add, s, 0.15).unwrap();
        // residual fold on the side must not block OEI
        let d = b.ewise(EwiseBinary::AbsDiff, next, pr).unwrap();
        let _res = b.reduce(EwiseBinary::Add, d).unwrap();
        b.carry(next, pr).unwrap();
        let g = b.build().unwrap();

        let a = analyze(&g);
        let oei = a.oei.expect("PageRank must expose OEI");
        assert!(oei.cross_iteration);
        assert_eq!(oei.os_op, oei.is_op);
        assert_eq!(oei.path.len(), 2); // scale, add (absdiff is off-path)
    }

    /// KNN-shaped loop: two vxm in one iteration, vxm1 → vxm2 directly.
    #[test]
    fn knn_two_vxm_is_same_iteration_oei() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let l = b.constant_matrix("A");
        let mid = b.vxm(v, l, SemiringOp::AndOr).unwrap();
        let out = b.vxm(mid, l, SemiringOp::AndOr).unwrap();
        b.carry(out, v).unwrap();
        let g = b.build().unwrap();

        let oei = analyze(&g).oei.expect("KNN must expose OEI");
        assert!(!oei.cross_iteration, "two vxm fuse within one iteration");
        assert!(oei.path.is_empty(), "direct vxm→vxm (\"no-op\") path");
        assert_ne!(oei.os_op, oei.is_op);
    }

    /// CG-shaped loop: the vxm output flows through a dot-derived scalar
    /// broadcast — the scalar depends on all elements, so no OEI.
    #[test]
    fn cg_scalar_gate_blocks_oei() {
        let mut b = GraphBuilder::new();
        let p = b.input_vector("p");
        let r = b.input_vector("r");
        let a = b.constant_matrix("A");
        let q = b.vxm(p, a, SemiringOp::MulAdd).unwrap();
        let pq = b.dot(p, q).unwrap(); // scalar downstream of vxm
        let step = b.ewise_broadcast(EwiseBinary::Mul, q, pq).unwrap();
        let r_next = b.ewise(EwiseBinary::Sub, r, step).unwrap();
        let p_next = b.ewise(EwiseBinary::Add, r_next, p).unwrap();
        b.carry(p_next, p).unwrap();
        b.carry(r_next, r).unwrap();
        let g = b.build().unwrap();

        assert!(analyze(&g).oei.is_none(), "CG must not expose OEI");
    }

    /// A scalar broadcast whose scalar is loop-carried (previous
    /// iteration's value) does NOT block OEI.
    #[test]
    fn carried_scalar_does_not_block() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let alpha = b.input_scalar("alpha"); // from previous iteration
        let l = b.constant_matrix("L");
        let y = b.vxm(v, l, SemiringOp::MulAdd).unwrap();
        let scaled = b.ewise_broadcast(EwiseBinary::Mul, y, alpha).unwrap();
        b.carry(scaled, v).unwrap();
        // new alpha computed from the result (side computation)
        let alpha_next = b.reduce(EwiseBinary::Max, scaled).unwrap();
        b.carry(alpha_next, alpha).unwrap();
        let g = b.build().unwrap();

        let oei = analyze(&g).oei.expect("carried scalar is available");
        assert!(oei.cross_iteration);
    }

    /// GCN-shaped loop: SpMM → DenseMM → ReLU → carry — fusible because
    /// DenseMM preserves row-wise dependency (Fig 5).
    #[test]
    fn gcn_spmm_mm_relu_is_oei() {
        let mut b = GraphBuilder::new();
        let h = b.input_dense("H");
        let adj = b.constant_matrix("A");
        let w = b.constant_dense("W");
        let agg = b.spmm(h, adj, SemiringOp::MulAdd).unwrap();
        let lin = b.dense_mm(agg, w).unwrap();
        let act = b.ewise_unary(EwiseUnary::Relu, lin).unwrap();
        b.carry(act, h).unwrap();
        let g = b.build().unwrap();

        let oei = analyze(&g).oei.expect("GCN must expose OEI");
        assert!(oei.cross_iteration);
        assert_eq!(oei.path.len(), 2); // DenseMM, ReLU
    }

    /// A reduce directly on the path blocks OEI (scalar bottleneck).
    #[test]
    fn reduce_on_path_blocks_oei() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let l = b.constant_matrix("L");
        let y = b.vxm(v, l, SemiringOp::MulAdd).unwrap();
        let norm = b.reduce(EwiseBinary::Add, y).unwrap();
        let scaled = b.ewise_broadcast(EwiseBinary::Div, y, norm).unwrap();
        b.carry(scaled, v).unwrap();
        let g = b.build().unwrap();

        assert!(analyze(&g).oei.is_none());
    }

    /// Two different constant matrices do not fuse (no shared-operand
    /// reuse to exploit).
    #[test]
    fn different_matrices_do_not_fuse() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let l1 = b.constant_matrix("L1");
        let l2 = b.constant_matrix("L2");
        let y = b.vxm(v, l1, SemiringOp::MulAdd).unwrap();
        let z = b.vxm(y, l2, SemiringOp::MulAdd).unwrap();
        b.carry(z, v).unwrap();
        let g = b.build().unwrap();

        // The only candidate pairs are (L1-vxm → L2-vxm) within the
        // iteration — rejected for operand mismatch — and each vxm with
        // itself across the carry; the path from y crosses z's vxm (not
        // sub-tensor), so no OEI at all.
        assert!(analyze(&g).oei.is_none());
    }

    /// The paper's KNN description: "two vxm (or mxv)" — a vxm feeding an
    /// mxv over the same matrix fuses exactly like two vxm.
    #[test]
    fn vxm_mxv_pair_fuses_within_iteration() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let a = b.constant_matrix("A");
        let mid = b.vxm(v, a, SemiringOp::AndOr).unwrap();
        let out = b.mxv(a, mid, SemiringOp::AndOr).unwrap();
        b.carry(out, v).unwrap();
        let g = b.build().unwrap();
        let oei = analyze(&g).oei.expect("vxm→mxv must fuse");
        assert!(!oei.cross_iteration);
        assert_ne!(oei.os_op, oei.is_op);
    }

    /// A single-mxv loop admits cross-iteration OEI just like vxm.
    #[test]
    fn mxv_loop_is_cross_iteration_oei() {
        let mut b = GraphBuilder::new();
        let x = b.input_vector("x");
        let a = b.constant_matrix("A");
        let y = b.mxv(a, x, SemiringOp::MinAdd).unwrap();
        let next = b.ewise(EwiseBinary::Min, x, y).unwrap();
        b.carry(next, x).unwrap();
        let g = b.build().unwrap();
        let oei = analyze(&g).oei.expect("mxv loop must expose OEI");
        assert!(oei.cross_iteration);
    }

    /// A single-`mxm` loop over a constant right operand (multi-source
    /// BFS: `F' = F ⊗⊕ A`, carry `F' → F`) admits cross-iteration OEI
    /// exactly like a single-vxm loop — successive Gustavson sweeps share
    /// the constant `A`'s row fetches.
    #[test]
    fn mxm_loop_over_constant_matrix_is_cross_iteration_oei() {
        let mut b = GraphBuilder::new();
        let f = b.input_matrix("F");
        let a = b.constant_matrix("A");
        let next = b.mxm(f, a, SemiringOp::AndOr).unwrap();
        b.carry(next, f).unwrap();
        let g = b.build().unwrap();
        let oei = analyze(&g).oei.expect("mxm loop must expose OEI");
        assert!(oei.cross_iteration);
        assert_eq!(oei.os_op, oei.is_op);
        assert!(oei.path.is_empty());
    }

    /// Markov clustering's `mxm(M, M)` squares a *carried* matrix: the
    /// shared operand is overwritten every iteration, so cross-iteration
    /// fusion would share fetches of two different matrices — rejected.
    #[test]
    fn mxm_over_carried_matrix_has_no_cross_iteration_oei() {
        let mut b = GraphBuilder::new();
        let m = b.input_matrix("M");
        let sq = b.mxm(m, m, SemiringOp::MulAdd).unwrap();
        let infl = b.ewise_matrix(EwiseBinary::Mul, sq, sq).unwrap();
        b.carry(infl, m).unwrap();
        let g = b.build().unwrap();
        assert!(
            analyze(&g).oei.is_none(),
            "carried shared operand must not claim cross-iteration reuse"
        );
    }

    /// Sparse-weight GCN: `Z = mxm(H, A); H' = mxm(Z, W); carry H' → H`.
    /// The second `mxm`'s stationary operand `W` is constant, so it keeps
    /// row-wise dependency and sits on the OEI path — the two `A`-sweeps
    /// of adjacent iterations fuse.
    #[test]
    fn mxm_with_constant_weights_sits_on_oei_path() {
        let mut b = GraphBuilder::new();
        let h = b.input_matrix("H");
        let a = b.constant_matrix("A");
        let w = b.constant_matrix("W");
        let z = b.mxm(h, a, SemiringOp::MulAdd).unwrap();
        let h2 = b.mxm(z, w, SemiringOp::MulAdd).unwrap();
        b.carry(h2, h).unwrap();
        let g = b.build().unwrap();
        let oei = analyze(&g).oei.expect("sparse-weight GCN must expose OEI");
        assert!(oei.cross_iteration);
        assert_eq!(oei.os_op, oei.is_op, "A-sweep fuses with next A-sweep");
        assert_eq!(oei.path.len(), 1, "the weight mxm is the path");
    }

    /// Triangle counting (`A ⊙ (A·A)`, no carry) is a one-shot pipeline:
    /// producer-consumer reuse only, no OEI.
    #[test]
    fn mxm_without_carry_has_no_oei() {
        let mut b = GraphBuilder::new();
        let a = b.constant_matrix("A");
        let sq = b.mxm(a, a, SemiringOp::MulAdd).unwrap();
        let _masked = b.ewise_matrix(EwiseBinary::Mul, sq, a).unwrap();
        let g = b.build().unwrap();
        assert!(analyze(&g).oei.is_none());
    }

    #[test]
    fn tainted_set_is_downstream_closure() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let l = b.constant_matrix("L");
        let pre = b.ewise_scalar(EwiseBinary::Mul, v, 2.0).unwrap();
        let y = b.vxm(pre, l, SemiringOp::MulAdd).unwrap();
        let post = b.ewise_scalar(EwiseBinary::Add, y, 1.0).unwrap();
        let g = b.build().unwrap();
        let a = analyze(&g);
        assert!(a.tainted.contains(&y));
        assert!(a.tainted.contains(&post));
        assert!(!a.tainted.contains(&pre), "upstream ops are not tainted");
        assert!(!a.tainted.contains(&v));
    }
}
