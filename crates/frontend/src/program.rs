//! Static compilation of dataflow graphs to Sparsepipe programs (§IV-F).
//!
//! "The offline compilation process begins with a data dependence analysis
//! on the tensor-based program, separating it into sub-tensor dependence
//! groups and all other operation groups. … Based on the semi-ring operator
//! for each application, the compiler generates opcodes for the OS and IS
//! core operations."
//!
//! [`compile`] produces two artifacts:
//!
//! * [`SparsepipeProgram`] — consumed by the simulator: the OS/IS semiring
//!   opcodes, the fused e-wise instruction stream, and the OEI structure.
//! * [`WorkloadProfile`] — a machine-independent traffic/compute summary of
//!   one loop iteration, consumed by the baseline cost models (ideal
//!   accelerator, oracle, CPU, GPU). Keeping baselines and simulator on the
//!   same profile guarantees apples-to-apples workloads.

use serde::{Deserialize, Serialize};
use sparsepipe_semiring::SemiringOp;

use crate::analysis::{self, Analysis};
use crate::ewise_vm::{self, EwiseProgram, GroupInterface};
use crate::graph::{DataflowGraph, OpKind, TensorKind, TensorRole};
use crate::FrontendError;

/// Classification of one operator for cost models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperatorClass {
    /// A `vxm`/`SpMM` pass over the sparse matrix.
    Matrix,
    /// A fused e-wise group (one streaming pass over its operand vectors).
    FusedEwise,
    /// A dense matrix multiply (GCN weight application).
    DenseMM,
}

/// Machine-independent summary of one operator invocation per iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorSummary {
    /// What kind of operator this is.
    pub class: OperatorClass,
    /// Semiring (for matrix operators).
    pub semiring: Option<SemiringOp>,
    /// Number of `n`-element vector operands read from memory when this
    /// operator runs *unfused* (each operator a separate kernel).
    pub unfused_vector_reads: f64,
    /// Number of `n`-element vector results written when unfused.
    pub unfused_vector_writes: f64,
    /// Arithmetic operations per matrix non-zero (matrix ops) or per
    /// element (e-wise / dense ops).
    pub flops_per_unit: f64,
}

/// Machine-independent per-iteration workload description.
///
/// All vector traffic is in units of "one `n`-element vector pass"
/// (multiply by `n · 8` bytes for traffic). Matrix traffic is per-`nnz`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Whether the graph admits the OEI dataflow at all.
    pub has_oei: bool,
    /// Whether the OEI fusion spans loop iterations (vs. two `vxm`s within
    /// one iteration, as in KNN).
    pub cross_iteration: bool,
    /// Matrix-touching operator passes per iteration.
    pub matrix_passes: usize,
    /// Of [`WorkloadProfile::matrix_passes`], how many are sparse×sparse
    /// `mxm` (SpGEMM) passes. Non-zero routes the simulator onto the
    /// Gustavson stage; the per-pass B-side and writeback traffic beyond
    /// the shared A-image is machine-dependent and modeled there (and by
    /// the baselines' `MxmWork`).
    pub mxm_passes: usize,
    /// Element-wise sparse-matrix merge passes per iteration
    /// (`EwiseMatrix`: triangle masking, MCL inflation). Charged as
    /// streaming riders on the `mxm` stage.
    pub ewise_matrix_passes: usize,
    /// Feature dimension: 1 for `vxm` apps, `f` for SpMM-based apps (every
    /// vector quantity below scales by this).
    pub feature_dim: usize,
    /// Total e-wise arithmetic ops per element per iteration (all fused
    /// groups).
    pub ewise_flops_per_element: f64,
    /// Dense-MM arithmetic ops per element per iteration (GCN: `f` MACs
    /// per element of the `n×f` activation).
    pub dense_flops_per_element: f64,
    /// Distinct `n`-vector reads per iteration with producer-consumer
    /// fusion (live-in operands of fused groups + `vxm` inputs not produced
    /// on chip).
    pub fused_vector_reads: f64,
    /// Distinct `n`-vector writes per iteration with fusion (carried or
    /// terminal results only).
    pub fused_vector_writes: f64,
    /// `n`-vector reads per iteration without fusion (every operator
    /// streams its operands).
    pub unfused_vector_reads: f64,
    /// `n`-vector writes per iteration without fusion.
    pub unfused_vector_writes: f64,
    /// Per-operator breakdown (unfused view).
    pub operators: Vec<OperatorSummary>,
}

impl WorkloadProfile {
    /// Arithmetic intensity proxy: e-wise work relative to matrix work.
    /// Large values (k-core's many e-wise ops) shift the bottleneck from
    /// memory to compute (Fig 15c).
    pub fn ewise_to_matrix_ratio(&self) -> f64 {
        self.ewise_flops_per_element / self.matrix_passes.max(1) as f64
    }
}

/// The compiled program: everything the Sparsepipe simulator needs to
/// execute and time one application.
#[derive(Debug, Clone)]
pub struct SparsepipeProgram {
    /// The source graph (kept for functional execution / validation).
    pub graph: DataflowGraph,
    /// Analysis results (fusion groups, OEI subgraph, taint).
    pub analysis: Analysis,
    /// The OS core's semiring opcode (first fused matrix op).
    pub os_semiring: SemiringOp,
    /// The IS core's semiring opcode (second fused matrix op; equals
    /// `os_semiring` for single-`vxm` loops).
    pub is_semiring: SemiringOp,
    /// Compiled e-wise programs, one per fused group, with their tensor
    /// interfaces.
    pub ewise_programs: Vec<(EwiseProgram, GroupInterface)>,
    /// The machine-independent workload profile.
    pub profile: WorkloadProfile,
}

impl SparsepipeProgram {
    /// Total e-wise arithmetic instructions per element (sum over groups).
    pub fn ewise_arithmetic_per_element(&self) -> usize {
        self.ewise_programs
            .iter()
            .map(|(p, _)| p.arithmetic_per_lane())
            .sum()
    }
}

/// Compiles a dataflow graph.
///
/// `feature_dim` is the dense feature width bound at runtime (1 for pure
/// `vxm` applications, `f` for GCN-style SpMM applications).
///
/// # Errors
///
/// Returns [`FrontendError::Uncompilable`] if the graph has no matrix
/// operator, or an e-wise group fails to compile.
pub fn compile(
    graph: &DataflowGraph,
    feature_dim: usize,
) -> Result<SparsepipeProgram, FrontendError> {
    let analysis = analysis::analyze(graph);
    if analysis.matrix_ops.is_empty() {
        return Err(FrontendError::Uncompilable {
            context: "graph has no vxm/SpMM operator".into(),
        });
    }

    let (os_op, is_op) = match &analysis.oei {
        Some(oei) => (oei.os_op, oei.is_op),
        None => (analysis.matrix_ops[0], analysis.matrix_ops[0]),
    };
    let semiring_of = |op| match graph.op(op).kind {
        OpKind::Vxm { semiring }
        | OpKind::Mxv { semiring }
        | OpKind::SpMM { semiring }
        | OpKind::Mxm { semiring } => semiring,
        _ => unreachable!("matrix ops are vxm/spmm"),
    };
    let os_semiring = semiring_of(os_op);
    let is_semiring = semiring_of(is_op);

    let mut ewise_programs = Vec::new();
    for group in &analysis.fused.groups {
        ewise_programs.push(ewise_vm::compile_group(graph, group)?);
    }

    let profile = build_profile(graph, &analysis, &ewise_programs, feature_dim);

    Ok(SparsepipeProgram {
        graph: graph.clone(),
        analysis,
        os_semiring,
        is_semiring,
        ewise_programs,
        profile,
    })
}

fn build_profile(
    graph: &DataflowGraph,
    analysis: &Analysis,
    ewise_programs: &[(EwiseProgram, GroupInterface)],
    feature_dim: usize,
) -> WorkloadProfile {
    let feature = feature_dim.max(1) as f64;
    let mut operators = Vec::new();
    let mut unfused_reads = 0.0;
    let mut unfused_writes = 0.0;
    let mut ewise_flops = 0.0;
    let mut dense_flops = 0.0;
    let mut mxm_passes = 0usize;
    let mut ewise_matrix_passes = 0usize;

    // Matrix and DenseMM operators (always their own kernels).
    for (_, op) in graph.ops() {
        match op.kind {
            OpKind::Mxm { semiring } => {
                mxm_passes += 1;
                // SpMSpM: both operands stream; flops follow Gustavson's
                // per-nnz fan-out (approximated as average-degree work).
                operators.push(OperatorSummary {
                    class: OperatorClass::Matrix,
                    semiring: Some(semiring),
                    unfused_vector_reads: 0.0,
                    unfused_vector_writes: 0.0,
                    flops_per_unit: 2.0,
                });
            }
            OpKind::Vxm { semiring } | OpKind::Mxv { semiring } => {
                operators.push(OperatorSummary {
                    class: OperatorClass::Matrix,
                    semiring: Some(semiring),
                    unfused_vector_reads: 1.0,
                    unfused_vector_writes: 1.0,
                    flops_per_unit: 2.0, // mul + reduce per nnz
                });
                unfused_reads += 1.0;
                unfused_writes += 1.0;
            }
            OpKind::SpMM { semiring } => {
                operators.push(OperatorSummary {
                    class: OperatorClass::Matrix,
                    semiring: Some(semiring),
                    unfused_vector_reads: feature,
                    unfused_vector_writes: feature,
                    flops_per_unit: 2.0 * feature,
                });
                unfused_reads += feature;
                unfused_writes += feature;
            }
            OpKind::EwiseMatrix { .. } => {
                // Streams both sparse operands and writes a sparse
                // result; no dense-vector traffic, one merge op per
                // stored entry. Not a Matrix-class pass (no semiring, no
                // stationary operand) — cost models read
                // `ewise_matrix_passes` instead of the operator list.
                ewise_matrix_passes += 1;
            }
            OpKind::DenseMM => {
                operators.push(OperatorSummary {
                    class: OperatorClass::DenseMM,
                    semiring: None,
                    unfused_vector_reads: feature,
                    unfused_vector_writes: feature,
                    flops_per_unit: 2.0 * feature,
                });
                unfused_reads += feature;
                unfused_writes += feature;
                // Each of the n×f activation elements needs f MACs = 2f
                // flops; `dense_flops_per_element` is per activation
                // element (consumers multiply by n·f).
                dense_flops += 2.0 * feature;
            }
            _ => {}
        }
    }

    // Unfused e-wise: every e-wise op is a kernel streaming its vector
    // operands and result.
    for (_, op) in graph.ops() {
        if !op.kind.is_ewise() {
            continue;
        }
        let vec_inputs = op
            .inputs
            .iter()
            .filter(|&&t| {
                matches!(
                    graph.tensor(t).kind,
                    TensorKind::Vector | TensorKind::DenseMatrix
                )
            })
            .count() as f64;
        let writes = if graph.tensor(op.output).kind == TensorKind::Scalar {
            0.0
        } else {
            1.0
        } * feature;
        unfused_reads += vec_inputs * feature;
        unfused_writes += writes;
        // per-lane cost: one instruction per op per element of the
        // (n × feature) operand
        ewise_flops += 1.0;
    }

    // Fused e-wise: one pass per group; reads = group input slots, writes =
    // group output slots that are loop-carried or terminal (group outputs
    // consumed by a matrix op stay on chip under OEI — but for the profile
    // we still count them as writes when OEI is absent; the simulator and
    // baselines refine this with their own buffering assumptions).
    let mut fused_reads = 0.0;
    let mut fused_writes = 0.0;
    for (program, iface) in ewise_programs {
        // vxm outputs arriving from the OS core are on-chip already.
        let offchip_inputs = iface
            .input_tensors
            .iter()
            .filter(|&&t| {
                let node = graph.tensor(t);
                match node.role {
                    TensorRole::Input | TensorRole::Constant => true,
                    TensorRole::Produced => {
                        // produced by a non-e-wise op: a vxm output — it is
                        // staged on chip by the pipeline
                        graph
                            .producer(t)
                            .is_none_or(|p| graph.op(p).kind.is_ewise())
                    }
                }
            })
            .count() as f64;
        fused_reads += offchip_inputs * feature;
        fused_writes += program.n_outputs() as f64 * feature;
        operators.push(OperatorSummary {
            class: OperatorClass::FusedEwise,
            semiring: None,
            unfused_vector_reads: program.n_inputs() as f64 * feature,
            unfused_vector_writes: program.n_outputs() as f64 * feature,
            flops_per_unit: program.arithmetic_per_lane() as f64,
        });
    }
    // vxm input vectors that are live-in (not produced on chip). Mxm
    // passes are excluded: their operands and results are sparse
    // matrices, not `n`-vector streams — that traffic belongs to the
    // Gustavson stage's own model (`mxm_passes` above).
    for &mop in &analysis.matrix_ops {
        if matches!(graph.op(mop).kind, OpKind::Mxm { .. }) {
            continue;
        }
        let input = graph.op(mop).inputs[0];
        if matches!(
            graph.tensor(input).role,
            TensorRole::Input | TensorRole::Constant
        ) {
            fused_reads += feature;
        }
        // vxm result must be written back when nothing on chip consumes it
        // (any in-graph consumer — e-wise, dense, or a fused second vxm —
        // keeps it staged on chip)
        let out = graph.op(mop).output;
        let consumed_onchip = !graph.consumers(out).is_empty();
        if !consumed_onchip {
            fused_writes += feature;
        }
    }

    let ewise_total: f64 = ewise_programs
        .iter()
        .map(|(p, _)| p.arithmetic_per_lane() as f64)
        .sum();

    WorkloadProfile {
        has_oei: analysis.oei.is_some(),
        cross_iteration: analysis.oei.as_ref().is_some_and(|o| o.cross_iteration),
        matrix_passes: analysis.matrix_ops.len(),
        mxm_passes,
        ewise_matrix_passes,
        feature_dim: feature_dim.max(1),
        ewise_flops_per_element: ewise_total.max(ewise_flops),
        dense_flops_per_element: dense_flops,
        fused_vector_reads: fused_reads,
        fused_vector_writes: fused_writes,
        unfused_vector_reads: unfused_reads,
        unfused_vector_writes: unfused_writes,
        operators,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use sparsepipe_semiring::EwiseBinary;

    fn pagerank_graph() -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let pr = b.input_vector("pr");
        let l = b.constant_matrix("L");
        let y = b.vxm(pr, l, SemiringOp::MulAdd).unwrap();
        let s = b.ewise_scalar(EwiseBinary::Mul, y, 0.85).unwrap();
        let next = b.ewise_scalar(EwiseBinary::Add, s, 0.15).unwrap();
        let d = b.ewise(EwiseBinary::AbsDiff, next, pr).unwrap();
        let _res = b.reduce(EwiseBinary::Add, d).unwrap();
        b.carry(next, pr).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn compiles_pagerank() {
        let p = compile(&pagerank_graph(), 1).unwrap();
        assert_eq!(p.os_semiring, SemiringOp::MulAdd);
        assert_eq!(p.is_semiring, SemiringOp::MulAdd);
        assert!(p.profile.has_oei);
        assert!(p.profile.cross_iteration);
        assert_eq!(p.profile.matrix_passes, 1);
        assert_eq!(p.ewise_programs.len(), 1);
        assert!(p.ewise_arithmetic_per_element() >= 3);
    }

    #[test]
    fn fusion_reduces_vector_traffic() {
        let p = compile(&pagerank_graph(), 1).unwrap();
        let prof = &p.profile;
        assert!(
            prof.fused_vector_reads + prof.fused_vector_writes
                < prof.unfused_vector_reads + prof.unfused_vector_writes,
            "fusion must reduce vector traffic: fused {}+{} vs unfused {}+{}",
            prof.fused_vector_reads,
            prof.fused_vector_writes,
            prof.unfused_vector_reads,
            prof.unfused_vector_writes
        );
    }

    #[test]
    fn rejects_matrixless_graph() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let _ = b.ewise_scalar(EwiseBinary::Mul, v, 2.0).unwrap();
        let g = b.build().unwrap();
        assert!(compile(&g, 1).is_err());
    }

    #[test]
    fn feature_dim_scales_traffic() {
        let mut b = GraphBuilder::new();
        let h = b.input_dense("H");
        let a = b.constant_matrix("A");
        let w = b.constant_dense("W");
        let agg = b.spmm(h, a, SemiringOp::MulAdd).unwrap();
        let lin = b.dense_mm(agg, w).unwrap();
        let act = b
            .ewise_unary(sparsepipe_semiring::EwiseUnary::Relu, lin)
            .unwrap();
        b.carry(act, h).unwrap();
        let g = b.build().unwrap();

        let p1 = compile(&g, 1).unwrap();
        let p16 = compile(&g, 16).unwrap();
        assert!(p16.profile.unfused_vector_reads > p1.profile.unfused_vector_reads * 8.0);
        assert!(p16.profile.dense_flops_per_element > p1.profile.dense_flops_per_element);
        assert!(p16.profile.has_oei);
    }

    #[test]
    fn knn_profile_has_two_matrix_passes() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let a = b.constant_matrix("A");
        let mid = b.vxm(v, a, SemiringOp::AndOr).unwrap();
        let out = b.vxm(mid, a, SemiringOp::AndOr).unwrap();
        b.carry(out, v).unwrap();
        let g = b.build().unwrap();
        let p = compile(&g, 1).unwrap();
        assert_eq!(p.profile.matrix_passes, 2);
        assert!(p.profile.has_oei);
        assert!(!p.profile.cross_iteration);
        assert_eq!(p.os_semiring, SemiringOp::AndOr);
    }
}
