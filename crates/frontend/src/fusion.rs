//! E-wise fusion (Fig 2b of the paper).
//!
//! "Two groups of *e-wise* can be fused by identifying connected components
//! of operations and data nodes" — this pass partitions the e-wise class of
//! operations into maximal connected groups. Each group becomes one fused
//! super-operation: a single pass over its operand vectors with all
//! intermediate values held in registers, which is precisely the
//! producer–consumer reuse Sparsepipe's E-Wise core captures in hardware
//! (and ALP/GraphBLAS's non-blocking mode captures in software).

use crate::graph::{DataflowGraph, OpId};

/// The result of e-wise fusion: a partition of the graph's e-wise ops into
/// connected groups.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedGroups {
    /// Each group's ops, in the graph's topological order.
    pub groups: Vec<Vec<OpId>>,
    /// For each op (by index), the group it belongs to (`None` for
    /// non-e-wise ops such as `vxm`).
    pub op_group: Vec<Option<usize>>,
}

impl FusedGroups {
    /// Number of fused groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The group containing `op`, if it is an e-wise op.
    pub fn group_of(&self, op: OpId) -> Option<usize> {
        self.op_group.get(op.0).copied().flatten()
    }
}

/// Partitions the graph's e-wise operations into maximal connected groups.
///
/// Two e-wise ops are connected when one consumes the other's output
/// directly (sharing an intermediate data node). Connectivity through a
/// non-e-wise op (e.g. a `vxm` between two e-wise chains) does **not**
/// merge groups — such chains must stage through the `vxm` pipeline.
///
/// # Example
///
/// ```
/// use sparsepipe_frontend::{fusion, GraphBuilder};
/// use sparsepipe_semiring::{EwiseBinary, SemiringOp};
///
/// # fn main() -> Result<(), sparsepipe_frontend::FrontendError> {
/// let mut b = GraphBuilder::new();
/// let v = b.input_vector("v");
/// let l = b.constant_matrix("L");
/// let y = b.vxm(v, l, SemiringOp::MulAdd)?;
/// let a = b.ewise_scalar(EwiseBinary::Mul, y, 2.0)?;   // group 0
/// let bb = b.ewise_scalar(EwiseBinary::Add, a, 1.0)?;  // group 0 (chained)
/// let y2 = b.vxm(bb, l, SemiringOp::MulAdd)?;
/// let _c = b.ewise_scalar(EwiseBinary::Mul, y2, 3.0)?; // group 1 (behind vxm)
/// let g = b.build()?;
/// let fused = fusion::fuse(&g);
/// assert_eq!(fused.n_groups(), 2);
/// # Ok(())
/// # }
/// ```
pub fn fuse(g: &DataflowGraph) -> FusedGroups {
    let n = g.n_ops();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }

    // Union e-wise producers with e-wise consumers of the same tensor.
    for (pid, producer) in g.ops() {
        if !producer.kind.is_ewise() {
            continue;
        }
        for cid in g.consumers(producer.output) {
            if g.op(cid).kind.is_ewise() {
                let (a, b) = (find(&mut parent, pid.0), find(&mut parent, cid.0));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }

    // Collect groups in topological order so each group's op list is a
    // valid execution order for the fused kernel.
    let mut group_index: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut groups: Vec<Vec<OpId>> = Vec::new();
    let mut op_group: Vec<Option<usize>> = vec![None; n];
    for &op in g.topo_order() {
        if !g.op(op).kind.is_ewise() {
            continue;
        }
        let root = find(&mut parent, op.0);
        let gi = *group_index.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[gi].push(op);
        op_group[op.0] = Some(gi);
    }
    FusedGroups { groups, op_group }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use sparsepipe_semiring::{EwiseBinary, SemiringOp};

    #[test]
    fn chains_fuse_into_one_group() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let a = b.ewise_scalar(EwiseBinary::Mul, v, 2.0).unwrap();
        let c = b.ewise_scalar(EwiseBinary::Add, a, 1.0).unwrap();
        let _d = b.ewise(EwiseBinary::AbsDiff, c, v).unwrap();
        let g = b.build().unwrap();
        let fused = fuse(&g);
        assert_eq!(fused.n_groups(), 1);
        assert_eq!(fused.groups[0].len(), 3);
    }

    #[test]
    fn vxm_separates_groups() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let l = b.constant_matrix("L");
        let a = b.ewise_scalar(EwiseBinary::Mul, v, 2.0).unwrap();
        let y = b.vxm(a, l, SemiringOp::MulAdd).unwrap();
        let _c = b.ewise_scalar(EwiseBinary::Add, y, 1.0).unwrap();
        let g = b.build().unwrap();
        let fused = fuse(&g);
        assert_eq!(fused.n_groups(), 2);
        let vxm_op = g.producer(y).unwrap();
        assert_eq!(fused.group_of(vxm_op), None);
    }

    #[test]
    fn diamond_joins_into_one_group() {
        // a -> b, a -> c, (b, c) -> d : all one component
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let a = b.ewise_scalar(EwiseBinary::Mul, v, 2.0).unwrap();
        let x = b.ewise_scalar(EwiseBinary::Add, a, 1.0).unwrap();
        let y = b.ewise_scalar(EwiseBinary::Sub, a, 1.0).unwrap();
        let _d = b.ewise(EwiseBinary::Max, x, y).unwrap();
        let g = b.build().unwrap();
        assert_eq!(fuse(&g).n_groups(), 1);
    }

    #[test]
    fn reductions_fuse_with_their_producers() {
        // PageRank's residual: e-wise absdiff then fold — one group.
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let w = b.input_vector("w");
        let d = b.ewise(EwiseBinary::AbsDiff, v, w).unwrap();
        let _r = b.reduce(EwiseBinary::Add, d).unwrap();
        let g = b.build().unwrap();
        let fused = fuse(&g);
        assert_eq!(fused.n_groups(), 1);
        assert_eq!(fused.groups[0].len(), 2);
    }

    #[test]
    fn independent_chains_stay_separate() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let w = b.input_vector("w");
        let _a = b.ewise_scalar(EwiseBinary::Mul, v, 2.0).unwrap();
        let _b = b.ewise_scalar(EwiseBinary::Mul, w, 3.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(fuse(&g).n_groups(), 2);
    }

    #[test]
    fn group_ops_are_in_topological_order() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let a = b.ewise_scalar(EwiseBinary::Mul, v, 2.0).unwrap();
        let c = b.ewise_scalar(EwiseBinary::Add, a, 1.0).unwrap();
        let _d = b.ewise_scalar(EwiseBinary::Sub, c, 3.0).unwrap();
        let g = b.build().unwrap();
        let fused = fuse(&g);
        let group = &fused.groups[0];
        // every op's inputs produced by ops earlier in the group (or live-in)
        for (i, &op) in group.iter().enumerate() {
            for &input in &g.op(op).inputs {
                if let Some(p) = g.producer(input) {
                    let ppos = group.iter().position(|&x| x == p);
                    if let Some(ppos) = ppos {
                        assert!(ppos < i, "group not topologically ordered");
                    }
                }
            }
        }
    }
}
