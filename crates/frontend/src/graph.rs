//! The tensor dataflow graph IR.
//!
//! A [`DataflowGraph`] represents **one iteration** of an STA application's
//! inner loop (Fig 2 of the paper): data nodes are tensors, operation nodes
//! consume and produce them. Loop structure is captured by *loop-carried
//! edges*: an output tensor may be marked as becoming an input tensor of
//! the next iteration (PageRank's `swap(pr, pr_next)`). Unrolling across
//! iterations — the prerequisite for spotting cross-iteration reuse — is
//! then a matter of following those edges.

use serde::{Deserialize, Serialize};
use sparsepipe_semiring::{EwiseBinary, EwiseUnary, SemiringOp};

use crate::FrontendError;

/// Identifier of a tensor (data node) within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TensorId(pub(crate) usize);

impl TensorId {
    /// The raw index of this id within its graph's tensor table.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index. Intended for external verifiers and
    /// tests that construct graphs via [`DataflowGraph::from_parts`]; an id
    /// that does not point into the graph it is used with is *dangling* and
    /// will be reported by `sparsepipe-lint` (or panic in the accessors).
    pub fn from_raw(index: usize) -> Self {
        TensorId(index)
    }
}

/// Identifier of an operation node within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// The raw index of this id within its graph's op table.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index (see [`TensorId::from_raw`]).
    pub fn from_raw(index: usize) -> Self {
        OpId(index)
    }
}

/// The shape class of a tensor node. Shapes are symbolic — the same graph
/// runs on any matrix size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorKind {
    /// A sparse `n×n` matrix (the shared operand of `vxm`).
    SparseMatrix,
    /// A dense length-`n` vector.
    Vector,
    /// A dense `n×f` feature matrix (GCN activations).
    DenseMatrix,
    /// A scalar.
    Scalar,
}

/// How a tensor node participates in the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorRole {
    /// Live-in: bound by the caller before the first iteration.
    Input,
    /// Produced by an operation this iteration.
    Produced,
    /// A constant that never changes across iterations (e.g. the graph
    /// matrix `L` — the source of cross-iteration reuse).
    Constant,
}

/// A tensor (data) node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorNode {
    /// Human-readable name (unique within the graph for inputs/constants).
    pub name: String,
    /// Shape class.
    pub kind: TensorKind,
    /// Role in the loop body.
    pub role: TensorRole,
    /// If `Some(t)`, this produced tensor becomes tensor `t` at the start
    /// of the next iteration (loop-carried dependency).
    pub carries_into: Option<TensorId>,
}

/// An operation node's kind, carrying its static configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// `out[c] = ⊕_r in[r] ⊗ A[r][c]` — vector × sparse-matrix product.
    /// Inputs: `[vector, matrix]`.
    Vxm {
        /// The semiring configuring the multiply/reduce.
        semiring: SemiringOp,
    },
    /// `out[r] = ⊕_c A[r][c] ⊗ in[c]` — sparse-matrix × vector product
    /// (the row-oriented sibling of [`OpKind::Vxm`]; §III-A's "leading
    /// matrix (e.g., vxm/mxv) operations"). Inputs: `[vector, matrix]`
    /// (same slot order as `Vxm` so the analyses treat both uniformly).
    Mxv {
        /// The semiring configuring the multiply/reduce.
        semiring: SemiringOp,
    },
    /// Sparse matrix × dense feature matrix (GCN's SpMM), decomposable into
    /// `f` independent `vxm`s. Inputs: `[dense, matrix]`.
    SpMM {
        /// The semiring configuring the multiply/reduce.
        semiring: SemiringOp,
    },
    /// Sparse × sparse matrix multiplication (GraphBLAS's `mxm`,
    /// SpMSpM) — the operator prior intra-operator accelerators target.
    /// Inputs: `[matrix, matrix]`; output is a sparse matrix. Evaluated
    /// with Gustavson's algorithm; not an OEI candidate (its output is a
    /// matrix, not a vector, so the paper's vxm-chain fusion does not
    /// apply).
    Mxm {
        /// The semiring configuring the multiply/reduce.
        semiring: SemiringOp,
    },
    /// Dense matrix × dense weight matrix (GCN's `MM`). Inputs:
    /// `[dense, dense]`.
    DenseMM,
    /// Element-wise binary op over two same-shaped *sparse* matrices
    /// (GraphBLAS's `eWiseMult`/`eWiseAdd` on matrices): output entry
    /// `(i,j)` combines entry `(i,j)` of each operand, with absent
    /// entries read as the implicit zero and exact-zero results dropped.
    /// This is the masking/inflation companion of [`OpKind::Mxm`]
    /// (triangle counting's `A ⊙ (A·A)`, Markov clustering's Hadamard
    /// inflation). Inputs: `[matrix, matrix]`.
    EwiseMatrix {
        /// The operator.
        op: EwiseBinary,
    },
    /// Element-wise binary op over two same-shaped tensors.
    EwiseBinary {
        /// The operator.
        op: EwiseBinary,
    },
    /// Element-wise binary op against a scalar tensor (broadcast).
    /// Inputs: `[tensor, scalar]`.
    EwiseScalarBroadcast {
        /// The operator (tensor element on the left, scalar on the right).
        op: EwiseBinary,
    },
    /// Element-wise binary op against an immediate constant.
    EwiseImmediate {
        /// The operator (tensor element on the left, immediate on the
        /// right).
        op: EwiseBinary,
        /// The immediate operand.
        imm: f64,
    },
    /// Element-wise unary op.
    EwiseUnary {
        /// The operator.
        op: EwiseUnary,
    },
    /// Reduce a vector to a scalar with a commutative monoid (`fold`).
    Reduce {
        /// The reduction operator.
        op: EwiseBinary,
    },
    /// Dot product of two vectors (scalar output). Inputs: `[a, b]`.
    Dot,
}

impl OpKind {
    /// `true` for operations with *sub-tensor dependency*: output element
    /// `i` depends only on element `i` of each (non-scalar) input. These
    /// are the operations that may sit on the path between two fused `vxm`s
    /// without blocking the OEI dataflow (§III-A).
    ///
    /// Scalar-producing reductions ([`OpKind::Reduce`], [`OpKind::Dot`])
    /// do *not* have sub-tensor dependency — a scalar depends on every
    /// element. [`OpKind::DenseMM`] keeps per-*row* dependency (row `i` of
    /// the output needs only row `i` of the input), which is sufficient for
    /// OEI at `vxm` granularity, so it is included (this is why GCN's
    /// `SpMM → MM → ReLU` chain is fusible, Fig 5).
    pub fn has_subtensor_dependency(&self) -> bool {
        matches!(
            self,
            OpKind::EwiseBinary { .. }
                | OpKind::EwiseScalarBroadcast { .. }
                | OpKind::EwiseImmediate { .. }
                | OpKind::EwiseUnary { .. }
                | OpKind::DenseMM
                | OpKind::EwiseMatrix { .. }
        )
    }

    /// `true` for the e-wise class of operations (fusible into the E-Wise
    /// core's instruction stream). `DenseMM` is *not* e-wise — it runs on
    /// the OS core's PEs in the simulated machine.
    pub fn is_ewise(&self) -> bool {
        matches!(
            self,
            OpKind::EwiseBinary { .. }
                | OpKind::EwiseScalarBroadcast { .. }
                | OpKind::EwiseImmediate { .. }
                | OpKind::EwiseUnary { .. }
                | OpKind::Reduce { .. }
                | OpKind::Dot
        )
    }

    /// `true` for matrix-touching operators (`vxm`/`mxv`/`SpMM`/`mxm`) —
    /// the operators whose operand dominates memory traffic.
    ///
    /// [`OpKind::EwiseMatrix`] is deliberately *not* in this set: it has
    /// no semiring and no stationary operand, so it is neither an OEI
    /// endpoint candidate nor a compiled OS/IS pass — the simulator
    /// charges it as a streaming merge rider on the `mxm` stage instead.
    pub fn touches_matrix(&self) -> bool {
        matches!(
            self,
            OpKind::Vxm { .. } | OpKind::Mxv { .. } | OpKind::SpMM { .. } | OpKind::Mxm { .. }
        )
    }
}

/// An operation node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpNode {
    /// What the operation does.
    pub kind: OpKind,
    /// Input tensor ids, in operator-specific order.
    pub inputs: Vec<TensorId>,
    /// Output tensor id.
    pub output: TensorId,
}

/// A tensor dataflow graph describing one loop iteration of an STA
/// application. Construct with [`GraphBuilder`](crate::GraphBuilder).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowGraph {
    pub(crate) tensors: Vec<TensorNode>,
    pub(crate) ops: Vec<OpNode>,
    /// Ops in a valid topological execution order (established at build).
    pub(crate) topo_order: Vec<OpId>,
}

impl DataflowGraph {
    /// All tensor nodes.
    pub fn tensors(&self) -> impl Iterator<Item = (TensorId, &TensorNode)> {
        self.tensors
            .iter()
            .enumerate()
            .map(|(i, t)| (TensorId(i), t))
    }

    /// All operation nodes.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &OpNode)> {
        self.ops.iter().enumerate().map(|(i, o)| (OpId(i), o))
    }

    /// The tensor node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this graph; use
    /// [`DataflowGraph::try_tensor`] to get a diagnosable error instead.
    pub fn tensor(&self, id: TensorId) -> &TensorNode {
        self.try_tensor(id)
            .unwrap_or_else(|e| panic!("{e} (graph has {} tensors)", self.tensors.len()))
    }

    /// The tensor node for `id`, or [`FrontendError::UnknownTensor`] if the
    /// id does not belong to this graph.
    pub fn try_tensor(&self, id: TensorId) -> Result<&TensorNode, FrontendError> {
        self.tensors
            .get(id.0)
            .ok_or(FrontendError::UnknownTensor(id))
    }

    /// The operation node for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this graph; use [`DataflowGraph::try_op`]
    /// to get a diagnosable error instead.
    pub fn op(&self, id: OpId) -> &OpNode {
        self.try_op(id)
            .unwrap_or_else(|e| panic!("{e} (graph has {} ops)", self.ops.len()))
    }

    /// The operation node for `id`, or [`FrontendError::UnknownOp`] if the
    /// id does not belong to this graph.
    pub fn try_op(&self, id: OpId) -> Result<&OpNode, FrontendError> {
        self.ops.get(id.0).ok_or(FrontendError::UnknownOp(id))
    }

    /// Number of operation nodes.
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of tensor nodes.
    pub fn n_tensors(&self) -> usize {
        self.tensors.len()
    }

    /// Ops in topological (executable) order.
    pub fn topo_order(&self) -> &[OpId] {
        &self.topo_order
    }

    /// The operation that produces tensor `t`, if any.
    pub fn producer(&self, t: TensorId) -> Option<OpId> {
        self.ops.iter().position(|o| o.output == t).map(OpId)
    }

    /// All operations that consume tensor `t`.
    pub fn consumers(&self, t: TensorId) -> Vec<OpId> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.inputs.contains(&t))
            .map(|(i, _)| OpId(i))
            .collect()
    }

    /// Loop-carried edges as `(produced, becomes_input)` pairs.
    pub fn carries(&self) -> Vec<(TensorId, TensorId)> {
        self.tensors
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.carries_into.map(|dst| (TensorId(i), dst)))
            .collect()
    }

    /// The tensor a produced value becomes next iteration, if any.
    pub fn carry_target(&self, t: TensorId) -> Option<TensorId> {
        self.tensors[t.0].carries_into
    }

    /// Finds a tensor by name.
    pub fn find_tensor(&self, name: &str) -> Option<TensorId> {
        self.tensors
            .iter()
            .position(|t| t.name == name)
            .map(TensorId)
    }

    /// The first constant sparse-matrix tensor (the shared `vxm` operand),
    /// if the graph has one.
    pub fn shared_matrix(&self) -> Option<TensorId> {
        self.tensors
            .iter()
            .position(|t| t.kind == TensorKind::SparseMatrix && t.role == TensorRole::Constant)
            .map(TensorId)
    }

    /// Assembles a graph from raw node tables **without validation**.
    ///
    /// [`GraphBuilder`](crate::GraphBuilder) is the supported construction
    /// path and upholds every structural invariant; this escape hatch
    /// exists so external verifiers (`sparsepipe-lint`) and tests can
    /// materialize deliberately malformed graphs — dangling ids, duplicate
    /// producers, bogus topological orders — and check that they are
    /// *detected* rather than executed.
    pub fn from_parts(
        tensors: Vec<TensorNode>,
        ops: Vec<OpNode>,
        topo_order: Vec<OpId>,
    ) -> DataflowGraph {
        DataflowGraph {
            tensors,
            ops,
            topo_order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtensor_dependency_classification() {
        assert!(OpKind::EwiseUnary {
            op: EwiseUnary::Relu
        }
        .has_subtensor_dependency());
        assert!(OpKind::DenseMM.has_subtensor_dependency());
        assert!(OpKind::EwiseMatrix {
            op: EwiseBinary::Mul
        }
        .has_subtensor_dependency());
        assert!(!OpKind::Reduce {
            op: EwiseBinary::Add
        }
        .has_subtensor_dependency());
        assert!(!OpKind::Dot.has_subtensor_dependency());
        assert!(!OpKind::Vxm {
            semiring: SemiringOp::MulAdd
        }
        .has_subtensor_dependency());
    }

    #[test]
    fn ewise_classification() {
        assert!(OpKind::Dot.is_ewise());
        assert!(!OpKind::DenseMM.is_ewise());
        assert!(OpKind::Vxm {
            semiring: SemiringOp::MulAdd
        }
        .touches_matrix());
        // EwiseMatrix rides on the mxm stage: neither a fusible vector
        // e-wise op nor a compiled matrix pass.
        let em = OpKind::EwiseMatrix {
            op: EwiseBinary::Mul,
        };
        assert!(!em.is_ewise());
        assert!(!em.touches_matrix());
        assert!(OpKind::Mxm {
            semiring: SemiringOp::MulAdd
        }
        .touches_matrix());
    }
}
