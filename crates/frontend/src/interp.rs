//! Reference interpreter — the golden functional model.
//!
//! Executes a [`DataflowGraph`] iteration by iteration, operator by
//! operator, in topological order, with no fusion, no reordering, and no
//! partial computation. Every optimized execution path in the workspace
//! (fused e-wise programs, the simulator's OEI schedule) is validated
//! against this interpreter: the paper's correctness obligation is that
//! partial computation "acknowledges the finest-data dependency", i.e.
//! computes exactly the same values as this sequential schedule.

use std::collections::HashMap;

use sparsepipe_tensor::{CooMatrix, CscMatrix, DenseMatrix, DenseVector};

use crate::graph::{DataflowGraph, OpKind, TensorId, TensorKind, TensorRole};
use crate::FrontendError;

/// A runtime value bound to a tensor node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A dense vector.
    Vector(DenseVector),
    /// A dense matrix (`n×f` activations or `f×f` weights).
    Dense(DenseMatrix),
    /// A sparse matrix (stored column-ordered for `vxm`).
    Sparse(std::sync::Arc<CscMatrix>),
    /// A scalar.
    Scalar(f64),
}

impl Value {
    /// Wraps a COO matrix (converting to CSC once).
    pub fn sparse(m: &CooMatrix) -> Value {
        Value::Sparse(std::sync::Arc::new(m.to_csc()))
    }

    fn kind(&self) -> TensorKind {
        match self {
            Value::Vector(_) => TensorKind::Vector,
            Value::Dense(_) => TensorKind::DenseMatrix,
            Value::Sparse(_) => TensorKind::SparseMatrix,
            Value::Scalar(_) => TensorKind::Scalar,
        }
    }

    /// The vector inside, if this is a vector value.
    pub fn as_vector(&self) -> Option<&DenseVector> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// The scalar inside, if this is a scalar value.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Value::Scalar(s) => Some(*s),
            _ => None,
        }
    }

    /// The dense matrix inside, if this is a dense value.
    pub fn as_dense(&self) -> Option<&DenseMatrix> {
        match self {
            Value::Dense(d) => Some(d),
            _ => None,
        }
    }
}

/// Name → value bindings for a graph's inputs and constants.
pub type Bindings = HashMap<String, Value>;

/// Executes `iterations` loop iterations of `graph` starting from
/// `bindings` (which must bind every `Input` and `Constant` tensor by
/// name). Returns the final bindings — loop-carried tensors hold their
/// last-iteration values; additionally every produced tensor of the *last*
/// iteration is bound under its node name (`%k` for anonymous results).
///
/// # Errors
///
/// Returns [`FrontendError::BadBinding`] for missing or kind-mismatched
/// bindings, and propagates shape errors as [`FrontendError::BadBinding`].
pub fn run(
    graph: &DataflowGraph,
    bindings: &Bindings,
    iterations: usize,
) -> Result<Bindings, FrontendError> {
    let mut env: Vec<Option<Value>> = vec![None; graph.n_tensors()];

    // Bind inputs and constants.
    for (id, node) in graph.tensors() {
        match node.role {
            TensorRole::Input | TensorRole::Constant => {
                let v = bindings
                    .get(&node.name)
                    .ok_or_else(|| FrontendError::BadBinding {
                        context: format!("missing binding for {:?}", node.name),
                    })?;
                if v.kind() != node.kind {
                    return Err(FrontendError::BadBinding {
                        context: format!(
                            "binding {:?} is {:?}, expected {:?}",
                            node.name,
                            v.kind(),
                            node.kind
                        ),
                    });
                }
                env[id.0] = Some(v.clone());
            }
            TensorRole::Produced => {}
        }
    }

    for _ in 0..iterations {
        // Execute ops in topological order.
        for &op_id in graph.topo_order() {
            let op = graph.op(op_id);
            let out = eval_op(graph, &env, op_id)?;
            env[op.output.0] = Some(out);
        }
        // Apply loop-carried moves simultaneously (all reads happen before
        // any write, so swaps are well-defined).
        let carries = graph.carries();
        let moved: Vec<(TensorId, Value)> = carries
            .iter()
            .map(|&(from, to)| {
                let v = env[from.0]
                    .clone()
                    .expect("produced tensors are set after op execution");
                (to, v)
            })
            .collect();
        for (to, v) in moved {
            env[to.0] = Some(v);
        }
    }

    let mut out = Bindings::new();
    for (id, node) in graph.tensors() {
        if let Some(v) = &env[id.0] {
            out.insert(node.name.clone(), v.clone());
        }
    }
    Ok(out)
}

fn get<'e>(
    env: &'e [Option<Value>],
    graph: &DataflowGraph,
    t: TensorId,
) -> Result<&'e Value, FrontendError> {
    env[t.0].as_ref().ok_or_else(|| FrontendError::BadBinding {
        context: format!("tensor {:?} unset", graph.tensor(t).name),
    })
}

fn bad(context: String) -> FrontendError {
    FrontendError::BadBinding { context }
}

fn eval_op(
    graph: &DataflowGraph,
    env: &[Option<Value>],
    op_id: crate::graph::OpId,
) -> Result<Value, FrontendError> {
    let op = graph.op(op_id);
    let val = |i: usize| get(env, graph, op.inputs[i]);
    Ok(match op.kind {
        OpKind::Vxm { semiring } => {
            let x = val(0)?.as_vector().ok_or_else(|| bad("vxm input".into()))?;
            let a = match val(1)? {
                Value::Sparse(a) => a.clone(),
                _ => return Err(bad("vxm matrix".into())),
            };
            let y = a
                .vxm_with(
                    x,
                    semiring.zero(),
                    |p, q| semiring.mul(p, q),
                    |p, q| semiring.add(p, q),
                )
                .map_err(|e| bad(format!("vxm: {e}")))?;
            Value::Vector(y)
        }
        OpKind::Mxv { semiring } => {
            let x = val(0)?.as_vector().ok_or_else(|| bad("mxv input".into()))?;
            let a = match val(1)? {
                Value::Sparse(a) => a.clone(),
                _ => return Err(bad("mxv matrix".into())),
            };
            // row-oriented product: y[r] = ⊕_c A[r][c] ⊗ x[c]. The CSC
            // handle serves column access; compute via the transpose
            // identity using a row-major pass over the triplets.
            if x.len() != a.ncols() as usize {
                return Err(bad(format!(
                    "mxv: vector len {} vs matrix cols {}",
                    x.len(),
                    a.ncols()
                )));
            }
            let mut y = vec![semiring.zero(); a.nrows() as usize];
            for (r, c, v) in a.iter() {
                y[r as usize] = semiring.add(y[r as usize], semiring.mul(v, x[c as usize]));
            }
            Value::Vector(DenseVector::from(y))
        }
        OpKind::Mxm { semiring } => {
            let a = match val(0)? {
                Value::Sparse(a) => a.clone(),
                _ => return Err(bad("mxm lhs".into())),
            };
            let b2 = match val(1)? {
                Value::Sparse(b) => b.clone(),
                _ => return Err(bad("mxm rhs".into())),
            };
            let c = sparsepipe_tensor::spgemm::spgemm(&a.to_csr(), &b2.to_csr(), semiring)
                .map_err(|e| bad(format!("mxm: {e}")))?;
            Value::Sparse(std::sync::Arc::new(c.to_csc()))
        }
        OpKind::EwiseMatrix { op: bop } => {
            let a = match val(0)? {
                Value::Sparse(a) => a.clone(),
                _ => return Err(bad("ewise_matrix lhs".into())),
            };
            let b2 = match val(1)? {
                Value::Sparse(b) => b.clone(),
                _ => return Err(bad("ewise_matrix rhs".into())),
            };
            if a.nrows() != b2.nrows() || a.ncols() != b2.ncols() {
                return Err(bad(format!(
                    "ewise_matrix: {}x{} vs {}x{}",
                    a.nrows(),
                    a.ncols(),
                    b2.nrows(),
                    b2.ncols()
                )));
            }
            // Coordinate-sorted merge over the union of both patterns;
            // absent entries read as 0.0 and exact-zero results stay
            // implicit (the same drop rule as spgemm's accumulator).
            let mut merged: std::collections::BTreeMap<(u32, u32), (f64, f64)> =
                std::collections::BTreeMap::new();
            for (r, c, v) in a.iter() {
                merged.entry((r, c)).or_insert((0.0, 0.0)).0 = v;
            }
            for (r, c, v) in b2.iter() {
                merged.entry((r, c)).or_insert((0.0, 0.0)).1 = v;
            }
            let entries: Vec<(u32, u32, f64)> = merged
                .into_iter()
                .filter_map(|((r, c), (x, y))| {
                    let v = bop.apply(x, y);
                    (v != 0.0).then_some((r, c, v))
                })
                .collect();
            let coo = CooMatrix::from_entries(a.nrows(), a.ncols(), entries)
                .expect("coordinates from operands are in range");
            Value::Sparse(std::sync::Arc::new(coo.to_csc()))
        }
        OpKind::SpMM { semiring } => {
            let h = val(0)?.as_dense().ok_or_else(|| bad("spmm input".into()))?;
            let a = match val(1)? {
                Value::Sparse(a) => a.clone(),
                _ => return Err(bad("spmm matrix".into())),
            };
            if h.nrows() != a.nrows() as usize {
                return Err(bad(format!(
                    "spmm: features {}x{} vs matrix {}x{}",
                    h.nrows(),
                    h.ncols(),
                    a.nrows(),
                    a.ncols()
                )));
            }
            // out[c][j] = ⊕_r h[r][j] ⊗ A[r][c] — one vxm per feature col.
            let f = h.ncols();
            let mut out = DenseMatrix::zeros(a.ncols() as usize, f);
            for j in 0..f {
                let col: DenseVector = (0..h.nrows()).map(|r| h.get(r, j)).collect();
                let y = a
                    .vxm_with(
                        &col,
                        semiring.zero(),
                        |p, q| semiring.mul(p, q),
                        |p, q| semiring.add(p, q),
                    )
                    .map_err(|e| bad(format!("spmm: {e}")))?;
                for (r, &v) in y.as_slice().iter().enumerate() {
                    out.set(r, j, v);
                }
            }
            Value::Dense(out)
        }
        OpKind::DenseMM => {
            let x = val(0)?
                .as_dense()
                .ok_or_else(|| bad("dense_mm lhs".into()))?;
            let w = val(1)?
                .as_dense()
                .ok_or_else(|| bad("dense_mm rhs".into()))?;
            Value::Dense(x.matmul(w).map_err(|e| bad(format!("dense_mm: {e}")))?)
        }
        OpKind::EwiseBinary { op: bop } => match (val(0)?, val(1)?) {
            (Value::Vector(a), Value::Vector(b)) => {
                if a.len() != b.len() {
                    return Err(bad(format!("ewise: {} vs {}", a.len(), b.len())));
                }
                Value::Vector(
                    a.iter()
                        .zip(b.iter())
                        .map(|(&x, &y)| bop.apply(x, y))
                        .collect(),
                )
            }
            (Value::Dense(a), Value::Dense(b)) => {
                if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
                    return Err(bad("ewise dense shape".into()));
                }
                let data = a
                    .as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .map(|(&x, &y)| bop.apply(x, y))
                    .collect();
                Value::Dense(
                    DenseMatrix::from_row_major(a.nrows(), a.ncols(), data)
                        .expect("same shape as operands"),
                )
            }
            _ => return Err(bad("ewise operand kinds".into())),
        },
        OpKind::EwiseScalarBroadcast { op: bop } => {
            let s = val(1)?
                .as_scalar()
                .ok_or_else(|| bad("broadcast scalar".into()))?;
            match val(0)? {
                Value::Vector(a) => Value::Vector(a.iter().map(|&x| bop.apply(x, s)).collect()),
                Value::Dense(a) => {
                    let mut out = a.clone();
                    out.map_inplace(|x| bop.apply(x, s));
                    Value::Dense(out)
                }
                _ => return Err(bad("broadcast lhs".into())),
            }
        }
        OpKind::EwiseImmediate { op: bop, imm } => match val(0)? {
            Value::Vector(a) => Value::Vector(a.iter().map(|&x| bop.apply(x, imm)).collect()),
            Value::Dense(a) => {
                let mut out = a.clone();
                out.map_inplace(|x| bop.apply(x, imm));
                Value::Dense(out)
            }
            _ => return Err(bad("ewise_scalar lhs".into())),
        },
        OpKind::EwiseUnary { op: uop } => match val(0)? {
            Value::Vector(a) => Value::Vector(a.iter().map(|&x| uop.apply(x)).collect()),
            Value::Dense(a) => {
                let mut out = a.clone();
                out.map_inplace(|x| uop.apply(x));
                Value::Dense(out)
            }
            _ => return Err(bad("ewise_unary input".into())),
        },
        OpKind::Reduce { op: rop } => {
            let a = val(0)?
                .as_vector()
                .ok_or_else(|| bad("reduce input".into()))?;
            let init = crate::ewise_vm::reduce_identity(rop);
            Value::Scalar(a.iter().fold(init, |acc, &v| rop.apply(acc, v)))
        }
        OpKind::Dot => {
            let a = val(0)?.as_vector().ok_or_else(|| bad("dot lhs".into()))?;
            let b = val(1)?.as_vector().ok_or_else(|| bad("dot rhs".into()))?;
            Value::Scalar(a.dot(b).map_err(|e| bad(format!("dot: {e}")))?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use sparsepipe_semiring::{EwiseBinary, SemiringOp};
    use sparsepipe_tensor::gen;

    #[test]
    fn interprets_pagerank_against_hand_rolled_loop() {
        let mut b = GraphBuilder::new();
        let pr = b.input_vector("pr");
        let l = b.constant_matrix("L");
        let y = b.vxm(pr, l, SemiringOp::MulAdd).unwrap();
        let s = b.ewise_scalar(EwiseBinary::Mul, y, 0.85).unwrap();
        let next = b.ewise_scalar(EwiseBinary::Add, s, 0.15 / 8.0).unwrap();
        b.carry(next, pr).unwrap();
        let g = b.build().unwrap();

        let m = gen::uniform(8, 8, 20, 4);
        let csc = m.to_csc();
        let mut bindings = Bindings::new();
        bindings.insert(
            "pr".into(),
            Value::Vector(DenseVector::filled(8, 1.0 / 8.0)),
        );
        bindings.insert("L".into(), Value::sparse(&m));

        let out = run(&g, &bindings, 3).unwrap();
        // Hand-rolled reference.
        let mut v = DenseVector::filled(8, 1.0 / 8.0);
        for _ in 0..3 {
            let y = csc.vxm::<sparsepipe_semiring::MulAdd>(&v).unwrap();
            v = y.iter().map(|&x| x * 0.85 + 0.15 / 8.0).collect();
        }
        let got = out["pr"].as_vector().unwrap();
        assert!(got.max_abs_diff(&v).unwrap() < 1e-12);
    }

    #[test]
    fn missing_binding_is_an_error() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let l = b.constant_matrix("L");
        let _y = b.vxm(v, l, SemiringOp::MulAdd).unwrap();
        let g = b.build().unwrap();
        let err = run(&g, &Bindings::new(), 1).unwrap_err();
        assert!(err.to_string().contains("missing binding"));
    }

    #[test]
    fn kind_mismatch_is_an_error() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let l = b.constant_matrix("L");
        let _y = b.vxm(v, l, SemiringOp::MulAdd).unwrap();
        let g = b.build().unwrap();
        let mut bindings = Bindings::new();
        bindings.insert("v".into(), Value::Scalar(1.0));
        bindings.insert("L".into(), Value::sparse(&gen::uniform(4, 4, 4, 1)));
        assert!(run(&g, &bindings, 1).is_err());
    }

    #[test]
    fn swap_style_carries_are_simultaneous() {
        // x' = y, y' = x (a pure swap through two carried e-wise copies)
        let mut b = GraphBuilder::new();
        let x = b.input_vector("x");
        let y = b.input_vector("y");
        let cx = b.ewise_scalar(EwiseBinary::Add, x, 0.0).unwrap();
        let cy = b.ewise_scalar(EwiseBinary::Add, y, 0.0).unwrap();
        b.carry(cx, y).unwrap();
        b.carry(cy, x).unwrap();
        let g = b.build().unwrap();
        let mut bindings = Bindings::new();
        bindings.insert("x".into(), Value::Vector(DenseVector::filled(2, 1.0)));
        bindings.insert("y".into(), Value::Vector(DenseVector::filled(2, 2.0)));
        let out = run(&g, &bindings, 1).unwrap();
        assert_eq!(out["x"].as_vector().unwrap().as_slice(), &[2.0, 2.0]);
        assert_eq!(out["y"].as_vector().unwrap().as_slice(), &[1.0, 1.0]);
        // after two iterations we are back where we started
        let out2 = run(&g, &bindings, 2).unwrap();
        assert_eq!(out2["x"].as_vector().unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn bfs_frontier_expands() {
        let mut b = GraphBuilder::new();
        let frontier = b.input_vector("frontier");
        let a = b.constant_matrix("A");
        let next = b.vxm(frontier, a, SemiringOp::AndOr).unwrap();
        b.carry(next, frontier).unwrap();
        let g = b.build().unwrap();

        // path graph 0 -> 1 -> 2
        let m = CooMatrix::from_entries(3, 3, vec![(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mut bindings = Bindings::new();
        bindings.insert(
            "frontier".into(),
            Value::Vector(DenseVector::from(vec![1.0, 0.0, 0.0])),
        );
        bindings.insert("A".into(), Value::sparse(&m));
        let out = run(&g, &bindings, 2).unwrap();
        assert_eq!(
            out["frontier"].as_vector().unwrap().as_slice(),
            &[0.0, 0.0, 1.0]
        );
    }

    #[test]
    fn gcn_layer_matches_dense_computation() {
        let mut b = GraphBuilder::new();
        let h = b.input_dense("H");
        let a = b.constant_matrix("A");
        let w = b.constant_dense("W");
        let agg = b.spmm(h, a, SemiringOp::MulAdd).unwrap();
        let lin = b.dense_mm(agg, w).unwrap();
        let act = b
            .ewise_unary(sparsepipe_semiring::EwiseUnary::Relu, lin)
            .unwrap();
        b.carry(act, h).unwrap();
        let g = b.build().unwrap();

        let adj = gen::uniform(6, 6, 12, 2);
        let h0 =
            DenseMatrix::from_row_major(6, 2, (0..12).map(|i| i as f64 - 5.0).collect()).unwrap();
        let w0 = DenseMatrix::from_row_major(2, 2, vec![1.0, -1.0, 0.5, 2.0]).unwrap();
        let mut bindings = Bindings::new();
        bindings.insert("H".into(), Value::Dense(h0.clone()));
        bindings.insert("A".into(), Value::sparse(&adj));
        bindings.insert("W".into(), Value::Dense(w0.clone()));
        let out = run(&g, &bindings, 1).unwrap();

        // dense reference: relu((Aᵀ H) W)
        let csc = adj.to_csc();
        let mut agg_ref = DenseMatrix::zeros(6, 2);
        for j in 0..2 {
            let col: DenseVector = (0..6).map(|r| h0.get(r, j)).collect();
            let y = csc.vxm::<sparsepipe_semiring::MulAdd>(&col).unwrap();
            for r in 0..6 {
                agg_ref.set(r, j, y[r]);
            }
        }
        let mut expect = agg_ref.matmul(&w0).unwrap();
        expect.map_inplace(|v| v.max(0.0));
        assert_eq!(out["H"].as_dense().unwrap(), &expect);
    }
}
#[cfg(test)]
mod mxv_tests {
    use super::*;
    use crate::GraphBuilder;
    use sparsepipe_semiring::SemiringOp;
    use sparsepipe_tensor::gen;

    /// mxv is spmv: y[r] = Σ_c A[r][c]·x[c].
    #[test]
    fn mxv_matches_csr_spmv() {
        let mut b = GraphBuilder::new();
        let x = b.input_vector("x");
        let a = b.constant_matrix("A");
        let _y = b.mxv(a, x, SemiringOp::MulAdd).unwrap();
        let g = b.build().unwrap();

        let m = gen::uniform(30, 30, 180, 8);
        let xv = DenseVector::from((0..30).map(|i| i as f64 * 0.1).collect::<Vec<_>>());
        let mut bindings = Bindings::new();
        bindings.insert("x".into(), Value::Vector(xv.clone()));
        bindings.insert("A".into(), Value::sparse(&m));
        let out = run(&g, &bindings, 1).unwrap();
        let got = out
            .values()
            .find_map(|v| match v {
                Value::Vector(v) if v.len() == 30 && *v != xv => Some(v.clone()),
                _ => None,
            })
            .expect("mxv output present");
        let expected = m.to_csr().spmv::<sparsepipe_semiring::MulAdd>(&xv).unwrap();
        assert!(got.max_abs_diff(&expected).unwrap() < 1e-12);
    }

    /// mxv over the tropical semiring is one Bellman-Ford relaxation in
    /// the "incoming edges" direction.
    #[test]
    fn mxv_tropical_relaxation() {
        let mut b = GraphBuilder::new();
        let x = b.input_vector("x");
        let a = b.constant_matrix("A");
        let y = b.mxv(a, x, SemiringOp::MinAdd).unwrap();
        let next = b
            .ewise(sparsepipe_semiring::EwiseBinary::Min, x, y)
            .unwrap();
        b.carry(next, x).unwrap();
        let g = b.build().unwrap();

        // path 0 -> 1 -> 2 with weights; mxv relaxes along *incoming* rows
        let m = sparsepipe_tensor::CooMatrix::from_entries(3, 3, vec![(1, 0, 2.0), (2, 1, 3.0)])
            .unwrap();
        let mut dist = DenseVector::filled(3, f64::INFINITY);
        dist[0] = 0.0;
        let mut bindings = Bindings::new();
        bindings.insert("x".into(), Value::Vector(dist));
        bindings.insert("A".into(), Value::sparse(&m));
        let out = run(&g, &bindings, 2).unwrap();
        let d = out["x"].as_vector().unwrap();
        assert_eq!(d.as_slice(), &[0.0, 2.0, 5.0]);
    }
}

#[cfg(test)]
mod mxm_tests {
    use super::*;
    use crate::GraphBuilder;
    use sparsepipe_semiring::SemiringOp;
    use sparsepipe_tensor::gen;

    /// mxm in the dataflow IR matches the substrate spgemm kernel, and a
    /// following vxm over the product matches vxm-composition.
    #[test]
    fn mxm_then_vxm_composes() {
        let mut b = GraphBuilder::new();
        let x = b.input_vector("x");
        let a = b.constant_matrix("A");
        let sq = b.mxm(a, a, SemiringOp::MulAdd).unwrap();
        let _y = b.vxm(x, sq, SemiringOp::MulAdd).unwrap();
        let g = b.build().unwrap();

        let m = gen::uniform(20, 20, 60, 12);
        let xv: DenseVector = (0..20).map(|i| i as f64 * 0.25).collect();
        let mut bindings = Bindings::new();
        bindings.insert("x".into(), Value::Vector(xv.clone()));
        bindings.insert("A".into(), Value::sparse(&m));
        let out = run(&g, &bindings, 1).unwrap();

        // reference: vxm twice = x A A
        let csc = m.to_csc();
        let h1 = csc.vxm::<sparsepipe_semiring::MulAdd>(&xv).unwrap();
        let expected = csc.vxm::<sparsepipe_semiring::MulAdd>(&h1).unwrap();
        let got = out
            .values()
            .find_map(|v| match v {
                Value::Vector(v) if v.len() == 20 && *v != xv => Some(v.clone()),
                _ => None,
            })
            .expect("vxm output present");
        assert!(got.max_abs_diff(&expected).unwrap() < 1e-9);
    }

    /// Triangle counting core: `A ⊙ (A·A)` keeps exactly the wedge
    /// closures that are themselves edges.
    #[test]
    fn ewise_matrix_masks_spgemm_product() {
        let mut b = GraphBuilder::new();
        let a = b.constant_matrix("A");
        let sq = b.mxm(a, a, SemiringOp::MulAdd).unwrap();
        let masked = b
            .ewise_matrix(sparsepipe_semiring::EwiseBinary::Mul, sq, a)
            .unwrap();
        let g = b.build().unwrap();

        // directed triangle 0->1->2->0 plus a chord 0->2
        let m = sparsepipe_tensor::CooMatrix::from_entries(
            3,
            3,
            vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (0, 2, 1.0)],
        )
        .unwrap();
        let mut bindings = Bindings::new();
        bindings.insert("A".into(), Value::sparse(&m));
        let out = run(&g, &bindings, 1).unwrap();
        let name = &g.tensor(masked).name;
        let got = match &out[name] {
            Value::Sparse(s) => s.to_coo(),
            other => panic!("expected sparse, got {other:?}"),
        };
        // (A·A)[0][2] = 1 via 0->1->2, and A[0][2] = 1 → masked entry 1;
        // every other product entry falls outside A's pattern.
        assert_eq!(got.entries(), &[(0, 2, 1.0)][..]);
    }

    /// A carried mxm loop (multi-source BFS) interprets: frontier rows
    /// advance one hop per iteration.
    #[test]
    fn mxm_loop_advances_sparse_frontier() {
        let mut b = GraphBuilder::new();
        let f = b.input_matrix("F");
        let a = b.constant_matrix("A");
        let next = b.mxm(f, a, SemiringOp::AndOr).unwrap();
        b.carry(next, f).unwrap();
        let g = b.build().unwrap();

        // path graph 0 -> 1 -> 2; two sources 0 and 1 as frontier rows
        let adj = sparsepipe_tensor::CooMatrix::from_entries(3, 3, vec![(0, 1, 1.0), (1, 2, 1.0)])
            .unwrap();
        let f0 = sparsepipe_tensor::CooMatrix::from_entries(3, 3, vec![(0, 0, 1.0), (1, 1, 1.0)])
            .unwrap();
        let mut bindings = Bindings::new();
        bindings.insert("F".into(), Value::sparse(&f0));
        bindings.insert("A".into(), Value::sparse(&adj));
        let out = run(&g, &bindings, 1).unwrap();
        let got = match &out["F"] {
            Value::Sparse(s) => s.to_coo(),
            other => panic!("expected sparse, got {other:?}"),
        };
        // source 0 reaches 1, source 1 reaches 2
        assert_eq!(got.entries(), &[(0, 1, 1.0), (1, 2, 1.0)][..]);
    }

    #[test]
    fn mxm_rejects_non_sparse_operands() {
        let mut b = GraphBuilder::new();
        let v = b.input_vector("v");
        let a = b.constant_matrix("A");
        assert!(b.mxm(a, v, SemiringOp::MulAdd).is_err());
        assert!(b.mxm(v, a, SemiringOp::MulAdd).is_err());
    }
}
