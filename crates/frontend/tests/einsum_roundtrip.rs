//! Round-trip and robustness properties for the sparse-einsum front
//! door.
//!
//! Two obligations:
//!
//! 1. **Round-trip**: for every AST the generator below can build,
//!    `parse(p.pretty()) == p` — the canonical printer and the parser
//!    are exact inverses up to spans (which `PartialEq` ignores).
//! 2. **No panic, spanned errors**: hostile inputs — unbalanced
//!    brackets, unknown semirings, unicode index names, megabyte-long
//!    garbage — must come back as spanned [`EinsumError`]s whose spans
//!    lie inside the source, never as a panic or unbounded recursion.
//!
//! The AST generator is written directly against the typed AST (not the
//! grammar), so any construct the printer can emit that the parser
//! cannot read back fails here.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sparsepipe_frontend::einsum::{self, ast, EinsumErrorKind};
use sparsepipe_semiring::{EwiseBinary, EwiseUnary, SemiringOp};
use sparsepipe_testutil::einsum as gen_expr;

/// Tensor-name pool: valid identifiers that are not contextual keywords
/// (`in`, `const`, `dense`) — everything else, including operator names,
/// must round-trip as ordinary tensors.
const NAMES: &[&str] = &[
    "pr", "vx", "acc", "outv", "mm", "lhs", "wt", "tmp2", "gate", "h0", "min", "sum",
];
const IDX: &[&str] = &["i", "j", "k", "l", "m", "q"];

struct Gen(StdRng);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(StdRng::seed_from_u64(seed))
    }

    fn below(&mut self, n: usize) -> usize {
        (self.0.next_u64() % n as u64) as usize
    }

    fn name(&mut self) -> String {
        NAMES[self.below(NAMES.len())].to_string()
    }

    fn indices(&mut self, max: usize) -> Vec<String> {
        let count = self.below(max + 1);
        (0..count)
            .map(|_| IDX[self.below(IDX.len())].to_string())
            .collect()
    }

    /// A finite literal on a 1/8 grid, so `{value}` prints a short
    /// decimal that reparses to the same bits.
    fn number(&mut self) -> f64 {
        (self.below(32_001) as f64 - 16_000.0) / 8.0
    }

    fn operand(&mut self) -> ast::Operand {
        if self.below(4) == 0 {
            ast::Operand::Number {
                value: self.number(),
                span: ast::Span::default(),
            }
        } else {
            self.tensor_operand()
        }
    }

    fn tensor_operand(&mut self) -> ast::Operand {
        ast::Operand::Tensor {
            name: self.name(),
            indices: self.indices(2),
            span: ast::Span::default(),
        }
    }

    fn stmt(&mut self) -> ast::Stmt {
        let semirings = [
            SemiringOp::MulAdd,
            SemiringOp::AndOr,
            SemiringOp::MinAdd,
            SemiringOp::ArilAdd,
        ];
        let binaries = EwiseBinary::ALL;
        let unaries = EwiseUnary::ALL;
        let (assign, rhs) = if self.below(3) == 0 {
            // A semiring contraction: the only rhs a semiring assignment
            // parses, and contraction operands must be tensors.
            (
                ast::AssignOp::Semiring(semirings[self.below(semirings.len())]),
                ast::Rhs::Contract(self.tensor_operand(), self.tensor_operand()),
            )
        } else {
            let rhs = match self.below(4) {
                0 => ast::Rhs::Binary(
                    binaries[self.below(binaries.len())],
                    self.operand(),
                    self.operand(),
                ),
                1 => ast::Rhs::Unary(unaries[self.below(unaries.len())], self.operand()),
                2 => ast::Rhs::Reduce(binaries[self.below(binaries.len())], self.operand()),
                _ => ast::Rhs::Dot(self.operand(), self.operand()),
            };
            (ast::AssignOp::Ewise, rhs)
        };
        ast::Stmt {
            target: self.name(),
            indices: self.indices(2),
            assign,
            rhs,
            span: ast::Span::default(),
        }
    }

    fn program(&mut self) -> ast::Program {
        let decls = (0..self.below(3))
            .map(|_| ast::Decl {
                role: if self.below(2) == 0 {
                    ast::DeclRole::In
                } else {
                    ast::DeclRole::Const
                },
                dense: self.below(3) == 0,
                name: self.name(),
                indices: self.indices(2),
                span: ast::Span::default(),
            })
            .collect();
        let stmts = (0..self.below(4) + 1).map(|_| self.stmt()).collect();
        let settings = ast::Settings {
            iterations: (self.below(2) == 0).then(|| {
                if self.below(16) == 0 {
                    u32::MAX
                } else {
                    self.below(1_000_000) as u32 + 1
                }
            }),
            feature_dim: (self.below(3) == 0).then(|| self.below(64) as u32 + 1),
            name: (self.below(3) == 0).then(|| self.name()),
            carries: (0..self.below(3))
                .map(|_| ast::Carry {
                    from: (self.below(2) == 0).then(|| self.name()),
                    to: self.name(),
                    span: ast::Span::default(),
                })
                .collect(),
        };
        ast::Program {
            decls,
            stmts,
            settings,
        }
    }
}

/// Parse must never panic; on rejection the span must lie inside `src`
/// on char boundaries, and lowering an accepted program must be equally
/// well-behaved.
fn assert_well_behaved(src: &str) {
    match einsum::parse(src) {
        Ok(program) => {
            if let Err(e) = einsum::lower(&program) {
                assert_spanned(src, &e);
            }
        }
        Err(e) => assert_spanned(src, &e),
    }
}

fn assert_spanned(src: &str, e: &einsum::EinsumError) {
    assert!(
        e.span.start <= e.span.end && e.span.end <= src.len(),
        "span {} escapes a {}-byte source: {e}",
        e.span,
        src.len()
    );
    assert!(
        src.is_char_boundary(e.span.start) && src.is_char_boundary(e.span.end),
        "span {} splits a character: {e}",
        e.span
    );
    assert!(!e.message.is_empty());
}

proptest! {
    #![proptest_config(sparsepipe_testutil::config_with(256))]

    /// AST → pretty → parse is the identity (spans aside).
    #[test]
    fn pretty_parse_round_trips(seed in any::<u64>()) {
        let program = Gen::new(seed).program();
        let text = program.pretty();
        let reparsed = einsum::parse(&text)
            .unwrap_or_else(|e| panic!("canonical form rejected: {e}\n  text: {text}"));
        prop_assert_eq!(&reparsed, &program, "round-trip mismatch for `{}`", text);
        // And the printer is a fixpoint: pretty ∘ parse ∘ pretty = pretty.
        prop_assert_eq!(reparsed.pretty(), text);
    }

    /// The string-level generator in testutil (which shares no code with
    /// the parser) emits only accepted expressions, and those round-trip
    /// through the printer too.
    #[test]
    fn generated_expressions_parse_and_round_trip(seed in any::<u64>()) {
        let src = gen_expr::well_formed(seed);
        let program = einsum::parse(&src)
            .unwrap_or_else(|e| panic!("well-formed input rejected: {e}\n  src: {src}"));
        let reparsed = einsum::parse(&program.pretty()).expect("canonical form parses");
        prop_assert_eq!(reparsed, program);
    }

    /// Mutated expressions: never a panic, always in-bounds spans.
    #[test]
    fn hostile_mutations_stay_spanned(seed in any::<u64>()) {
        assert_well_behaved(&gen_expr::hostile(seed));
    }

    /// Raw ASCII noise: same obligation from a different distribution.
    #[test]
    fn ascii_noise_stays_spanned(bytes in proptest::collection::vec(0x20u8..0x7f, 0..160)) {
        let src = String::from_utf8(bytes).expect("printable ASCII");
        assert_well_behaved(&src);
    }
}

#[test]
fn rejection_classes_carry_the_right_kind() {
    let cases: &[(&str, EinsumErrorKind)] = &[
        // Unbalanced brackets.
        ("y[j +.*= x[i] * A[i,j]", EinsumErrorKind::Syntax),
        ("y[j]] = x[j]", EinsumErrorKind::Syntax),
        // Unknown semiring / function.
        (
            "y[j] max.*= x[i] * A[i,j]",
            EinsumErrorKind::UnknownOperator,
        ),
        ("y[j] = frobnicate(x[j])", EinsumErrorKind::UnknownOperator),
        // Wrong arity for a known function.
        ("y[j] = relu(x[j], x[j])", EinsumErrorKind::Arity),
        ("e = dot(x[j])", EinsumErrorKind::Arity),
        // Literals are not contraction operands.
        ("y[j] +.*= 2.0 * A[i,j]", EinsumErrorKind::Contraction),
        // Empty and settings-only programs.
        ("", EinsumErrorKind::Syntax),
        ("@ iter=3", EinsumErrorKind::Syntax),
        ("y[j] = x[j] @ iter=0", EinsumErrorKind::Syntax),
    ];
    for (src, kind) in cases {
        let e = einsum::parse(src).expect_err(src);
        assert_eq!(e.kind, *kind, "{src}: {e}");
        assert_spanned(src, &e);
    }
}

#[test]
fn unicode_index_names_are_spanned_rejections() {
    for src in [
        "y[β] +.*= x[α] * A[α,β]",
        "contrib[j] +.*= pr[ι] * L[ι,j]",
        "日本[i] = x[i]",
        "y[i] = x[i] # трейлинг-комментарий\u{1F600}",
    ] {
        match einsum::parse(src) {
            // The comment case: everything after `#` is skipped, so it
            // may legitimately parse.
            Ok(_) => assert!(src.contains('#')),
            Err(e) => {
                assert_eq!(e.kind, EinsumErrorKind::Syntax, "{src}");
                assert_spanned(src, &e);
                assert!(e.message.contains("unexpected character"), "{e}");
            }
        }
    }
}

#[test]
fn megabyte_inputs_terminate_without_panicking() {
    for seed in 0..6 {
        let src = gen_expr::huge(1 << 20, seed);
        assert!(src.len() >= 1 << 20);
        assert_well_behaved(&src);
    }
    // Pathological single-token shapes: deep "nesting" (the grammar is
    // flat, so this exercises the iterative error path, not recursion),
    // one enormous identifier, and an enormous number.
    let brackets = "[".repeat(1 << 20);
    assert_well_behaved(&brackets);
    let ident = "a".repeat(1 << 20);
    assert_well_behaved(&ident);
    let digits = "9".repeat(1 << 20);
    assert_well_behaved(&digits);
}
