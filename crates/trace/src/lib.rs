//! `sparsepipe-trace`: event-level observability for the Sparsepipe
//! simulator.
//!
//! The simulator's inner loops are generic over a [`TraceSink`] and
//! emit typed [`TraceEvent`]s — DRAM transfers with exact byte
//! payloads, buffer inserts/hits/evictions with element coordinates,
//! per-step pipeline timing, and pass boundaries carrying the engine's
//! analytic scaling factors. Three sinks cover the use cases:
//!
//! * [`NullSink`] (the default) — `ENABLED == false`, so instrumented
//!   code monomorphizes to the untraced hot path; untraced runs stay
//!   byte-identical to the pre-instrumentation simulator.
//! * [`MemorySink`] — collects events for tests and the analyzers.
//! * [`JsonlSink`] — streams one JSON line per event for long runs.
//!
//! On top of a recorded stream sit offline analyzers ([`ReuseHistogram`]
//! for the paper's `|r − c|` residency distribution, an
//! [`OccupancyTimeline`], per-pass/per-stage traffic breakdowns) and a
//! [`chrome`] exporter producing Perfetto-loadable JSON. The
//! [`TraceAudit`] replays the stream's DRAM events and checks the byte
//! totals against the engine's reported `TrafficBreakdown` with
//! **bitwise** `f64` equality, making every trace a correctness oracle
//! for the cost model (see `DESIGN.md` §10 for the exactness protocol).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
mod audit;
pub mod chrome;
mod event;
pub mod jsonl;
mod sink;

pub use analyze::{OccupancyTimeline, ReuseHistogram, StageTraffic, TrafficTimeline};
pub use audit::{replay_passes, AuditMismatch, AuditTotals, PassTraffic, TraceAudit};
pub use event::{PipeStage, TraceEvent, TrafficClass, WHOLE_ROW};
pub use sink::{JsonlSink, MemorySink, NullSink, TeeSink, TraceSink};
