//! JSONL (one JSON object per line) encoding of trace events.
//!
//! Hand-rolled on purpose: the encoder is a dozen `write!` calls, needs
//! no derive machinery, and keeps `sparsepipe-trace` dependency-free so
//! it can sit below `sparsepipe-core` in the workspace graph.

use std::fmt::Write as _;

use crate::event::TraceEvent;

/// Formats `f` as a JSON number (shortest round-trip form; non-finite
/// values become `null`, which keeps every line parseable).
fn num(f: f64) -> String {
    if f.is_finite() {
        format!("{f}")
    } else {
        "null".to_string()
    }
}

/// Encodes one event as a single JSON line, terminated by `\n`.
///
/// The `ev` field names the variant; remaining fields mirror the
/// variant's payload. Example:
/// `{"ev":"dram_read","step":3,"class":"csc","addr":64,"bytes":10.5}`.
pub fn line(event: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    match *event {
        TraceEvent::PassBoundary {
            pass,
            repeats,
            steps,
        } => {
            let _ = write!(
                s,
                "{{\"ev\":\"pass\",\"pass\":{pass},\"repeats\":{repeats},\"steps\":{steps}}}"
            );
        }
        TraceEvent::StepBegin { stage, step } => {
            let _ = write!(
                s,
                "{{\"ev\":\"step_begin\",\"stage\":\"{}\",\"step\":{step}}}",
                stage.label()
            );
        }
        TraceEvent::StepEnd {
            step,
            cycles,
            occupancy_bytes,
        } => {
            let _ = write!(
                s,
                "{{\"ev\":\"step_end\",\"step\":{step},\"cycles\":{},\"occupancy_bytes\":{}}}",
                num(cycles),
                num(occupancy_bytes)
            );
        }
        TraceEvent::DramRead {
            addr,
            bytes,
            class,
            step,
        } => {
            let _ = write!(
                s,
                "{{\"ev\":\"dram_read\",\"step\":{step},\"class\":\"{}\",\"addr\":{addr},\"bytes\":{}}}",
                class.label(),
                num(bytes)
            );
        }
        TraceEvent::DramWrite {
            addr,
            bytes,
            class,
            step,
        } => {
            let _ = write!(
                s,
                "{{\"ev\":\"dram_write\",\"step\":{step},\"class\":\"{}\",\"addr\":{addr},\"bytes\":{}}}",
                class.label(),
                num(bytes)
            );
        }
        TraceEvent::BufferInsert {
            row,
            col,
            step,
            refetch,
            bytes,
        } => {
            let _ = write!(
                s,
                "{{\"ev\":\"buf_insert\",\"step\":{step},\"row\":{row},\"col\":{col},\"refetch\":{refetch},\"bytes\":{}}}",
                num(bytes)
            );
        }
        TraceEvent::BufferHit {
            row,
            col,
            stage,
            step,
        } => {
            let _ = write!(
                s,
                "{{\"ev\":\"buf_hit\",\"step\":{step},\"row\":{row},\"col\":{col},\"stage\":\"{}\"}}",
                stage.label()
            );
        }
        TraceEvent::BufferEvict { row, col, step } => {
            let _ = write!(
                s,
                "{{\"ev\":\"buf_evict\",\"step\":{step},\"row\":{row},\"col\":{col}}}"
            );
        }
        TraceEvent::EwiseFire { step, lanes } => {
            let _ = write!(s, "{{\"ev\":\"ewise\",\"step\":{step},\"lanes\":{lanes}}}");
        }
    }
    s.push('\n');
    s
}

/// Writes `events` to `path` as JSONL (one line per event).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_events(path: &std::path::Path, events: &[TraceEvent]) -> std::io::Result<()> {
    use std::io::Write;
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    for ev in events {
        w.write_all(line(ev).as_bytes())?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PipeStage, TrafficClass};

    #[test]
    fn lines_are_single_json_objects() {
        let events = [
            TraceEvent::PassBoundary {
                pass: 1,
                repeats: 10,
                steps: 5,
            },
            TraceEvent::StepBegin {
                stage: PipeStage::Is,
                step: 2,
            },
            TraceEvent::StepEnd {
                step: 2,
                cycles: 3.25,
                occupancy_bytes: 144.0,
            },
            TraceEvent::DramWrite {
                addr: 1 << 36,
                bytes: 8.0,
                class: TrafficClass::Writeback,
                step: 2,
            },
            TraceEvent::BufferInsert {
                row: 7,
                col: 2,
                step: 2,
                refetch: true,
                bytes: 12.0,
            },
            TraceEvent::BufferHit {
                row: 7,
                col: 2,
                stage: PipeStage::Os,
                step: 2,
            },
            TraceEvent::BufferEvict {
                row: 7,
                col: u32::MAX,
                step: 3,
            },
            TraceEvent::EwiseFire { step: 2, lanes: 64 },
        ];
        for ev in &events {
            let l = line(ev);
            assert!(l.ends_with('}') || l.ends_with("}\n"), "line: {l}");
            assert_eq!(l.matches('\n').count(), 1, "one newline per line");
            assert_eq!(l.matches('{').count(), l.matches('}').count());
            assert!(l.starts_with("{\"ev\":\""));
        }
        assert!(line(&events[3]).contains("\"class\":\"writeback\""));
        assert!(line(&events[4]).contains("\"refetch\":true"));
    }

    #[test]
    fn non_finite_bytes_encode_as_null() {
        let l = line(&TraceEvent::StepEnd {
            step: 0,
            cycles: f64::NAN,
            occupancy_bytes: f64::INFINITY,
        });
        assert!(l.contains("\"cycles\":null"));
        assert!(l.contains("\"occupancy_bytes\":null"));
    }
}
