//! Trace sinks: where the simulator's event stream goes.
//!
//! The simulator is generic over [`TraceSink`], and every instrumented
//! inner loop guards event construction with `if S::ENABLED { .. }`.
//! With the default [`NullSink`] that constant is `false`, so the
//! monomorphized hot path contains no tracing code at all — untraced
//! runs stay byte-identical to the pre-instrumentation simulator.

use std::io::Write;

use crate::event::TraceEvent;
use crate::jsonl;

/// A consumer of simulator trace events.
///
/// Implementations must be cheap per call; the simulator may emit an
/// event per matrix element. The trait is deliberately not object-safe
/// (it carries an associated `const`): sinks are threaded through the
/// simulator by monomorphization, never by dynamic dispatch.
pub trait TraceSink {
    /// Whether this sink actually consumes events. Instrumented code
    /// checks this constant before *constructing* events, so a sink
    /// with `ENABLED == false` compiles to the untraced path.
    const ENABLED: bool = true;

    /// Consumes one event.
    fn emit(&mut self, event: TraceEvent);

    /// Flushes any buffered output (no-op by default).
    fn flush_sink(&mut self) {}
}

/// Mutable references forward to the underlying sink, so callers can
/// keep ownership: `request.trace(&mut sink)` leaves `sink` readable
/// after the run.
impl<S: TraceSink> TraceSink for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline(always)]
    fn emit(&mut self, event: TraceEvent) {
        (**self).emit(event);
    }

    fn flush_sink(&mut self) {
        (**self).flush_sink();
    }
}

/// The default sink: discards everything, and — because
/// `ENABLED == false` — makes the instrumented simulator compile to
/// the untraced code path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _event: TraceEvent) {}
}

/// An in-memory sink for tests and offline analysis: collects every
/// event into a `Vec` in emission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the collected events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all collected events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl TraceSink for MemorySink {
    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A streaming sink that encodes each event as one JSON line (JSONL),
/// for long runs whose traces should not live in memory.
///
/// I/O errors cannot surface through [`TraceSink::emit`], so the first
/// error is latched and subsequent writes are skipped; check
/// [`JsonlSink::io_error`] (or [`JsonlSink::finish`]) after the run.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    lines: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer. Callers streaming to a file should hand in a
    /// `BufWriter` (or use [`JsonlSink::create`]).
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// The first I/O error hit while writing, if any.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the writer, or the first error encountered.
    ///
    /// # Errors
    ///
    /// Returns the latched write error, or the flush error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and streams JSONL into it through a
    /// `BufWriter`.
    ///
    /// # Errors
    ///
    /// Returns the error from creating the file.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = jsonl::line(&event);
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush_sink(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Fans each event out to two sinks — e.g. a streaming [`JsonlSink`]
/// for the raw trace plus a [`MemorySink`] feeding the analyzers.
#[derive(Debug, Default)]
pub struct TeeSink<A, B> {
    /// First destination.
    pub a: A,
    /// Second destination.
    pub b: B,
}

impl<A: TraceSink, B: TraceSink> TeeSink<A, B> {
    /// Combines two sinks.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }

    /// Splits the tee back into its parts.
    pub fn into_parts(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if A::ENABLED {
            self.a.emit(event);
        }
        if B::ENABLED {
            self.b.emit(event);
        }
    }

    fn flush_sink(&mut self) {
        self.a.flush_sink();
        self.b.flush_sink();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PipeStage, TrafficClass};

    // Reading ENABLED through a generic fn keeps the assertions below
    // from tripping clippy's constant-assertion lint.
    fn enabled<S: TraceSink>() -> bool {
        S::ENABLED
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PassBoundary {
                pass: 0,
                repeats: 3,
                steps: 2,
            },
            TraceEvent::StepBegin {
                stage: PipeStage::Os,
                step: 0,
            },
            TraceEvent::DramRead {
                addr: 64,
                bytes: 10.5,
                class: TrafficClass::CscDemand,
                step: 0,
            },
            TraceEvent::StepEnd {
                step: 0,
                cycles: 4.0,
                occupancy_bytes: 24.0,
            },
        ]
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!enabled::<NullSink>());
        let mut s = NullSink;
        for ev in sample() {
            s.emit(ev);
        }
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let mut s = MemorySink::new();
        assert!(s.is_empty());
        for ev in sample() {
            s.emit(ev);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.events(), sample().as_slice());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn mut_ref_forwards_and_preserves_enabled() {
        let mut inner = MemorySink::new();
        {
            let mut fwd = &mut inner;
            assert!(enabled::<&mut MemorySink>());
            <&mut MemorySink as TraceSink>::emit(&mut fwd, sample()[0]);
        }
        assert_eq!(inner.len(), 1);
        assert!(!enabled::<&mut NullSink>());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut s = JsonlSink::new(Vec::new());
        for ev in sample() {
            s.emit(ev);
        }
        assert_eq!(s.lines_written(), 4);
        let buf = s.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 4);
        for line in text.lines() {
            assert!(line.starts_with("{\"ev\":\""), "bad line: {line}");
            assert!(line.ends_with('}'), "bad line: {line}");
        }
        assert!(text.contains("\"class\":\"csc\""));
    }

    #[test]
    fn tee_sink_duplicates_events() {
        let mut tee = TeeSink::new(MemorySink::new(), MemorySink::new());
        assert!(enabled::<TeeSink<MemorySink, MemorySink>>());
        assert!(!enabled::<TeeSink<NullSink, NullSink>>());
        for ev in sample() {
            tee.emit(ev);
        }
        let (a, b) = tee.into_parts();
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 4);
    }
}
