//! Offline analyzers over a recorded event stream.
//!
//! All analyzers are pure functions of `&[TraceEvent]` (or any event
//! iterator): record once with a `MemorySink`, then derive as many
//! views as needed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::audit::{replay_passes, PassTraffic};
use crate::event::{PipeStage, TraceEvent, WHOLE_ROW};

/// Histogram of matrix-element reuse distances — the paper's `|r − c|`
/// residency quantity, measured as the step gap between a buffer
/// element's OS-side and IS-side consumptions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReuseHistogram {
    counts: BTreeMap<u32, u64>,
    total: u64,
}

impl ReuseHistogram {
    /// Builds the histogram from `BufferHit` pairs: for each element
    /// coordinate, the distance between its OS hit step and its IS hit
    /// step. Elements consumed by only one stage (or tracked at row
    /// granularity) contribute nothing.
    pub fn from_events<'a, I>(events: I) -> Self
    where
        I: IntoIterator<Item = &'a TraceEvent>,
    {
        let mut pending: BTreeMap<(u32, u32), (Option<u32>, Option<u32>)> = BTreeMap::new();
        let mut hist = ReuseHistogram::default();
        for ev in events {
            if let TraceEvent::BufferHit {
                row,
                col,
                stage,
                step,
            } = *ev
            {
                if col == WHOLE_ROW {
                    continue;
                }
                let entry = pending.entry((row, col)).or_insert((None, None));
                match stage {
                    PipeStage::Os => entry.0 = Some(step),
                    PipeStage::Is => entry.1 = Some(step),
                }
                if let (Some(os), Some(is)) = *entry {
                    hist.record(os.abs_diff(is));
                    pending.remove(&(row, col));
                }
            }
        }
        hist
    }

    /// Adds one observation of `distance` steps.
    pub fn record(&mut self, distance: u32) {
        *self.counts.entry(distance).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of (OS, IS) pairs observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The per-distance counts, ascending by distance.
    pub fn counts(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&d, &c)| (d, c))
    }

    /// The `q`-quantile distance (0.0 ≤ q ≤ 1.0) by cumulative count,
    /// or `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u32> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, ceil'd so that
        // quantile(1.0) is the maximum and quantile(0.0) the minimum.
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&d, &c) in &self.counts {
            seen += c;
            if seen >= target {
                return Some(d);
            }
        }
        self.counts.keys().next_back().copied()
    }

    /// Median reuse distance.
    pub fn median(&self) -> Option<u32> {
        self.quantile(0.5)
    }

    /// 95th-percentile reuse distance.
    pub fn p95(&self) -> Option<u32> {
        self.quantile(0.95)
    }

    /// CSV rendering (`distance,count` with a header), suitable for a
    /// Fig-5-style reuse-distance plot.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("distance,count\n");
        for (&d, &c) in &self.counts {
            let _ = writeln!(out, "{d},{c}");
        }
        out
    }
}

/// Buffer-occupancy timeline: one sample per retired pipeline step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OccupancyTimeline {
    samples: Vec<(u32, f64)>,
}

impl OccupancyTimeline {
    /// Extracts `(step, occupancy_bytes)` samples from `StepEnd` events
    /// in stream order.
    pub fn from_events<'a, I>(events: I) -> Self
    where
        I: IntoIterator<Item = &'a TraceEvent>,
    {
        let samples = events
            .into_iter()
            .filter_map(|ev| match *ev {
                TraceEvent::StepEnd {
                    step,
                    occupancy_bytes,
                    ..
                } => Some((step, occupancy_bytes)),
                _ => None,
            })
            .collect();
        OccupancyTimeline { samples }
    }

    /// The `(step, bytes)` samples in stream order.
    pub fn samples(&self) -> &[(u32, f64)] {
        &self.samples
    }

    /// Peak occupancy over the run (0.0 when empty).
    pub fn peak_bytes(&self) -> f64 {
        self.samples.iter().map(|&(_, b)| b).fold(0.0, f64::max)
    }

    /// Mean occupancy over the samples (0.0 when empty).
    pub fn mean_bytes(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().map(|&(_, b)| b).sum();
        sum / self.samples.len() as f64
    }

    /// CSV rendering (`step,occupancy_bytes` with a header).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("step,occupancy_bytes\n");
        for &(s, b) in &self.samples {
            let _ = writeln!(out, "{s},{b}");
        }
        out
    }
}

/// Per-pass, per-class DRAM traffic breakdown derived from the stream
/// (unscaled per pass, with the analytic `repeats` kept alongside).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficTimeline {
    passes: Vec<PassTraffic>,
}

impl TrafficTimeline {
    /// Splits the stream into per-pass traffic totals.
    pub fn from_events<'a, I>(events: I) -> Self
    where
        I: IntoIterator<Item = &'a TraceEvent>,
    {
        TrafficTimeline {
            passes: replay_passes(events),
        }
    }

    /// Per-pass traffic in stream order.
    pub fn passes(&self) -> &[PassTraffic] {
        &self.passes
    }

    /// CSV rendering: one row per pass with per-class byte columns
    /// (unscaled) and the pass's analytic repeat factor.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "pass,repeats,steps,csc_bytes,csr_eager_bytes,refetch_bytes,vector_bytes,writeback_bytes\n",
        );
        for p in &self.passes {
            let t = p.traffic;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                p.pass,
                p.repeats,
                p.steps,
                t.csc_bytes,
                t.csr_eager_bytes,
                t.refetch_bytes,
                t.vector_bytes,
                t.writeback_bytes
            );
        }
        out
    }
}

/// Per-stage DRAM byte totals (scaled by pass repeats), splitting reads
/// by the stage that demanded them: CSC demand + refetch feed the OS/IS
/// buffer path, eager CSR feeds the prefetcher, vector reads feed the
/// e-wise unit, writebacks drain it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTraffic {
    /// Demand matrix bytes (CSC + refetch), scaled.
    pub demand_bytes: f64,
    /// Eager CSR prefetch bytes, scaled.
    pub prefetch_bytes: f64,
    /// Vector read bytes, scaled.
    pub vector_bytes: f64,
    /// Writeback bytes, scaled.
    pub writeback_bytes: f64,
}

impl StageTraffic {
    /// Aggregates scaled per-stage totals from the stream.
    pub fn from_events<'a, I>(events: I) -> Self
    where
        I: IntoIterator<Item = &'a TraceEvent>,
    {
        let mut out = StageTraffic::default();
        for p in replay_passes(events) {
            let r = p.repeats as f64;
            out.demand_bytes += (p.traffic.csc_bytes + p.traffic.refetch_bytes) * r;
            out.prefetch_bytes += p.traffic.csr_eager_bytes * r;
            out.vector_bytes += p.traffic.vector_bytes * r;
            out.writeback_bytes += p.traffic.writeback_bytes * r;
        }
        out
    }

    /// Sum over all stages.
    pub fn total_bytes(&self) -> f64 {
        self.demand_bytes + self.prefetch_bytes + self.vector_bytes + self.writeback_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TrafficClass;

    fn hit(row: u32, col: u32, stage: PipeStage, step: u32) -> TraceEvent {
        TraceEvent::BufferHit {
            row,
            col,
            stage,
            step,
        }
    }

    #[test]
    fn reuse_histogram_pairs_os_and_is_hits() {
        let events = vec![
            hit(5, 2, PipeStage::Os, 2),
            hit(9, 2, PipeStage::Os, 2),
            hit(5, 2, PipeStage::Is, 5),
            hit(9, 2, PipeStage::Is, 9),
            // IS before OS (deferred consumption) still pairs.
            hit(1, 3, PipeStage::Is, 3),
            hit(1, 3, PipeStage::Os, 3),
            // Row-granular hit contributes nothing.
            hit(4, WHOLE_ROW, PipeStage::Is, 4),
            // Unpaired OS hit contributes nothing.
            hit(8, 0, PipeStage::Os, 0),
        ];
        let h = ReuseHistogram::from_events(&events);
        assert_eq!(h.total(), 3);
        let counts: Vec<_> = h.counts().collect();
        assert_eq!(counts, vec![(0, 1), (3, 1), (7, 1)]);
        assert_eq!(h.median(), Some(3));
        assert_eq!(h.p95(), Some(7));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(7));
        let csv = h.to_csv();
        assert!(csv.starts_with("distance,count\n"));
        assert!(csv.contains("7,1\n"));
    }

    #[test]
    fn reuse_histogram_empty() {
        let h = ReuseHistogram::from_events(std::iter::empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.median(), None);
        assert_eq!(h.p95(), None);
    }

    #[test]
    fn occupancy_timeline_tracks_step_ends() {
        let events = vec![
            TraceEvent::StepEnd {
                step: 0,
                cycles: 1.0,
                occupancy_bytes: 24.0,
            },
            TraceEvent::StepEnd {
                step: 1,
                cycles: 1.0,
                occupancy_bytes: 48.0,
            },
            TraceEvent::StepEnd {
                step: 2,
                cycles: 1.0,
                occupancy_bytes: 12.0,
            },
        ];
        let t = OccupancyTimeline::from_events(&events);
        assert_eq!(t.samples().len(), 3);
        assert_eq!(t.peak_bytes(), 48.0);
        assert_eq!(t.mean_bytes(), 28.0);
        assert!(t.to_csv().contains("1,48\n"));
        let empty = OccupancyTimeline::from_events(std::iter::empty());
        assert_eq!(empty.peak_bytes(), 0.0);
        assert_eq!(empty.mean_bytes(), 0.0);
    }

    #[test]
    fn stage_traffic_scales_by_repeats() {
        let events = vec![
            TraceEvent::PassBoundary {
                pass: 0,
                repeats: 4,
                steps: 1,
            },
            TraceEvent::DramRead {
                addr: 0,
                bytes: 10.0,
                class: TrafficClass::CscDemand,
                step: 0,
            },
            TraceEvent::DramRead {
                addr: 0,
                bytes: 2.0,
                class: TrafficClass::Refetch,
                step: 0,
            },
            TraceEvent::DramRead {
                addr: 0,
                bytes: 5.0,
                class: TrafficClass::CsrEager,
                step: 0,
            },
            TraceEvent::DramWrite {
                addr: 0,
                bytes: 3.0,
                class: TrafficClass::Writeback,
                step: 0,
            },
        ];
        let s = StageTraffic::from_events(&events);
        assert_eq!(s.demand_bytes, 48.0);
        assert_eq!(s.prefetch_bytes, 20.0);
        assert_eq!(s.writeback_bytes, 12.0);
        assert_eq!(s.total_bytes(), 80.0);
        let tl = TrafficTimeline::from_events(&events);
        assert_eq!(tl.passes().len(), 1);
        assert!(tl.to_csv().contains("0,4,1,10,5,2,0,3\n"));
    }
}
