//! Chrome-trace (Trace Event Format) export.
//!
//! Produces a JSON object loadable by `chrome://tracing` and Perfetto
//! (`ui.perfetto.dev` → "Open trace file"). Pipeline steps become `X`
//! (complete) duration events on one track per pass; buffer occupancy
//! and per-class DRAM bytes become `C` (counter) tracks sampled at
//! step granularity; pass boundaries become `i` (instant) markers.
//! Timestamps are modeled cycles reported as microseconds — absolute
//! wall time is meaningless for an architectural model, relative
//! durations are what the viewer is for.

use std::fmt::Write as _;

use crate::event::{TraceEvent, TrafficClass};

fn num(f: f64) -> String {
    if f.is_finite() {
        format!("{f}")
    } else {
        "0".to_string()
    }
}

/// Renders an event stream as a Chrome-trace JSON document.
///
/// Per-step DRAM aggregate events and `StepEnd` events drive the
/// export; element-granular buffer events are summarized into the
/// occupancy counter only (Perfetto chokes on millions of instants).
pub fn export(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut ts = 0.0f64; // cumulative modeled cycles
    let mut pass = 0u32;
    let mut first = true;
    // Bytes accumulated since the last StepEnd, per audited class.
    let mut step_bytes = [0.0f64; 5];

    let push = |out: &mut String, first: &mut bool, line: &str| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(line);
    };

    for ev in events {
        match *ev {
            TraceEvent::PassBoundary {
                pass: p, repeats, ..
            } => {
                pass = p;
                let line = format!(
                    "{{\"name\":\"pass {p} (×{repeats})\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"g\"}}",
                    num(ts)
                );
                push(&mut out, &mut first, &line);
            }
            TraceEvent::DramRead { bytes, class, .. }
            | TraceEvent::DramWrite { bytes, class, .. } => {
                let idx = match class {
                    TrafficClass::CscDemand => 0,
                    TrafficClass::CsrEager => 1,
                    TrafficClass::Refetch => 2,
                    TrafficClass::VectorRead => 3,
                    TrafficClass::Writeback => 4,
                    TrafficClass::BankLevel => continue,
                };
                step_bytes[idx] += bytes;
            }
            TraceEvent::StepEnd {
                step,
                cycles,
                occupancy_bytes,
            } => {
                let line = format!(
                    "{{\"name\":\"step {step}\",\"cat\":\"pipeline\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{pass},\"args\":{{\"pass\":{pass},\"step\":{step}}}}}",
                    num(ts),
                    num(cycles)
                );
                push(&mut out, &mut first, &line);
                ts += cycles.max(0.0);
                let occ = format!(
                    "{{\"name\":\"buffer_occupancy\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"bytes\":{}}}}}",
                    num(ts),
                    num(occupancy_bytes)
                );
                push(&mut out, &mut first, &occ);
                let mut dram = format!(
                    "{{\"name\":\"dram_bytes\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{",
                    num(ts)
                );
                let labels = ["csc", "csr_eager", "refetch", "vector", "writeback"];
                for (i, label) in labels.iter().enumerate() {
                    if i > 0 {
                        dram.push(',');
                    }
                    let _ = write!(dram, "\"{label}\":{}", num(step_bytes[i]));
                }
                dram.push_str("}}");
                push(&mut out, &mut first, &dram);
                step_bytes = [0.0; 5];
            }
            _ => {}
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Writes the Chrome-trace JSON for `events` to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write(path: &std::path::Path, events: &[TraceEvent]) -> std::io::Result<()> {
    std::fs::write(path, export(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TrafficClass;

    #[test]
    fn export_emits_steps_counters_and_pass_markers() {
        let events = vec![
            TraceEvent::PassBoundary {
                pass: 0,
                repeats: 5,
                steps: 2,
            },
            TraceEvent::DramRead {
                addr: 0,
                bytes: 21.0,
                class: TrafficClass::CscDemand,
                step: 0,
            },
            TraceEvent::StepEnd {
                step: 0,
                cycles: 4.0,
                occupancy_bytes: 24.0,
            },
            TraceEvent::StepEnd {
                step: 1,
                cycles: 2.5,
                occupancy_bytes: 12.0,
            },
        ];
        let json = export(&events);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"pass 0 (\u{d7}5)\"") || json.contains("pass 0"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"csc\":21"));
        // Second step starts after the first step's 4 cycles.
        assert!(json.contains("\"ts\":4,\"dur\":2.5"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn export_empty_stream_is_valid() {
        let json = export(&[]);
        assert!(json.contains("\"traceEvents\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
