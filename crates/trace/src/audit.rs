//! `TraceAudit`: replay the event stream and check its byte totals
//! against the engine's `TrafficBreakdown` **exactly** (bitwise `f64`
//! equality, not within-epsilon).
//!
//! # Why exact equality is achievable
//!
//! The engine accumulates traffic as a specific sequence of `f64`
//! operations: per-step `+=` of category subtotals inside a pass, one
//! `subtotal * repeats` multiply when a pass is analytically scaled,
//! and a final `+=` per pass in run order. The instrumentation emits
//! events carrying the *same* `f64` increments at the *same*
//! granularity, and the replay below performs the *same* operations in
//! the *same* order — so the result is not merely close, it is the
//! identical bit pattern. Closed-form (analytic) sweeps emit their full
//! computed totals in a single event for the same reason: re-deriving
//! them from per-iteration values would change the operation order and
//! break bitwise equality.

use std::fmt;

use crate::event::{TraceEvent, TrafficClass};

/// DRAM byte totals by category — the audit-side mirror of the
/// engine's `TrafficBreakdown` (which lives above this crate in the
/// dependency graph; `sparsepipe-core` provides the conversion).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AuditTotals {
    /// Demand-fetched CSC matrix bytes.
    pub csc_bytes: f64,
    /// Eagerly prefetched CSR matrix bytes.
    pub csr_eager_bytes: f64,
    /// Re-fetched (previously evicted) matrix bytes.
    pub refetch_bytes: f64,
    /// Dense vector read bytes.
    pub vector_bytes: f64,
    /// Dense vector writeback bytes.
    pub writeback_bytes: f64,
}

impl AuditTotals {
    /// Sum over all categories.
    pub fn total_bytes(&self) -> f64 {
        self.csc_bytes
            + self.csr_eager_bytes
            + self.refetch_bytes
            + self.vector_bytes
            + self.writeback_bytes
    }

    fn add_class(&mut self, class: TrafficClass, bytes: f64) {
        match class {
            TrafficClass::CscDemand => self.csc_bytes += bytes,
            TrafficClass::CsrEager => self.csr_eager_bytes += bytes,
            TrafficClass::Refetch => self.refetch_bytes += bytes,
            TrafficClass::VectorRead => self.vector_bytes += bytes,
            TrafficClass::Writeback => self.writeback_bytes += bytes,
            TrafficClass::BankLevel => {}
        }
    }

    fn add_scaled(&mut self, other: &AuditTotals, repeats: f64) {
        self.csc_bytes += other.csc_bytes * repeats;
        self.csr_eager_bytes += other.csr_eager_bytes * repeats;
        self.refetch_bytes += other.refetch_bytes * repeats;
        self.vector_bytes += other.vector_bytes * repeats;
        self.writeback_bytes += other.writeback_bytes * repeats;
    }
}

/// One pass's replayed traffic, before analytic scaling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassTraffic {
    /// Pass ordinal from the [`TraceEvent::PassBoundary`] event (or 0
    /// for streams that never emitted a boundary).
    pub pass: u32,
    /// Analytic scaling factor for this pass.
    pub repeats: u64,
    /// Pipeline steps in this pass.
    pub steps: u32,
    /// Unscaled per-category byte totals accumulated in stream order.
    pub traffic: AuditTotals,
}

/// Splits an event stream into per-pass traffic accumulations,
/// preserving stream order. Events before the first
/// [`TraceEvent::PassBoundary`] belong to an implicit pass 0 with
/// `repeats == 1`. [`TrafficClass::BankLevel`] events are ignored.
pub fn replay_passes<'a, I>(events: I) -> Vec<PassTraffic>
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let mut passes: Vec<PassTraffic> = Vec::new();
    let mut current = PassTraffic {
        pass: 0,
        repeats: 1,
        steps: 0,
        traffic: AuditTotals::default(),
    };
    let mut saw_any = false;
    for ev in events {
        match *ev {
            TraceEvent::PassBoundary {
                pass,
                repeats,
                steps,
            } => {
                if saw_any {
                    passes.push(current);
                }
                current = PassTraffic {
                    pass,
                    repeats,
                    steps,
                    traffic: AuditTotals::default(),
                };
                saw_any = true;
            }
            TraceEvent::DramRead { bytes, class, .. }
            | TraceEvent::DramWrite { bytes, class, .. } => {
                current.traffic.add_class(class, bytes);
                saw_any = true;
            }
            _ => {}
        }
    }
    if saw_any {
        passes.push(current);
    }
    passes
}

/// The result of replaying a trace stream: per-pass traffic plus the
/// analytically scaled grand totals, ready to compare against the
/// engine's report.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAudit {
    /// Per-pass unscaled traffic, in stream order.
    pub passes: Vec<PassTraffic>,
    /// Scaled totals: `sum over passes of (pass traffic × repeats)`,
    /// folded in pass order — the same arithmetic the engine performs.
    pub replayed: AuditTotals,
}

impl TraceAudit {
    /// Replays an event stream into audit totals.
    pub fn replay<'a, I>(events: I) -> TraceAudit
    where
        I: IntoIterator<Item = &'a TraceEvent>,
    {
        let passes = replay_passes(events);
        let mut replayed = AuditTotals::default();
        for p in &passes {
            // `repeats as f64` and the multiply-then-add below mirror the
            // engine's `accumulate_pass` exactly; `× 1.0` is a bitwise
            // no-op for finite values, so unscaled passes survive intact.
            replayed.add_scaled(&p.traffic, p.repeats as f64);
        }
        TraceAudit { passes, replayed }
    }

    /// Checks the replayed totals against the engine's reported totals,
    /// field by field, with **exact** (bitwise) `f64` equality.
    ///
    /// # Errors
    ///
    /// Returns the first mismatching field with both values.
    pub fn check(&self, expected: &AuditTotals) -> Result<(), AuditMismatch> {
        let fields: [(&'static str, f64, f64); 5] = [
            ("csc_bytes", self.replayed.csc_bytes, expected.csc_bytes),
            (
                "csr_eager_bytes",
                self.replayed.csr_eager_bytes,
                expected.csr_eager_bytes,
            ),
            (
                "refetch_bytes",
                self.replayed.refetch_bytes,
                expected.refetch_bytes,
            ),
            (
                "vector_bytes",
                self.replayed.vector_bytes,
                expected.vector_bytes,
            ),
            (
                "writeback_bytes",
                self.replayed.writeback_bytes,
                expected.writeback_bytes,
            ),
        ];
        for (field, replayed, expected) in fields {
            if replayed.to_bits() != expected.to_bits() {
                return Err(AuditMismatch {
                    field,
                    replayed,
                    expected,
                });
            }
        }
        Ok(())
    }
}

/// A field of the replayed totals differed from the engine's report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditMismatch {
    /// Name of the mismatching `TrafficBreakdown` field.
    pub field: &'static str,
    /// Value reconstructed from the trace.
    pub replayed: f64,
    /// Value the engine reported.
    pub expected: f64,
}

impl fmt::Display for AuditMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace audit mismatch on {}: replayed {:.6} ({}) != reported {:.6} ({})",
            self.field,
            self.replayed,
            self.replayed.to_bits(),
            self.expected,
            self.expected.to_bits()
        )
    }
}

impl std::error::Error for AuditMismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(class: TrafficClass, bytes: f64, step: u32) -> TraceEvent {
        TraceEvent::DramRead {
            addr: 0,
            bytes,
            class,
            step,
        }
    }

    #[test]
    fn replay_scales_by_repeats_exactly() {
        let events = vec![
            TraceEvent::PassBoundary {
                pass: 0,
                repeats: 7,
                steps: 2,
            },
            read(TrafficClass::CscDemand, 10.5, 0),
            read(TrafficClass::CscDemand, 21.0, 1),
            TraceEvent::DramWrite {
                addr: 0,
                bytes: 8.0,
                class: TrafficClass::Writeback,
                step: 1,
            },
            TraceEvent::PassBoundary {
                pass: 1,
                repeats: 1,
                steps: 1,
            },
            read(TrafficClass::VectorRead, 3.25, 0),
        ];
        let audit = TraceAudit::replay(&events);
        assert_eq!(audit.passes.len(), 2);
        assert_eq!(audit.passes[0].repeats, 7);
        // Mirror the engine arithmetic explicitly.
        let expected = AuditTotals {
            csc_bytes: (10.5 + 21.0) * 7.0,
            writeback_bytes: 8.0 * 7.0,
            vector_bytes: 3.25 * 1.0,
            ..AuditTotals::default()
        };
        audit.check(&expected).unwrap();
        assert_eq!(audit.replayed.total_bytes(), expected.total_bytes());
    }

    #[test]
    fn implicit_pass_without_boundary() {
        let events = vec![read(TrafficClass::Refetch, 10.5, 0)];
        let audit = TraceAudit::replay(&events);
        assert_eq!(audit.passes.len(), 1);
        assert_eq!(audit.passes[0].repeats, 1);
        assert_eq!(audit.replayed.refetch_bytes, 10.5);
    }

    #[test]
    fn bank_level_events_are_ignored() {
        let events = vec![
            read(TrafficClass::CscDemand, 64.0, 0),
            read(TrafficClass::BankLevel, 64.0, 0),
        ];
        let audit = TraceAudit::replay(&events);
        assert_eq!(audit.replayed.csc_bytes, 64.0);
        assert_eq!(audit.replayed.total_bytes(), 64.0);
    }

    #[test]
    fn check_reports_first_mismatching_field() {
        let events = vec![read(TrafficClass::CscDemand, 64.0, 0)];
        let audit = TraceAudit::replay(&events);
        let expected = AuditTotals {
            csc_bytes: 64.0 + f64::EPSILON * 64.0,
            ..AuditTotals::default()
        };
        let err = audit.check(&expected).unwrap_err();
        assert_eq!(err.field, "csc_bytes");
        assert!(err.to_string().contains("csc_bytes"));
    }

    #[test]
    fn empty_stream_replays_to_zero() {
        let audit = TraceAudit::replay(std::iter::empty());
        assert!(audit.passes.is_empty());
        audit.check(&AuditTotals::default()).unwrap();
    }
}
