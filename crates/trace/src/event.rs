//! The typed trace event vocabulary emitted by the simulator.

/// Which pipeline stage an event is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeStage {
    /// The output-stationary (column-sweep) MAC stage.
    Os,
    /// The input-stationary (row-consume) MAC stage.
    Is,
}

impl PipeStage {
    /// Short lowercase label used by the JSONL and CSV encoders.
    pub fn label(self) -> &'static str {
        match self {
            PipeStage::Os => "os",
            PipeStage::Is => "is",
        }
    }
}

/// Which traffic category a DRAM event belongs to.
///
/// The first five variants mirror the fields of the engine's
/// `TrafficBreakdown` one-to-one; replaying their byte payloads is how
/// [`crate::TraceAudit`] reconstructs the report totals. [`BankLevel`]
/// events are a *re-timing* of bytes already counted by an aggregate
/// event (they come from the detailed DRAM-bank model) and are ignored
/// by the audit.
///
/// [`BankLevel`]: TrafficClass::BankLevel
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Demand-fetched CSC matrix bytes (includes analytic matrix sweeps).
    CscDemand,
    /// Eagerly prefetched CSR matrix bytes.
    CsrEager,
    /// Matrix bytes re-fetched after a capacity eviction.
    Refetch,
    /// Dense vector operand reads.
    VectorRead,
    /// Dense vector result writebacks.
    Writeback,
    /// Per-access bank-level traffic from the detailed memory model;
    /// excluded from audit totals (the bytes are already counted by the
    /// per-step aggregate events).
    BankLevel,
}

impl TrafficClass {
    /// Short lowercase label used by the JSONL and CSV encoders.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::CscDemand => "csc",
            TrafficClass::CsrEager => "csr_eager",
            TrafficClass::Refetch => "refetch",
            TrafficClass::VectorRead => "vector",
            TrafficClass::Writeback => "writeback",
            TrafficClass::BankLevel => "bank",
        }
    }
}

/// Sentinel column for buffer events that apply to a whole row (the
/// dual-buffer model evicts and consumes at row granularity).
pub const WHOLE_ROW: u32 = u32::MAX;

/// One event in the simulator's trace stream.
///
/// Events are plain `Copy` values; producing one costs a handful of
/// moves, and with [`crate::NullSink`] the construction itself is
/// compiled out (`TraceSink::ENABLED` is `false`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A matrix sweep (pass) begins. `repeats` is the analytic scaling
    /// factor the engine applies to this pass's traffic: an executed
    /// OEI pass that stands in for `k` identical sweeps carries
    /// `repeats == k`; analytic (closed-form) sweeps carry `repeats == 1`
    /// with their totals folded into the event payloads.
    PassBoundary {
        /// Ordinal of this pass within the run (0-based).
        pass: u32,
        /// How many modeled sweeps this pass's traffic is multiplied by.
        repeats: u64,
        /// Pipeline steps in this pass (1 for analytic sweeps).
        steps: u32,
    },
    /// A pipeline stage starts its work for `step`.
    StepBegin {
        /// Stage that begins.
        stage: PipeStage,
        /// Pipeline step index within the current pass.
        step: u32,
    },
    /// A pipeline step retires: its critical-path cycle cost and the
    /// buffer occupancy after capacity enforcement.
    StepEnd {
        /// Pipeline step index within the current pass.
        step: u32,
        /// Cycles charged to this step (max over stage costs).
        cycles: f64,
        /// On-chip buffer occupancy in bytes after this step.
        occupancy_bytes: f64,
    },
    /// Bytes read from DRAM. `bytes` carries the *exact* `f64` increment
    /// the engine adds to its traffic accumulator, so audit replay is
    /// bitwise-faithful.
    DramRead {
        /// Modeled byte address of the transfer (stream cursor).
        addr: u64,
        /// Bytes moved (exact engine increment).
        bytes: f64,
        /// Traffic category.
        class: TrafficClass,
        /// Pipeline step the transfer is charged to.
        step: u32,
    },
    /// Bytes written to DRAM (see [`TraceEvent::DramRead`] for payload
    /// semantics).
    DramWrite {
        /// Modeled byte address of the transfer (stream cursor).
        addr: u64,
        /// Bytes moved (exact engine increment).
        bytes: f64,
        /// Traffic category.
        class: TrafficClass,
        /// Pipeline step the transfer is charged to.
        step: u32,
    },
    /// A matrix element enters the on-chip buffer.
    BufferInsert {
        /// Row coordinate of the element.
        row: u32,
        /// Column coordinate of the element ([`WHOLE_ROW`] when the
        /// model tracks rows, not elements).
        col: u32,
        /// Pipeline step of the insert.
        step: u32,
        /// `true` when this insert re-fetches a previously evicted
        /// element.
        refetch: bool,
        /// Buffer bytes the element occupies.
        bytes: f64,
    },
    /// A stage consumed a resident matrix element from the buffer.
    BufferHit {
        /// Row coordinate of the element.
        row: u32,
        /// Column coordinate of the element ([`WHOLE_ROW`] for
        /// row-granular models).
        col: u32,
        /// Stage that consumed it.
        stage: PipeStage,
        /// Pipeline step of the consumption.
        step: u32,
    },
    /// A matrix element (or whole row) was evicted to make room.
    BufferEvict {
        /// Row coordinate of the victim.
        row: u32,
        /// Column coordinate ([`WHOLE_ROW`] for row-granular evictions).
        col: u32,
        /// Pipeline step of the eviction.
        step: u32,
    },
    /// The element-wise unit processed a batch of vector lanes.
    EwiseFire {
        /// Pipeline step index.
        step: u32,
        /// Vector lanes processed this step.
        lanes: u64,
    },
}

impl TraceEvent {
    /// The pipeline step this event is attributed to, if any.
    pub fn step(&self) -> Option<u32> {
        match *self {
            TraceEvent::PassBoundary { .. } => None,
            TraceEvent::StepBegin { step, .. }
            | TraceEvent::StepEnd { step, .. }
            | TraceEvent::DramRead { step, .. }
            | TraceEvent::DramWrite { step, .. }
            | TraceEvent::BufferInsert { step, .. }
            | TraceEvent::BufferHit { step, .. }
            | TraceEvent::BufferEvict { step, .. }
            | TraceEvent::EwiseFire { step, .. } => Some(step),
        }
    }
}
