//! End-to-end audit: for every registered application, a traced run's
//! replayed event stream must reproduce the simulator's traffic report
//! with bitwise `f64` equality (`DESIGN.md` §10). A traced
//! `EvalRequest` performs the audit internally and fails with
//! `BenchError::Trace` on any mismatch, so this test sweeping the full
//! registry is the acceptance check that the exactness protocol holds on
//! every scheduling path an app can take.

use sparsepipe_bench::datasets::DatasetSpec;
use sparsepipe_bench::sweep::EvalRequest;
use sparsepipe_core::{Preprocessing, ReorderKind, SimRequest, SparsepipeConfig};
use sparsepipe_tensor::MatrixId;
use sparsepipe_trace::{MemorySink, TraceAudit};

#[test]
fn every_registry_app_audits_exactly() {
    let dataset = DatasetSpec::new(MatrixId::Gy, 256).load().unwrap();
    let apps = sparsepipe_apps::registry::shared();
    assert_eq!(
        apps.len(),
        15,
        "registry should hold the paper's 11 apps plus the mxm family"
    );
    for app in apps.iter() {
        let outcome = EvalRequest::new(app, &dataset, 256)
            .trace(MemorySink::new())
            .run()
            .unwrap_or_else(|e| panic!("{} failed traced evaluation: {e}", app.name));
        let sink = outcome.trace.expect("traced request returns its sink");
        assert!(
            !sink.events().is_empty(),
            "{} produced an empty trace",
            app.name
        );
        assert!(outcome.evaluation.entry.sim.total_cycles > 0);
    }
}

#[test]
fn odd_iteration_tail_audits_exactly() {
    // Odd iteration counts leave an unfused analytic tail pass; its
    // closed-form traffic must be emitted (and replayed) exactly too.
    let dataset = DatasetSpec::new(MatrixId::Bu, 256).load().unwrap();
    let app = sparsepipe_apps::registry::by_name("pr").unwrap();
    let program = app.compile().unwrap();
    let cfg = SparsepipeConfig::iso_gpu()
        .with_buffer(dataset.buffer_bytes())
        .with_preprocessing(Preprocessing {
            blocked: true,
            reorder: ReorderKind::None,
        });
    for iters in [1usize, 7, 9] {
        let mut sink = MemorySink::new();
        let outcome = SimRequest::new(&program, &dataset.reordered)
            .iterations(iters)
            .config(cfg)
            .trace(&mut sink)
            .run()
            .unwrap();
        TraceAudit::replay(sink.events())
            .check(&outcome.report.traffic.audit_totals())
            .unwrap_or_else(|e| panic!("audit mismatch at iterations={iters}: {e}"));
    }
}
