//! Differential conformance suite for the sparse-einsum front door.
//!
//! Every expression in the committed corpus (`crates/bench/corpus.ses`)
//! is compiled through the front door and executed two independent ways,
//! which must agree **bitwise**:
//!
//! 1. The scalar reference interpreter ([`sparsepipe_frontend::interp`])
//!    run twice — the oracle must be deterministic to the bit.
//! 2. The engine kernels the simulator models — the fused OEI pass for
//!    `vxm`/`mxv`/`SpMM` operands and the [`MxmRequest`] SpGEMM engine
//!    for self-product `mxm`s — each checked against the corresponding
//!    interpreter operator at scale `n = 256`.
//!
//! On top of the per-operator checks, the corpus lines that mirror
//! registry applications (`pr`, `gcnw`) are swapped into the hand-built
//! [`StaApp`]s graph-for-graph and pushed through the full
//! [`EvalRequest`] pipeline: the resulting [`Entry`] must be
//! byte-identical (via `PartialEq` *and* its serialized JSON) to the
//! registry app's. Host wall-clock telemetry is excluded — it is the
//! one legitimately nondeterministic field.
//!
//! [`Entry`]: sparsepipe_bench::sweep::Entry

use sparsepipe_apps::{registry, StaApp};
use sparsepipe_bench::datasets::DatasetSpec;
use sparsepipe_bench::einsum_corpus;
use sparsepipe_bench::sweep::EvalRequest;
use sparsepipe_core::{oei, MatrixArena, MxmRequest, SparsepipeConfig};
use sparsepipe_frontend::einsum;
use sparsepipe_frontend::interp::{self, Bindings, Value};
use sparsepipe_frontend::{DataflowGraph, OpKind, TensorId, TensorRole};
use sparsepipe_semiring::SemiringOp;
use sparsepipe_tensor::{CooMatrix, CscMatrix, DenseVector, MatrixId};
use sparsepipe_testutil::corpus;

/// Conformance scale from the issue: a 256-row power-law input.
const N: u32 = 256;

fn dataset_matrix() -> CooMatrix {
    corpus::power_law(N, 2048, 1.2, 0.4, 11)
}

/// Flattens a runtime value to comparable bit patterns (structure
/// included, so a moved coordinate can never alias an equal value).
fn value_bits(v: &Value) -> Vec<u64> {
    match v {
        Value::Scalar(s) => vec![s.to_bits()],
        Value::Vector(x) => x.iter().map(|v| v.to_bits()).collect(),
        Value::Dense(d) => d.as_slice().iter().map(|v| v.to_bits()).collect(),
        Value::Sparse(m) => m
            .iter()
            .flat_map(|(r, c, v)| [u64::from(r), u64::from(c), v.to_bits()])
            .collect(),
    }
}

fn vec_bits(x: &DenseVector) -> Vec<u64> {
    x.iter().map(|v| v.to_bits()).collect()
}

/// Resolves an operand's runtime value the way the interpreter saw it
/// during the first iteration: produced tensors from the interpreter's
/// output, inputs and constants from the original bindings (the
/// interpreter's returned bindings are *post-carry*, so carried inputs
/// already hold next-iteration values there).
fn value_of<'a>(
    graph: &DataflowGraph,
    out1: &'a Bindings,
    bindings: &'a Bindings,
    id: TensorId,
) -> &'a Value {
    let node = graph.tensor(id);
    let env = match node.role {
        TensorRole::Produced => out1,
        TensorRole::Input | TensorRole::Constant => bindings,
    };
    env.get(&node.name)
        .unwrap_or_else(|| panic!("tensor {} has no bound value", node.name))
}

fn sparse_of<'a>(
    graph: &DataflowGraph,
    out1: &'a Bindings,
    bindings: &'a Bindings,
    id: TensorId,
) -> &'a CscMatrix {
    match value_of(graph, out1, bindings, id) {
        Value::Sparse(m) => m,
        other => panic!("expected a sparse matrix, got {other:?}"),
    }
}

fn vector_of<'a>(
    graph: &DataflowGraph,
    out1: &'a Bindings,
    bindings: &'a Bindings,
    id: TensorId,
) -> &'a DenseVector {
    value_of(graph, out1, bindings, id)
        .as_vector()
        .expect("expected a vector operand")
}

/// `y1` of a fused OEI pass with an identity e-wise stage is exactly the
/// OS-core `vxm` the simulator models.
fn engine_vxm(m: &CscMatrix, x: &DenseVector, sr: SemiringOp) -> DenseVector {
    oei::fused_pass(m, &m.to_csr(), x, |_, v| v, sr, sr)
        .expect("corpus operands are square")
        .y1
}

/// The corpus pins every expression to parse, lower, and interpret, and
/// pins the interpreter oracle itself to be bitwise deterministic across
/// runs at the expression's full iteration count.
#[test]
fn corpus_interprets_deterministically_at_scale_256() {
    let matrix = dataset_matrix();
    for e in einsum_corpus::bundled() {
        let lowered =
            einsum::compile_expression(&e.source).unwrap_or_else(|err| panic!("{}: {err}", e.name));
        let bindings = einsum::bindings_for(&lowered.graph, &matrix, lowered.feature_dim);
        let a = interp::run(&lowered.graph, &bindings, lowered.iterations)
            .unwrap_or_else(|err| panic!("{}: {err}", e.name));
        let b = interp::run(&lowered.graph, &bindings, lowered.iterations)
            .unwrap_or_else(|err| panic!("{}: {err}", e.name));
        let mut names: Vec<&String> = a.keys().collect();
        names.sort();
        assert_eq!(names.len(), b.len(), "{}: binding sets differ", e.name);
        for name in names {
            assert_eq!(
                value_bits(&a[name]),
                value_bits(&b[name]),
                "{}: tensor {} is not bitwise deterministic",
                e.name,
                name
            );
        }
    }
}

/// Every matrix-touching operator of every corpus expression, replayed
/// on the engine-side kernel the simulator charges for it, agrees
/// bitwise with the interpreter oracle.
#[test]
fn engine_kernels_match_the_interpreter_bitwise() {
    let matrix = dataset_matrix();
    let cfg = SparsepipeConfig::iso_gpu();
    let (mut vxm, mut mxv, mut spmm, mut mxm) = (0usize, 0usize, 0usize, 0usize);

    for e in einsum_corpus::bundled() {
        let lowered =
            einsum::compile_expression(&e.source).unwrap_or_else(|err| panic!("{}: {err}", e.name));
        let graph = &lowered.graph;
        let bindings = einsum::bindings_for(graph, &matrix, lowered.feature_dim);
        // One iteration: per-op engine checks compare against exactly the
        // values each op consumed, before any carry rebinds the inputs.
        let out1 =
            interp::run(graph, &bindings, 1).unwrap_or_else(|err| panic!("{}: {err}", e.name));

        for (_, op) in graph.ops() {
            let out_name = &graph.tensor(op.output).name;
            let ctx = |what: &str| format!("{}: {what} into {out_name}", e.name);
            match op.kind {
                OpKind::Vxm { semiring } => {
                    let x = vector_of(graph, &out1, &bindings, op.inputs[0]);
                    let m = sparse_of(graph, &out1, &bindings, op.inputs[1]);
                    let eng = engine_vxm(m, x, semiring);
                    let oracle = out1[out_name].as_vector().expect("vxm output");
                    assert_eq!(vec_bits(&eng), vec_bits(oracle), "{}", ctx("vxm"));
                    vxm += 1;
                }
                OpKind::Mxv { semiring } => {
                    // The engine runs mxv as vxm over the transpose; with
                    // a commutative multiply (all corpus mxv semirings)
                    // the per-row accumulation order is identical, so the
                    // result must still be bitwise equal.
                    let x = vector_of(graph, &out1, &bindings, op.inputs[0]);
                    let m = sparse_of(graph, &out1, &bindings, op.inputs[1]);
                    let entries: Vec<(u32, u32, f64)> =
                        m.iter().map(|(r, c, v)| (c, r, v)).collect();
                    let mt = CooMatrix::from_entries(m.ncols(), m.nrows(), entries)
                        .expect("transposed coordinates stay in range")
                        .to_csc();
                    let eng = engine_vxm(&mt, x, semiring);
                    let oracle = out1[out_name].as_vector().expect("mxv output");
                    assert_eq!(vec_bits(&eng), vec_bits(oracle), "{}", ctx("mxv"));
                    mxv += 1;
                }
                OpKind::SpMM { semiring } => {
                    let h = value_of(graph, &out1, &bindings, op.inputs[0])
                        .as_dense()
                        .expect("spmm activations");
                    let m = sparse_of(graph, &out1, &bindings, op.inputs[1]);
                    let oracle = out1[out_name].as_dense().expect("spmm output");
                    for j in 0..h.ncols() {
                        let col: DenseVector = (0..h.nrows()).map(|r| h.get(r, j)).collect();
                        let eng = engine_vxm(m, &col, semiring);
                        let want: Vec<u64> = (0..oracle.nrows())
                            .map(|r| oracle.get(r, j).to_bits())
                            .collect();
                        assert_eq!(vec_bits(&eng), want, "{} (feature column {j})", ctx("spmm"));
                    }
                    spmm += 1;
                }
                OpKind::Mxm { semiring } if op.inputs[0] == op.inputs[1] => {
                    // Self-products (A·A) run on the SpGEMM engine from a
                    // single arena — the path the simulator charges.
                    let m = sparse_of(graph, &out1, &bindings, op.inputs[0]);
                    let arena = MatrixArena::from_parts(m, &m.to_csr());
                    let outcome = MxmRequest::new(&arena, semiring, &cfg).run();
                    let oracle = sparse_of(graph, &out1, &bindings, op.output);
                    let eng = outcome.result.to_csc();
                    assert_eq!(eng.col_ptr(), oracle.col_ptr(), "{}", ctx("mxm"));
                    assert_eq!(eng.row_idx(), oracle.row_idx(), "{}", ctx("mxm"));
                    let eng_bits: Vec<u64> = eng.vals().iter().map(|v| v.to_bits()).collect();
                    let want_bits: Vec<u64> = oracle.vals().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(eng_bits, want_bits, "{}", ctx("mxm"));
                    mxm += 1;
                }
                _ => {}
            }
        }
    }

    // The corpus promises coverage: vxm chains, both mxv semirings, both
    // SpMM apps, and at least three mxm-bearing expressions (issue
    // acceptance criterion).
    assert!(vxm >= 12, "only {vxm} vxm ops checked");
    assert!(mxv >= 2, "only {mxv} mxv ops checked");
    assert!(spmm >= 2, "only {spmm} spmm ops checked");
    assert!(mxm >= 3, "only {mxm} self-product mxm ops checked");
}

/// Runs the registry app and its compiled-expression twin through the
/// full evaluation pipeline and demands byte-identical results on every
/// deterministic field.
fn assert_outcomes_match(name: &str, check_diagnostics: bool) {
    let entries = einsum_corpus::bundled();
    let entry = entries
        .iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("corpus has no `{name}` expression"));
    let lowered = einsum::compile_expression(&entry.source).expect(name);
    let app = registry::by_name(name).expect("registry app");
    let compiled = StaApp {
        graph: lowered.graph,
        ..app.clone()
    };

    let dataset = DatasetSpec::new(MatrixId::Ca, 64).load().unwrap();
    let hand = EvalRequest::new(&app, &dataset, 64).run().expect(name);
    let front = EvalRequest::new(&compiled, &dataset, 64).run().expect(name);

    assert_eq!(
        hand.evaluation.entry, front.evaluation.entry,
        "{name}: compiled expression diverges from the hand-built app"
    );
    // Byte-for-byte: the serialized entries are the artifact the sweep
    // journals and golden snapshots persist.
    let hand_json = serde_json::to_string(&hand.evaluation.entry).expect("serialize");
    let front_json = serde_json::to_string(&front.evaluation.entry).expect("serialize");
    assert_eq!(hand_json, front_json, "{name}: serialized entries differ");
    if check_diagnostics {
        assert_eq!(
            hand.evaluation.diagnostics, front.evaluation.diagnostics,
            "{name}: scheduling diagnostics differ"
        );
    }
    assert_eq!(
        format!("{:?}", hand.evaluation.mxm),
        format!("{:?}", front.evaluation.mxm),
        "{name}: SpGEMM statistics differ"
    );
}

/// The corpus `pr` line reproduces the registry PageRank app's
/// `EvalOutcome` byte for byte (issue acceptance criterion).
#[test]
fn compiled_pagerank_reproduces_the_registry_outcome_byte_for_byte() {
    assert_outcomes_match("pr", true);
}

/// The corpus `gcnw` line (SpGEMM-bearing GCN) reproduces the registry
/// app's outcome too. Its lowered graph allocates tensor ids in source
/// order rather than the registry's builder order, so this additionally
/// pins that evaluation depends only on dataflow structure.
#[test]
fn compiled_gcnw_reproduces_the_registry_outcome() {
    assert_outcomes_match("gcnw", true);
}
