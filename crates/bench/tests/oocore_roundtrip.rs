//! Slab round-trip fidelity: a dataset served from a binary slab (the
//! `experiments convert` output) must be indistinguishable — bit for
//! bit — from the synthetic path it froze. Every registry app runs once
//! on each and the full `Entry` (reports for all six systems) plus the
//! deterministic telemetry must agree exactly; only host wall clock is
//! excluded, because it is the one field that measures the machine
//! rather than the model.

use std::sync::Arc;

use sparsepipe_bench::datasets::{DatasetSpec, SlabSource};
use sparsepipe_bench::sweep::EvalRequest;
use sparsepipe_tensor::MatrixId;

#[test]
fn slab_datasets_reproduce_synthetic_outcomes_bitwise() {
    let scale = 256;
    let id = MatrixId::Ca;
    let dir = std::env::temp_dir().join(format!("sparsepipe-oocore-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Freeze the synthetic matrix exactly as `experiments convert
    // --matrix ca --scale 256` would.
    let matrix = id.spec().generate(scale);
    let arena = sparsepipe_core::MatrixArena::from_coo(&matrix);
    sparsepipe_core::slab::write_file(&arena, &SlabSource::slab_path(&dir, id, scale)).unwrap();

    let synthetic = DatasetSpec::new(id, scale).load().unwrap();
    let slab = DatasetSpec::new(id, scale)
        .with_source(Arc::new(SlabSource::new(&dir)))
        .load()
        .unwrap();
    assert_eq!(synthetic.matrix, slab.matrix, "the slab changed the matrix");
    assert_eq!(
        synthetic.reordered, slab.reordered,
        "the slab changed the reordering"
    );

    for app in sparsepipe_apps::registry::all() {
        let a = EvalRequest::new(&app, &synthetic, scale)
            .run()
            .unwrap_or_else(|e| panic!("{} on the synthetic path: {e}", app.name));
        let b = EvalRequest::new(&app, &slab, scale)
            .run()
            .unwrap_or_else(|e| panic!("{} on the slab path: {e}", app.name));
        assert_eq!(
            serde_json::to_string(&a.evaluation.entry).unwrap(),
            serde_json::to_string(&b.evaluation.entry).unwrap(),
            "{}: slab entry drifted from the synthetic entry",
            app.name
        );
        // Telemetry, wall clock excluded: these three are functions of
        // the model, not the host.
        let (ta, tb) = (&a.evaluation.telemetry, &b.evaluation.telemetry);
        assert_eq!(ta.sim_steps, tb.sim_steps, "{}: sim_steps", app.name);
        assert_eq!(
            ta.modeled_passes, tb.modeled_passes,
            "{}: modeled_passes",
            app.name
        );
        assert_eq!(
            ta.peak_working_set_bytes.to_bits(),
            tb.peak_working_set_bytes.to_bits(),
            "{}: peak_working_set_bytes",
            app.name
        );
        assert_eq!(
            a.evaluation.diagnostics, b.evaluation.diagnostics,
            "{}: diagnostics",
            app.name
        );
        assert_eq!(
            a.evaluation.mxm, b.evaluation.mxm,
            "{}: mxm stats",
            app.name
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
