//! Property tests of the serve wire envelope: every encodable frame
//! decodes back to itself, unknown fields never break decoding, and
//! version checking fires before anything else — the compatibility
//! contract `DESIGN.md` §14 promises for the v1 protocol.

use proptest::prelude::*;
use sparsepipe_bench::serve::wire::{
    codes, entry_from_value, EvalSpec, Request, Response, ServeStats, WireError, WIRE_VERSION,
};
use sparsepipe_bench::serve::ServeClient;

/// An alphabet that exercises JSON string escaping: quotes, backslashes,
/// control characters, and multi-byte UTF-8.
const NASTY: &[char] = &[
    'a', 'z', '0', '-', '_', ' ', '"', '\\', '/', '\n', '\t', 'α', '❤',
];

fn nasty_string(picks: &[usize]) -> String {
    picks.iter().map(|&i| NASTY[i % NASTY.len()]).collect()
}

fn spec_from(
    app_picks: &[usize],
    mat_idx: usize,
    scale: u64,
    deadline_ms: u64,
    retries: u32,
) -> EvalSpec {
    // half the time a real registry app / matrix code, half the time a
    // hostile string — the envelope must carry both faithfully
    let app = if app_picks.len().is_multiple_of(2) {
        let apps = sparsepipe_apps::registry::all();
        apps[app_picks.first().copied().unwrap_or(0) % apps.len()]
            .name
            .to_string()
    } else {
        nasty_string(app_picks)
    };
    let matrix = if mat_idx < sparsepipe_tensor::MatrixId::ALL.len() {
        sparsepipe_tensor::MatrixId::ALL[mat_idx].code().to_string()
    } else {
        format!("m{mat_idx}")
    };
    EvalSpec {
        app,
        matrix,
        scale,
        deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
        retries,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode ∘ decode is the identity on every request shape.
    #[test]
    fn requests_round_trip(
        id in any::<u64>(),
        app_picks in proptest::collection::vec(0usize..64, 1..8),
        mat_idx in 0usize..16,
        knobs in (1u64..1_000_000, 0u64..100_000, 0u32..8),
        kind in 0u8..3,
    ) {
        let (scale, deadline_ms, retries) = knobs;
        let req = match kind {
            0 => Request::Eval { id, spec: spec_from(&app_picks, mat_idx, scale, deadline_ms, retries) },
            1 => Request::Stats { id },
            _ => Request::Shutdown { id },
        };
        let text = req.encode();
        prop_assert!(text.starts_with(&format!(r#"{{"v":{WIRE_VERSION},"#)), "{text}");
        prop_assert_eq!(Request::decode(&text).unwrap(), req);
    }

    /// encode ∘ decode is the identity on every response shape,
    /// including stats counters at arbitrary magnitudes.
    #[test]
    fn responses_round_trip(
        id in any::<u64>(),
        attempts in 0u32..10,
        counters in proptest::collection::vec(0u64..u64::MAX / 2, 10),
        msg_picks in proptest::collection::vec(0usize..64, 0..12),
        kind in 0u8..4,
    ) {
        let resp = match kind {
            0 => Response::Entry {
                id,
                attempts,
                entry: serde_json::from_str(
                    r#"{"app":"pr","matrix":"ca","nested":[1,2.5,{"deep":true}]}"#,
                )
                .unwrap(),
            },
            1 => Response::Error {
                id,
                code: codes::OVERLOADED.into(),
                message: nasty_string(&msg_picks),
                attempts,
            },
            2 => Response::Stats {
                id,
                stats: ServeStats {
                    served: counters[0],
                    failed: counters[1],
                    rejected: counters[2],
                    queue_len: counters[3],
                    workers: counters[4],
                    cache_hits: counters[5],
                    cache_misses: counters[6],
                    cache_evictions: counters[7],
                    cache_resident_bytes: counters[8],
                    cache_budget_bytes: counters[9],
                },
            },
            _ => Response::Bye { id },
        };
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// Injecting unknown fields anywhere in the envelope never changes
    /// what a v1 decoder extracts — the forward-compatibility contract.
    #[test]
    fn unknown_fields_never_change_decoding(
        id in any::<u64>(),
        app_picks in proptest::collection::vec(0usize..64, 1..6),
        mat_idx in 0usize..16,
        scale in 1u64..100_000,
        extra_key in proptest::collection::vec(0usize..5, 1..6),
    ) {
        let req = Request::Eval {
            id,
            spec: spec_from(&app_picks, mat_idx, scale, 0, 0),
        };
        let text = req.encode();
        // splice a future field (scalar, array, and object shapes)
        // before the closing brace
        let key: String = extra_key.iter().map(|&i| char::from(b'k' + i as u8)).collect();
        let spliced = format!(
            r#"{},"{key}":{{"nested":[1,"two",3.5,null,true]}}}}"#,
            &text[..text.len() - 1]
        );
        prop_assert_eq!(Request::decode(&spliced).unwrap(), req);
    }

    /// Any `v` other than [`WIRE_VERSION`] is rejected with the stable
    /// `version` code, before the rest of the frame is interpreted.
    #[test]
    fn foreign_versions_are_rejected_first(v in 0u64..1_000, id in any::<u64>()) {
        // a frame that is garbage except for its version field
        let text = format!(r#"{{"v":{v},"id":{id},"type":"teapot","junk":[[[]]]}}"#);
        let result = Request::decode(&text);
        if v == WIRE_VERSION {
            // well-versioned garbage is malformed, not a version error
            prop_assert_eq!(result.unwrap_err().code(), codes::MALFORMED);
        } else {
            let err = result.unwrap_err();
            prop_assert_eq!(err.clone(), WireError::Version { got: v });
            prop_assert_eq!(err.code(), codes::VERSION);
        }
    }
}

/// A real entry survives the wire envelope byte-identically: rendering
/// the decoded `entry` payload equals `serde_json::to_string` of the
/// in-process `Entry`, and the typed decoder reproduces the struct.
#[test]
fn entry_payloads_cross_the_envelope_byte_identically() {
    let cache = sparsepipe_core::MatrixCache::new();
    let spec = EvalSpec::new("pr", "ca", 512);
    let dataset =
        sparsepipe_bench::datasets::DatasetSpec::new(sparsepipe_tensor::MatrixId::Ca, 512)
            .load()
            .unwrap();
    use serde::Serialize as _;
    let outcome = spec.run_local(&dataset, &cache).unwrap();
    let entry = outcome.evaluation.entry;
    let direct = serde_json::to_string(&entry).unwrap();

    let resp = Response::Entry {
        id: 42,
        attempts: 1,
        entry: entry.to_value(),
    };
    let Response::Entry { entry: wired, .. } = Response::decode(&resp.encode()).unwrap() else {
        panic!("entry response decoded to a different shape");
    };
    assert_eq!(serde_json::to_string(&wired).unwrap(), direct);
    let typed = entry_from_value(&wired).unwrap();
    assert_eq!(serde_json::to_string(&typed).unwrap(), direct);
}

/// The one non-network fact about the client worth pinning here: its
/// connect error is an `io::Error`, so scripts get "connection refused"
/// rather than a protocol-shaped failure.
#[test]
fn connecting_to_nothing_is_an_io_error() {
    // a listener we immediately drop: the port is closed again
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    assert!(ServeClient::connect(("127.0.0.1", port)).is_err());
}
