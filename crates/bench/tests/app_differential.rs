//! App-level half of the differential harness: every registered
//! application, evaluated with and without the sweep-level
//! [`MatrixCache`], must produce identical reports — and its traced,
//! cached run must still pass the bitwise [`TraceAudit`] that a traced
//! `EvalRequest` performs internally.
//!
//! (The element-level legacy-vs-arena comparison lives in
//! `crates/core/tests/dualbuffer_differential.rs`; this suite covers the
//! scheduling paths only real app graphs exercise.)

use sparsepipe_bench::datasets::DatasetSpec;
use sparsepipe_bench::sweep::EvalRequest;
use sparsepipe_core::MatrixCache;
use sparsepipe_tensor::MatrixId;
use sparsepipe_trace::MemorySink;

#[test]
fn cached_evaluation_is_identical_for_every_app() {
    let dataset = DatasetSpec::new(MatrixId::Gy, 64).load().unwrap();
    let cache = MatrixCache::new();
    let apps = sparsepipe_apps::registry::shared();
    assert_eq!(
        apps.len(),
        15,
        "registry should hold the paper's 11 apps plus the mxm family"
    );
    for app in apps.iter() {
        let plain = EvalRequest::new(app, &dataset, 64)
            .run()
            .unwrap_or_else(|e| panic!("{} failed uncached evaluation: {e}", app.name))
            .evaluation;
        let cached = EvalRequest::new(app, &dataset, 64)
            .cache(&cache)
            .run()
            .unwrap_or_else(|e| panic!("{} failed cached evaluation: {e}", app.name))
            .evaluation;
        assert_eq!(
            plain.entry.sim, cached.entry.sim,
            "{}: cache perturbed the iso-GPU report",
            app.name
        );
        assert_eq!(
            plain.entry.sim_iso_cpu, cached.entry.sim_iso_cpu,
            "{}: cache perturbed the iso-CPU report",
            app.name
        );
    }
    // 15 apps × 2 configs on one matrix: everything after the first
    // derivation of each artifact must hit.
    assert!(cache.misses() > 0, "cache never built anything");
    assert!(
        cache.hits() > cache.misses(),
        "cache mostly missed: {} hits vs {} misses",
        cache.hits(),
        cache.misses()
    );
}

#[test]
fn traced_cached_evaluation_audits_and_matches_for_every_app() {
    let dataset = DatasetSpec::new(MatrixId::Bu, 64).load().unwrap();
    let cache = MatrixCache::new();
    for app in sparsepipe_apps::registry::shared().iter() {
        // A traced EvalRequest replays the stream against the traffic
        // report with bitwise f64 equality and fails on any mismatch.
        let cached_out = EvalRequest::new(app, &dataset, 64)
            .cache(&cache)
            .trace(MemorySink::new())
            .run()
            .unwrap_or_else(|e| panic!("{} failed traced cached evaluation: {e}", app.name));
        let plain_out = EvalRequest::new(app, &dataset, 64)
            .trace(MemorySink::new())
            .run()
            .unwrap_or_else(|e| panic!("{} failed traced evaluation: {e}", app.name));
        let (cached_ev, cached_sink) = (
            cached_out.evaluation,
            cached_out.trace.expect("traced request returns its sink"),
        );
        let (plain_ev, plain_sink) = (
            plain_out.evaluation,
            plain_out.trace.expect("traced request returns its sink"),
        );
        assert!(
            !cached_sink.events().is_empty(),
            "{} produced an empty trace",
            app.name
        );
        assert_eq!(
            plain_sink.events(),
            cached_sink.events(),
            "{}: cache perturbed the event stream",
            app.name
        );
        assert_eq!(plain_ev.entry.sim, cached_ev.entry.sim);
    }
}
