//! App-level half of the differential harness: every registered
//! application, evaluated with and without the sweep-level
//! [`MatrixCache`], must produce identical reports — and its traced,
//! cached run must still pass the bitwise [`TraceAudit`] that
//! `evaluate_traced_cached` performs internally.
//!
//! (The element-level legacy-vs-arena comparison lives in
//! `crates/core/tests/dualbuffer_differential.rs`; this suite covers the
//! scheduling paths only real app graphs exercise.)

use sparsepipe_bench::datasets::ScaledDataset;
use sparsepipe_bench::sweep::{evaluate, evaluate_cached, evaluate_traced, evaluate_traced_cached};
use sparsepipe_core::MatrixCache;
use sparsepipe_tensor::MatrixId;

#[test]
fn cached_evaluation_is_identical_for_every_app() {
    let dataset = ScaledDataset::load(MatrixId::Gy, 64);
    let cache = MatrixCache::new();
    let apps = sparsepipe_apps::registry::shared();
    assert_eq!(apps.len(), 11, "registry should hold the paper's 11 apps");
    for app in apps.iter() {
        let plain = evaluate(app, &dataset, 64)
            .unwrap_or_else(|e| panic!("{} failed uncached evaluation: {e}", app.name));
        let cached = evaluate_cached(app, &dataset, 64, &cache)
            .unwrap_or_else(|e| panic!("{} failed cached evaluation: {e}", app.name));
        assert_eq!(
            plain.entry.sim, cached.entry.sim,
            "{}: cache perturbed the iso-GPU report",
            app.name
        );
        assert_eq!(
            plain.entry.sim_iso_cpu, cached.entry.sim_iso_cpu,
            "{}: cache perturbed the iso-CPU report",
            app.name
        );
    }
    // 11 apps × 2 configs on one matrix: everything after the first
    // derivation of each artifact must hit.
    assert!(cache.misses() > 0, "cache never built anything");
    assert!(
        cache.hits() > cache.misses(),
        "cache mostly missed: {} hits vs {} misses",
        cache.hits(),
        cache.misses()
    );
}

#[test]
fn traced_cached_evaluation_audits_and_matches_for_every_app() {
    let dataset = ScaledDataset::load(MatrixId::Bu, 64);
    let cache = MatrixCache::new();
    for app in sparsepipe_apps::registry::shared().iter() {
        // evaluate_traced_cached replays the stream against the traffic
        // report with bitwise f64 equality and fails on any mismatch.
        let (cached_ev, cached_sink) = evaluate_traced_cached(app, &dataset, 64, &cache)
            .unwrap_or_else(|e| panic!("{} failed traced cached evaluation: {e}", app.name));
        let (plain_ev, plain_sink) = evaluate_traced(app, &dataset, 64)
            .unwrap_or_else(|e| panic!("{} failed traced evaluation: {e}", app.name));
        assert!(
            !cached_sink.events().is_empty(),
            "{} produced an empty trace",
            app.name
        );
        assert_eq!(
            plain_sink.events(),
            cached_sink.events(),
            "{}: cache perturbed the event stream",
            app.name
        );
        assert_eq!(plain_ev.entry.sim, cached_ev.entry.sim);
    }
}
