//! The tentpole guarantee of the parallel executor: every rendered artifact
//! and every serialized result is byte-identical no matter how many worker
//! threads ran the sweep.

use sparsepipe_bench::datasets::{DataContext, MatrixSet};
use sparsepipe_bench::executor::Executor;
use sparsepipe_bench::experiments;
use sparsepipe_bench::sweep::Sweep;

fn sweep_with(jobs: usize) -> (Sweep, sparsepipe_bench::executor::BenchTelemetry) {
    let exec = Executor::new(jobs);
    let ctx = DataContext::synthetic(MatrixSet::Quick, 512);
    let sweep = Sweep::run_with(ctx, &exec).expect("synthetic sweep points cannot fail");
    (sweep, exec.finish())
}

#[test]
fn sweep_is_byte_identical_across_thread_counts() {
    let (seq, t1) = sweep_with(1);
    let (par, t4) = sweep_with(4);

    let seq_json = serde_json::to_string(&seq).unwrap();
    let par_json = serde_json::to_string(&par).unwrap();
    assert_eq!(
        seq_json, par_json,
        "sweep JSON diverged across thread counts"
    );

    // Telemetry records arrive in the same deterministic order; only the
    // host wall-clock values may differ.
    assert_eq!(t1.points, t4.points);
    let labels = |t: &sparsepipe_bench::executor::BenchTelemetry| {
        t.records
            .iter()
            .map(|r| r.label.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(labels(&t1), labels(&t4));
    assert_eq!(t1.sim_steps_total, t4.sim_steps_total);
    assert_eq!(t1.modeled_passes_total, t4.modeled_passes_total);
}

#[test]
fn figures_render_identically_across_thread_counts() {
    let (seq, _) = sweep_with(1);
    let (par, _) = sweep_with(4);
    for (a, b) in [
        (experiments::fig14(&seq), experiments::fig14(&par)),
        (experiments::fig18(&seq), experiments::fig18(&par)),
        (experiments::fig23(&seq), experiments::fig23(&par)),
    ] {
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a.render(), b.render(), "{} diverged", a.id);
    }
}

#[test]
fn generators_are_deterministic_under_parallelism() {
    let ctx = DataContext::synthetic(MatrixSet::Quick, 512);
    let seq = Executor::new(1);
    let par = Executor::new(4);
    let a = experiments::fig19(&ctx, &seq).unwrap();
    let b = experiments::fig19(&ctx, &par).unwrap();
    assert_eq!(a.render(), b.render());
    assert_eq!(
        seq.finish().records.len(),
        par.finish().records.len(),
        "fig19 must record one telemetry point per grid cell on any pool"
    );
}
