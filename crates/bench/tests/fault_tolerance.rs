//! End-to-end fault-tolerance acceptance suite (`DESIGN.md` §12).
//!
//! Every test drives [`Sweep::run_checked`] — the same path the
//! `experiments` binary takes under `--retries`/`--checkpoint`/`--inject`
//! — over the Quick matrix set and checks the two properties the fault
//! model promises:
//!
//! 1. **Isolation**: a failure (panic, timeout, error) at one point is
//!    reported with its identity and leaves every other point
//!    byte-identical to a clean run, at any worker count.
//! 2. **Determinism under recovery**: retries and checkpoint/resume are
//!    invisible in the output — a sweep that retried, or that was killed
//!    mid-run and resumed from its journal, serializes bitwise-identically
//!    to one that ran uninterrupted.

use std::path::PathBuf;
use std::time::Duration;

use sparsepipe_bench::datasets::{DataContext, MatrixSet};
use sparsepipe_bench::error::PointErrorKind;
use sparsepipe_bench::executor::Executor;
use sparsepipe_bench::fault::{FaultInjector, NoFaults, RetryPolicy};
use sparsepipe_bench::sweep::{Entry, Sweep, SweepOptions};

const SCALE: u64 = 256;
const POINTS: usize = 45; // Quick set: 3 matrices x 15 apps

fn context() -> DataContext {
    DataContext::synthetic(MatrixSet::Quick, SCALE)
}

fn entry_json(e: &Entry) -> String {
    serde_json::to_string(e).expect("entries serialize")
}

fn sweep_json(s: &Sweep) -> String {
    serde_json::to_string(s).expect("sweeps serialize")
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sparsepipe-fault-{tag}-{}.jsonl",
        std::process::id()
    ))
}

#[test]
fn an_injected_panic_spares_every_other_point_at_any_job_count() {
    let exec = Executor::new(1);
    let clean = Sweep::run_checked(context(), &exec, &SweepOptions::default(), &NoFaults)
        .expect("clean sweep runs");
    assert!(clean.failures.is_empty());
    assert_eq!(clean.sweep.entries.len(), POINTS);

    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence the injected panic
    for jobs in [1usize, 4] {
        let exec = Executor::new(jobs);
        let injector = FaultInjector::from_specs(&["panic@pr-ca"]).unwrap();
        let outcome = Sweep::run_checked(context(), &exec, &SweepOptions::default(), &injector)
            .expect("an injected panic must not abort the sweep");

        assert_eq!(outcome.failures.len(), 1, "exactly one point fails");
        let failure = &outcome.failures[0];
        assert_eq!(failure.point.label(), "pr-ca");
        assert_eq!(failure.point.scale, SCALE);
        assert_eq!(failure.attempts, 1);
        assert!(
            matches!(&failure.kind, PointErrorKind::Panic(m) if m.contains("injected panic")),
            "panic payload must survive into the report: {failure}"
        );

        // The surviving N-1 entries are byte-identical to the clean run's.
        let survivors: Vec<String> = clean
            .sweep
            .entries
            .iter()
            .filter(|e| !(e.app == "pr" && e.matrix.code() == "ca"))
            .map(entry_json)
            .collect();
        let got: Vec<String> = outcome.sweep.entries.iter().map(entry_json).collect();
        assert_eq!(got, survivors, "jobs={jobs} perturbed a surviving point");

        // The failure also reaches the telemetry that lands in
        // BENCH_experiments.json.
        exec.record_failure(outcome.failures.into_iter().next().unwrap());
        let telemetry = exec.finish();
        assert_eq!(telemetry.failed_points.len(), 1);
        assert_eq!(telemetry.failed_points[0].kind.tag(), "panic");
    }
    std::panic::set_hook(hook);
}

#[test]
fn transient_faults_recover_within_the_retry_budget_without_a_trace() {
    let exec = Executor::new(1);
    let clean = Sweep::run_checked(context(), &exec, &SweepOptions::default(), &NoFaults)
        .expect("clean sweep runs");

    // pr-ca fails its first two attempts, succeeds on the third.
    let injector = FaultInjector::from_specs(&["transient@pr-ca:2"]).unwrap();
    let opts = SweepOptions {
        retry: RetryPolicy::with_retries(2, 0),
        ..SweepOptions::default()
    };
    let exec = Executor::new(1);
    let outcome =
        Sweep::run_checked(context(), &exec, &opts, &injector).expect("retried sweep runs");
    assert!(
        outcome.failures.is_empty(),
        "two transient faults must be absorbed by two retries: {:?}",
        outcome.failures
    );

    // Recovery is invisible in the sweep output…
    assert_eq!(sweep_json(&outcome.sweep), sweep_json(&clean.sweep));

    // …but visible in telemetry: the retried point carries its attempt
    // count, every other point stays at the (omitted) default of 1.
    let telemetry = exec.finish();
    let retried = telemetry
        .records
        .iter()
        .find(|r| r.label == "sweep:pr-ca")
        .expect("retried point recorded");
    assert_eq!(retried.attempts, 3);
    assert!(telemetry
        .records
        .iter()
        .filter(|r| r.label != "sweep:pr-ca")
        .all(|r| r.attempts == 1));
}

#[test]
fn an_injected_timeout_is_reported_as_a_deadline_failure() {
    let exec = Executor::new(2);
    let injector = FaultInjector::from_specs(&["timeout@sssp-bu"]).unwrap();
    let opts = SweepOptions {
        deadline: Some(Duration::from_millis(120_000)),
        ..SweepOptions::default()
    };
    let outcome =
        Sweep::run_checked(context(), &exec, &opts, &injector).expect("timeout must not abort");
    assert_eq!(outcome.sweep.entries.len(), POINTS - 1);
    assert_eq!(outcome.failures.len(), 1);
    let failure = &outcome.failures[0];
    assert_eq!(failure.point.label(), "sssp-bu");
    assert!(
        matches!(failure.kind, PointErrorKind::Timeout { budget_ms: 120_000 }),
        "an injected DeadlineExceeded must classify as a timeout: {failure}"
    );
}

#[test]
fn a_killed_sweep_resumes_to_a_bitwise_identical_result() {
    let path = temp_journal("resume");
    let _ = std::fs::remove_file(&path);

    // Uninterrupted checkpointed run: the reference output.
    let opts = SweepOptions {
        checkpoint: Some(path.clone()),
        ..SweepOptions::default()
    };
    let exec = Executor::new(2);
    let reference =
        Sweep::run_checked(context(), &exec, &opts, &NoFaults).expect("checkpointed sweep runs");
    assert!(reference.failures.is_empty());
    let reference_json = sweep_json(&reference.sweep);

    // Simulate a SIGKILL mid-sweep: keep the header and the first 12
    // records, then half of the 13th — the torn write an append-only
    // journal is allowed to end in.
    let text = std::fs::read_to_string(&path).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + POINTS, "header + one record per point");
    let keep = 13; // header + 12 complete records
    let mut truncated: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    truncated.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(&path, truncated).expect("journal truncates");

    // Resume: the 12 journaled points are restored, the rest re-run, and
    // the final sweep is bitwise-identical to the uninterrupted one.
    let opts = SweepOptions {
        checkpoint: Some(path.clone()),
        resume: true,
        ..SweepOptions::default()
    };
    let exec = Executor::new(2);
    let resumed = Sweep::run_checked(context(), &exec, &opts, &NoFaults).expect("resume runs");
    assert!(resumed.failures.is_empty());
    assert_eq!(resumed.resumed, 12);
    assert_eq!(resumed.executed, POINTS - 12);
    assert_eq!(sweep_json(&resumed.sweep), reference_json);

    // The journal is whole again: a second resume re-runs nothing.
    let exec = Executor::new(1);
    let replayed = Sweep::run_checked(context(), &exec, &opts, &NoFaults).expect("replay runs");
    assert_eq!(replayed.resumed, POINTS);
    assert_eq!(replayed.executed, 0);
    assert_eq!(sweep_json(&replayed.sweep), reference_json);

    let _ = std::fs::remove_file(&path);
}
