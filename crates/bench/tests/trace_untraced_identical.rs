//! Satellite check: tracing is purely observational. The default
//! (untraced) sweep's rendered artifacts and raw JSON must be
//! byte-identical to the same sweep run with per-point tracing — the
//! `NullSink` hot path is the same simulation with the emission sites
//! compiled out.

use sparsepipe_bench::datasets::{DataContext, MatrixSet};
use sparsepipe_bench::executor::Executor;
use sparsepipe_bench::experiments as exp;
use sparsepipe_bench::sweep::Sweep;

#[test]
fn untraced_sweep_output_is_byte_identical_to_traced() {
    let ctx = DataContext::synthetic(MatrixSet::Quick, 128);
    let untraced = Sweep::run_with(ctx.clone(), &Executor::new(1)).unwrap();
    let dir = std::env::temp_dir().join(format!(
        "sparsepipe-untraced-identical-{}",
        std::process::id()
    ));
    let traced = Sweep::run_traced(ctx, &Executor::new(2), &dir).unwrap();

    // The raw sweep JSON (everything the tables are derived from).
    let a = serde_json::to_string_pretty(&untraced).unwrap();
    let b = serde_json::to_string_pretty(&traced).unwrap();
    assert_eq!(a, b, "tracing changed the sweep payload");

    // And the rendered stdout of every sweep-backed figure.
    for (u, t) in [
        (exp::fig14(&untraced), exp::fig14(&traced)),
        (exp::fig16(&untraced), exp::fig16(&traced)),
        (exp::fig17(&untraced), exp::fig17(&traced)),
        (exp::fig18(&untraced), exp::fig18(&traced)),
        (exp::fig21(&untraced), exp::fig21(&traced)),
    ] {
        assert_eq!(u.unwrap().render(), t.unwrap().render());
    }
    std::fs::remove_dir_all(&dir).ok();
}
