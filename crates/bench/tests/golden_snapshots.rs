//! Golden-snapshot tests: checked-in renders of the headline figures and
//! the raw sweep JSON, compared byte-for-byte against a fresh Quick-set
//! sweep. Any change to the simulator, the cache, or the renderers that
//! moves a single character of output fails here with a diffable path.
//!
//! To bless an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sparsepipe-bench --test golden_snapshots
//! ```

use std::fs;
use std::path::PathBuf;

use sparsepipe_bench::datasets::{DataContext, MatrixSet};
use sparsepipe_bench::executor::Executor;
use sparsepipe_bench::experiments;
use sparsepipe_bench::sweep::Sweep;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("golden snapshot {name} unreadable ({e}); bless with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        expected, actual,
        "render of {name} drifted from tests/golden/{name}; if the change \
         is intentional, re-bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn figure_renders_match_golden_snapshots() {
    // Quick set (3 matrices) × 15 apps at scale 64: small enough to run
    // in a unit test, large enough that every figure has real series.
    let exec = Executor::new(0);
    let sweep = Sweep::run_with(DataContext::synthetic(MatrixSet::Quick, 64), &exec)
        .expect("built-in quick sweep cannot fail");
    for (name, report) in [
        ("fig14.txt", experiments::fig14(&sweep)),
        ("fig16.txt", experiments::fig16(&sweep)),
        ("fig17.txt", experiments::fig17(&sweep)),
        ("fig18.txt", experiments::fig18(&sweep)),
        ("fig21.txt", experiments::fig21(&sweep)),
    ] {
        check(name, &report.expect("figure renders from a sweep").render());
    }
    check(
        "sweep.json",
        &format!(
            "{}\n",
            serde_json::to_string(&sweep).expect("sweep serializes")
        ),
    );
}

#[test]
fn compile_report_matches_golden_snapshot() {
    // The sparse-einsum front door: the bundled corpus, compiled and
    // simulated on ca at scale 64. The rendered table pins every
    // expression's op count, profile, diagnostics, simulated cycles, and
    // traffic — a parser, lowering, lint, or simulator change that moves
    // any expression shows up as a one-line diff.
    let exec = Executor::new(0);
    let entries = sparsepipe_bench::einsum_corpus::bundled();
    let (report, failing) = experiments::compile_exprs(
        &DataContext::synthetic(MatrixSet::Quick, 64),
        &exec,
        &entries,
        sparsepipe_tensor::MatrixId::Ca,
        None,
    )
    .expect("the bundled corpus compiles");
    assert_eq!(failing, 0, "the bundled corpus must compile clean");
    check("compile.txt", &report.render());
}

#[test]
fn emitted_graph_json_matches_golden_snapshot() {
    // `compile --emit graph` dumps each lowered DataflowGraph as JSON —
    // the schema-stable interchange form. Pin the `pr` expression's
    // graph: any rename, reorder, or retype of the IR's serialized
    // fields is a schema break and must be blessed deliberately.
    let exec = Executor::new(0);
    let entries: Vec<_> = sparsepipe_bench::einsum_corpus::bundled()
        .into_iter()
        .filter(|e| e.name == "pr")
        .collect();
    assert_eq!(entries.len(), 1, "the bundled corpus names exactly one pr");
    let dir = std::env::temp_dir().join(format!("sparsepipe-emit-golden-{}", std::process::id()));
    let (_report, failing) = experiments::compile_exprs(
        &DataContext::synthetic(MatrixSet::Quick, 64),
        &exec,
        &entries,
        sparsepipe_tensor::MatrixId::Ca,
        Some(&dir),
    )
    .expect("the pr expression compiles");
    assert_eq!(failing, 0, "the pr expression must compile clean");
    let json = fs::read_to_string(dir.join("compile-graph-pr.json"))
        .expect("--emit graph writes compile-graph-<name>.json");
    fs::remove_dir_all(&dir).ok();
    check("compile-graph-pr.json", &json);
}

#[test]
fn analyze_report_matches_golden_snapshot() {
    // The static analyzer's rendered report for the default point (all
    // apps on ca at scale 64) is fully deterministic: any drift in the
    // bounds, the pass structure, or the simulator's actuals lands here.
    let exec = Executor::new(0);
    let json = std::env::temp_dir().join(format!(
        "sparsepipe-analyze-golden-{}.json",
        std::process::id()
    ));
    let (report, violations) = experiments::analyze(
        &DataContext::synthetic(MatrixSet::Quick, 64),
        &exec,
        None,
        sparsepipe_tensor::MatrixId::Ca,
        &json,
    )
    .expect("analyze cannot fail on the built-in quick set");
    std::fs::remove_file(&json).ok();
    assert_eq!(violations, 0, "golden analyze run must be sound");
    // The json path line varies by tmpdir/pid; golden only the table part.
    let render = report.render();
    let stable = render
        .split("json report:")
        .next()
        .expect("render contains the json path line");
    check("analyze.txt", stable);
}
