//! End-to-end tests of the serve daemon over real TCP connections:
//! concurrent network answers are bitwise-identical to serial in-process
//! evaluation, the byte-budgeted cache stays provably bounded while
//! still earning hits, overload and drain surface as stable error codes,
//! and a daemon going away mid-load produces clean client errors —
//! never hangs.

use std::collections::BTreeMap;

use sparsepipe_bench::datasets::{DatasetSpec, MatrixSet, ScaledDataset};
use sparsepipe_bench::serve::loadgen::{self, LoadgenConfig};
use sparsepipe_bench::serve::wire::EvalSpec;
use sparsepipe_bench::serve::{ClientError, ServeClient, ServeConfig, Server};
use sparsepipe_core::MatrixCache;

const SCALE: u64 = 512;

fn quick_workload() -> Vec<EvalSpec> {
    loadgen::workload(MatrixSet::Quick, SCALE, None)
}

/// Serial ground truth: each spec evaluated in-process, rendered to the
/// exact JSON the daemon's `entry` payload must reproduce.
fn serial_entries(specs: &[EvalSpec]) -> BTreeMap<String, String> {
    let cache = MatrixCache::new();
    let mut datasets: BTreeMap<(String, u64), ScaledDataset> = BTreeMap::new();
    specs
        .iter()
        .map(|spec| {
            let dataset = datasets
                .entry((spec.matrix.clone(), spec.scale))
                .or_insert_with(|| {
                    DatasetSpec::new(spec.matrix_id().expect("quick matrix"), spec.scale)
                        .load()
                        .expect("quick dataset")
                });
            let outcome = spec.run_local(dataset, &cache).expect("serial evaluation");
            let json = serde_json::to_string(&outcome.evaluation.entry).unwrap();
            (spec.key().label(), json)
        })
        .collect()
}

fn start(cfg: ServeConfig) -> Server {
    Server::start(cfg).expect("bind an ephemeral port")
}

#[test]
fn concurrent_clients_match_serial_evaluation_bitwise() {
    let specs = quick_workload();
    let expected = serial_entries(&specs);
    let server = start(ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    const CLIENTS: usize = 4;
    std::thread::scope(|scope| {
        for idx in 0..CLIENTS {
            let specs = &specs;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                // each client walks the workload from a different offset
                for j in 0..specs.len() {
                    let spec = &specs[(j + idx * 7) % specs.len()];
                    let reply = client.eval(spec).expect("eval over the wire");
                    assert_eq!(reply.attempts, 1);
                    assert_eq!(
                        reply.entry_json(),
                        expected[&spec.key().label()],
                        "daemon answer for {} must be byte-identical to serial",
                        spec.key().label()
                    );
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.served, (CLIENTS * specs.len()) as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.rejected, 0);
    assert!(
        stats.hit_rate() > 0.5,
        "4 clients replaying the same 45 points must mostly hit: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn budgeted_cache_stays_bounded_and_still_earns_hits() {
    let specs = quick_workload();
    // measure the unbounded footprint of the whole workload, then
    // provision the daemon with ~60% of it so eviction must happen
    let unbounded = MatrixCache::new();
    {
        let mut datasets: BTreeMap<String, ScaledDataset> = BTreeMap::new();
        for spec in &specs {
            let dataset = datasets.entry(spec.matrix.clone()).or_insert_with(|| {
                DatasetSpec::new(spec.matrix_id().unwrap(), spec.scale)
                    .load()
                    .unwrap()
            });
            spec.run_local(dataset, &unbounded).unwrap();
        }
    }
    let full_footprint = unbounded.bytes().total();
    assert!(full_footprint > 0);
    let budget = full_footprint * 3 / 5;

    let server = start(ServeConfig {
        workers: 2,
        cache_bytes: Some(budget),
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    for _round in 0..3 {
        for spec in &specs {
            client.eval(spec).expect("eval over the wire");
        }
    }

    let stats = server.stats();
    assert_eq!(stats.cache_budget_bytes, budget);
    assert!(
        stats.cache_resident_bytes <= budget,
        "resident {} exceeds the {budget}-byte budget",
        stats.cache_resident_bytes
    );
    assert!(
        stats.cache_evictions > 0,
        "a {budget}-byte budget under a {full_footprint}-byte workload must evict"
    );
    assert!(
        stats.cache_hits > 0,
        "a repeating workload must still earn hits under eviction: {stats:?}"
    );
    // the bound holds on the live cache too, and its books balance
    server.cache().audit_accounting();
    assert!(server.cache().bytes().total() <= budget);
    server.shutdown();
}

#[test]
fn overload_is_a_stable_error_code() {
    // depth 0 makes every admission fail deterministically
    let server = start(ServeConfig {
        workers: 1,
        queue_depth: 0,
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    match client.eval(&EvalSpec::new("pr", "ca", SCALE)) {
        Err(ClientError::Server { code, attempts, .. }) => {
            assert_eq!(code, "overloaded");
            assert_eq!(attempts, 0);
        }
        other => panic!("expected an overloaded rejection, got {other:?}"),
    }
    assert_eq!(server.stats().rejected, 1);
    assert_eq!(server.stats().served, 0);
    server.shutdown();
}

#[test]
fn evaluation_failures_carry_their_bench_error_codes() {
    let server = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    match client.eval(&EvalSpec::new("frobnicate", "ca", SCALE)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "unknown-app"),
        other => panic!("expected unknown-app, got {other:?}"),
    }
    match client.eval(&EvalSpec::new("pr", "zz", SCALE)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "dataset"),
        other => panic!("expected dataset, got {other:?}"),
    }
    // mxm apps carry a row floor: ca at scale 1024 leaves 18 rows,
    // below the 32-row minimum, and must be refused at admission
    match client.eval(&EvalSpec::new("msbfs", "ca", 1024)) {
        Err(ClientError::Server { code, attempts, .. }) => {
            assert_eq!(code, "dataset");
            assert_eq!(attempts, 0, "refused before any attempt ran");
        }
        other => panic!("expected a row-floor dataset refusal, got {other:?}"),
    }
    // the daemon keeps serving after failures
    client
        .eval(&EvalSpec::new("pr", "ca", SCALE))
        .expect("healthy point");
    let stats = server.stats();
    assert_eq!(stats.failed, 3);
    assert_eq!(stats.served, 1);
    server.shutdown();
}

#[test]
fn hostile_scales_are_refused_and_cannot_kill_workers() {
    // one worker: if a hostile request panicked it uncaught, the daemon
    // could never answer again and the healthy eval below would time out
    let server = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .unwrap();
    // scale 0 and oversized scales panic DatasetSpec::generate if they
    // ever reach it; admission must refuse them with a stable code
    for hostile in [0, u64::MAX, 1u64 << 40] {
        match client.eval(&EvalSpec::new("pr", "ca", hostile)) {
            Err(ClientError::Server { code, attempts, .. }) => {
                assert_eq!(code, "dataset", "scale {hostile}");
                assert_eq!(attempts, 0, "refused before any attempt ran");
            }
            other => panic!("expected a dataset refusal for scale {hostile}, got {other:?}"),
        }
    }
    // the lone worker is still alive and serving
    client
        .eval(&EvalSpec::new("pr", "ca", SCALE))
        .expect("healthy eval after hostile requests");
    let stats = server.stats();
    assert_eq!(stats.failed, 3);
    assert_eq!(stats.served, 1);
    server.shutdown();
}

#[test]
fn connection_churn_reclaims_all_per_connection_state() {
    let server = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    for _ in 0..12 {
        let mut client = ServeClient::connect(addr).expect("connect");
        client
            .eval(&EvalSpec::new("pr", "ca", SCALE))
            .expect("eval");
        // client drops here, closing its socket
    }
    // the acceptor reaps on its ~20ms poll; give it a bounded moment
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let (conns, readers, lanes) = (
            server.open_connections(),
            server.tracked_readers(),
            server.queue_lanes(),
        );
        if conns == 0 && readers == 0 && lanes == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "per-connection state leaked after churn: \
             {conns} conns, {readers} reader handles, {lanes} queue lanes"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(server.stats().served, 12);
    server.shutdown();
}

#[test]
fn warm_datasets_stay_bounded_under_scale_sweeps() {
    let server = start(ServeConfig {
        workers: 2,
        dataset_slots: 3,
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    // 12 distinct (matrix, scale) datasets against 3 slots; all scales
    // keep `ca` tiny (≈36 rows), so this is cheap
    for scale in SCALE..SCALE + 12 {
        client
            .eval(&EvalSpec::new("pr", "ca", scale))
            .expect("eval at distinct scale");
        assert!(
            server.warm_datasets() <= 3,
            "dataset map exceeded its slot cap at scale {scale}: {}",
            server.warm_datasets()
        );
    }
    // a repeat of the most recent scale is still warm
    let before = server.warm_datasets();
    client
        .eval(&EvalSpec::new("pr", "ca", SCALE + 11))
        .expect("warm repeat");
    assert_eq!(server.warm_datasets(), before);
    server.shutdown();
}

#[test]
fn draining_daemon_rejects_new_work_then_disconnects_cleanly() {
    let server = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .eval(&EvalSpec::new("pr", "ca", SCALE))
        .expect("pre-drain eval");

    // a second client requests shutdown over the wire
    let mut closer = ServeClient::connect(addr).expect("connect closer");
    closer.shutdown_server().expect("acknowledged shutdown");
    server.wait_for_shutdown();

    // the still-open connection gets a stable draining error, not a hang
    match client.eval(&EvalSpec::new("pr", "ca", SCALE)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "draining"),
        other => panic!("expected draining, got {other:?}"),
    }

    server.shutdown();
    // after teardown the socket is gone: clean I/O error, still no hang
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    match client.eval(&EvalSpec::new("pr", "ca", SCALE)) {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected an I/O error after teardown, got {other:?}"),
    }
}

#[test]
fn killed_daemon_mid_load_yields_clean_client_errors() {
    let server = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let specs = quick_workload();

    // run one warm pass, then tear the daemon down while clients keep
    // replaying: every client must finish with an error, never block
    let mut warm = ServeClient::connect(addr).expect("connect");
    for spec in &specs {
        warm.eval(spec).expect("warm pass");
    }

    let barrier = std::sync::Barrier::new(3);
    std::thread::scope(|scope| {
        for idx in 0..2 {
            let specs = &specs;
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                client
                    .set_read_timeout(Some(std::time::Duration::from_secs(30)))
                    .unwrap();
                barrier.wait();
                let mut saw_error = false;
                for round in 0..1_000 {
                    let spec = &specs[(round + idx) % specs.len()];
                    match client.eval(spec) {
                        Ok(_) => {}
                        Err(ClientError::Server { code, .. }) => {
                            assert!(
                                code == "draining" || code == "overloaded",
                                "unexpected server code {code}"
                            );
                            saw_error = true;
                            break;
                        }
                        Err(ClientError::Io(_)) => {
                            saw_error = true;
                            break;
                        }
                        Err(ClientError::Protocol(p)) => panic!("protocol error: {p}"),
                    }
                }
                assert!(
                    saw_error,
                    "client outlived 1000 requests against a dying daemon"
                );
            });
        }
        barrier.wait();
        // let the replay get going, then pull the rug
        std::thread::sleep(std::time::Duration::from_millis(30));
        server.shutdown();
    });
}

#[test]
fn loadgen_replay_reports_the_bench_schema() {
    let server = start(ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    });
    let cfg = LoadgenConfig {
        addr: server.addr().to_string(),
        clients: 3,
        repeat: 2,
        scale: SCALE,
        set: MatrixSet::Quick,
        deadline_ms: None,
        shutdown: true,
    };
    let report = loadgen::run(&cfg).expect("replay");
    assert_eq!(report.clients, 3);
    assert_eq!(report.requests, 3 * 2 * 45);
    assert_eq!(
        report.ok, report.requests,
        "errors: {:?}",
        report.error_samples
    );
    assert_eq!(report.errors, 0);
    assert!(report.stats_sampled);
    assert!(report.throughput_rps > 0.0);
    assert!(report.latency_ms.p50 > 0.0);
    assert!(report.latency_ms.p99 >= report.latency_ms.p95);
    assert!(report.latency_ms.max >= report.latency_ms.p99);
    assert!(
        report.stats.hit_rate() > 0.5,
        "a repeating workload must be warm: {:?}",
        report.stats
    );

    // the written artifact parses and carries the schema CI validates
    let dir = std::env::temp_dir().join("sparsepipe-serve-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_serve.json");
    report.write(&path).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let v = serde_json::from_str(&text).unwrap();
    let serve = v.get("serve").expect("serve section");
    for key in [
        "clients",
        "requests",
        "ok",
        "errors",
        "wall_s",
        "throughput_rps",
    ] {
        assert!(serve.get(key).is_some(), "missing {key}");
    }
    let latency = serve.get("latency_ms").expect("latency section");
    for key in ["p50", "p95", "p99", "mean", "max"] {
        assert!(latency.get(key).is_some(), "missing latency {key}");
    }
    let cache = serve.get("matrix_cache").expect("cache section");
    assert!(
        cache
            .get("hit_rate")
            .and_then(serde::Value::as_f64)
            .unwrap()
            > 0.5
    );
    std::fs::remove_file(&path).ok();

    // --shutdown asked the daemon to drain
    server.wait_for_shutdown();
    server.shutdown();
}
