//! The static analyzer's acceptance gate: for every registered app at
//! scale 256, every per-pass, per-category traffic bound and the
//! occupancy bound must bracket the simulator's audited actuals
//! (`lower ≤ actual ≤ upper`). `experiments::analyze` performs the
//! comparison itself (against a bit-audited trace replay) and reports a
//! violation count; this test runs it over the Quick matrix set and
//! requires zero.

use sparsepipe_bench::datasets::{DataContext, MatrixSet};
use sparsepipe_bench::executor::Executor;
use sparsepipe_bench::experiments;
use sparsepipe_tensor::MatrixId;

#[test]
fn static_bounds_hold_for_all_apps_at_scale_256() {
    let ctx = DataContext::synthetic(MatrixSet::Quick, 256);
    let exec = Executor::new(0);
    let dir = std::env::temp_dir().join(format!("sparsepipe-analyze-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for matrix in [MatrixId::Ca, MatrixId::Gy, MatrixId::Bu] {
        let json_path = dir.join(format!("analyze-{}.json", matrix.code()));
        let (report, violations) =
            experiments::analyze(&ctx, &exec, None, matrix, &json_path).unwrap();
        assert_eq!(
            violations,
            0,
            "static bounds violated on {}:\n{}",
            matrix.code(),
            report.render()
        );
        // The JSON artifact round-trips and covers every registered app.
        let json = serde_json::from_str(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        let apps = match json.get("apps") {
            Some(serde::Value::Seq(apps)) => apps,
            other => panic!("apps missing from the JSON report: {other:?}"),
        };
        assert_eq!(apps.len(), 15, "one entry per registered app");
        for app in apps {
            assert_eq!(
                app.get("violations").and_then(serde::Value::as_u64),
                Some(0)
            );
        }
        assert_eq!(
            json.get("violations").and_then(serde::Value::as_u64),
            Some(0)
        );
    }
    // A single-app filtered run works and stays sound too.
    let json_path = dir.join("analyze-pr.json");
    let (_, violations) =
        experiments::analyze(&ctx, &exec, Some("pr"), MatrixId::Ca, &json_path).unwrap();
    assert_eq!(violations, 0);
    assert!(
        experiments::analyze(&ctx, &exec, Some("nope"), MatrixId::Ca, &json_path).is_err(),
        "unknown app names are rejected"
    );
    std::fs::remove_dir_all(&dir).ok();
}
