//! Criterion bench for Fig 19's preprocessing ablation plus the design-
//! choice ablations called out in DESIGN.md §7 (sub-tensor size, eager CSR
//! loading, eviction policy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsepipe_apps::registry;
use sparsepipe_bench::datasets::{DatasetSpec, ScaledDataset};
use sparsepipe_core::{EvictionPolicy, Preprocessing, ReorderKind, SimRequest, SparsepipeConfig};
use sparsepipe_tensor::MatrixId;

fn base_cfg(dataset: &ScaledDataset) -> SparsepipeConfig {
    SparsepipeConfig::iso_gpu()
        .with_buffer(dataset.buffer_bytes())
        .with_preprocessing(Preprocessing {
            blocked: true,
            reorder: ReorderKind::None,
        })
}

fn bench_preprocessing_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_preprocessing");
    group.sample_size(10);
    let dataset = DatasetSpec::new(MatrixId::Bu, 256).load().unwrap();
    let app = registry::by_name("pr").unwrap();
    let program = app.compile().unwrap();
    for (name, blocked) in [("plain", false), ("blocked", true)] {
        let cfg = base_cfg(&dataset).with_preprocessing(Preprocessing {
            blocked,
            reorder: ReorderKind::None,
        });
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                SimRequest::new(&program, &dataset.matrix)
                    .iterations(10)
                    .config(*cfg)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_ablation_subtensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_subtensor");
    group.sample_size(10);
    let dataset = DatasetSpec::new(MatrixId::Ca, 256).load().unwrap();
    let app = registry::by_name("pr").unwrap();
    let program = app.compile().unwrap();
    for t in [1usize, 8, 64] {
        let cfg = SparsepipeConfig {
            subtensor_cols: t,
            ..base_cfg(&dataset)
        };
        group.bench_with_input(BenchmarkId::from_parameter(t), &cfg, |b, cfg| {
            b.iter(|| {
                SimRequest::new(&program, &dataset.reordered)
                    .iterations(10)
                    .config(*cfg)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_ablation_eager_and_eviction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_eager_eviction");
    group.sample_size(10);
    let dataset = DatasetSpec::new(MatrixId::Bu, 256).load().unwrap();
    let app = registry::by_name("sssp").unwrap();
    let program = app.compile().unwrap();
    let variants: [(&str, bool, EvictionPolicy); 3] = [
        ("eager+highrow", true, EvictionPolicy::HighestRowFirst),
        ("noeager", false, EvictionPolicy::HighestRowFirst),
        ("oldestfirst", true, EvictionPolicy::OldestFirst),
    ];
    for (name, eager, eviction) in variants {
        let cfg = SparsepipeConfig {
            eviction,
            ..base_cfg(&dataset).with_eager_csr(eager)
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                SimRequest::new(&program, &dataset.matrix)
                    .iterations(10)
                    .config(*cfg)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_preprocessing_variants,
    bench_ablation_subtensor,
    bench_ablation_eager_and_eviction
);
criterion_main!(benches);
