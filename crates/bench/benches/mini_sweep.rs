//! End-to-end mini-sweep benchmark: the fixed-seed Quick sweep evaluated
//! point-by-point with and without the sweep-level [`MatrixCache`],
//! self-timed (the vendored criterion stub is single-shot) and recorded
//! into `BENCH_core.json` under the `mini_sweep` key.
//!
//! Doubles as a smoke differential: the cached and uncached entries must
//! be equal before either time is reported.

use std::path::Path;
use std::time::Instant;

use sparsepipe_apps::registry;
use sparsepipe_bench::datasets::{DataContext, MatrixSet};
use sparsepipe_bench::executor::Executor;
use sparsepipe_bench::sweep::{Entry, EvalRequest};
use sparsepipe_core::MatrixCache;

const SCALE: u64 = 64;
const REPS: usize = 3;

fn best_of<F: FnMut() -> Vec<Entry>>(mut run: F) -> (f64, Vec<Entry>) {
    let mut best = f64::INFINITY;
    let mut entries = Vec::new();
    for _ in 0..REPS {
        let start = Instant::now();
        entries = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, entries)
}

fn main() {
    let exec = Executor::new(1);
    let ctx = DataContext::synthetic(MatrixSet::Quick, SCALE);
    let datasets = ctx.load(&exec).expect("built-in datasets load");
    let apps = registry::shared();
    let points: Vec<_> = datasets
        .iter()
        .flat_map(|d| apps.iter().map(move |a| (d, a)))
        .collect();

    let (uncached_s, plain) = best_of(|| {
        points
            .iter()
            .map(|(d, a)| {
                EvalRequest::new(a, d, SCALE)
                    .run()
                    .expect("point evaluates")
                    .evaluation
                    .entry
            })
            .collect()
    });
    let (cached_s, cached) = best_of(|| {
        let cache = MatrixCache::new();
        points
            .iter()
            .map(|(d, a)| {
                EvalRequest::new(a, d, SCALE)
                    .cache(&cache)
                    .run()
                    .expect("point evaluates")
                    .evaluation
                    .entry
            })
            .collect()
    });
    for (p, c) in plain.iter().zip(&cached) {
        assert_eq!(p.sim, c.sim, "cache perturbed {}-{}", p.app, p.matrix);
        assert_eq!(p.sim_iso_cpu, c.sim_iso_cpu);
    }

    let speedup = uncached_s / cached_s;
    println!(
        "mini_sweep: {} points  uncached {uncached_s:.3}s  cached {cached_s:.3}s  ({speedup:.2}x)",
        points.len()
    );
    let value = format!(
        "{{\"points\": {}, \"scale\": {SCALE}, \"reps\": {REPS}, \
         \"uncached_s\": {uncached_s:.6}, \"cached_s\": {cached_s:.6}, \
         \"speedup\": {speedup:.3}}}",
        points.len()
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_core.json");
    sparsepipe_testutil::benchjson::record(&path, "mini_sweep", &value)
        .expect("BENCH_core.json updates");
}
