//! Criterion bench for Table I's OEI live-set sweep: dataset generation +
//! live-curve analysis per matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsepipe_tensor::{livesweep, MatrixId};

fn bench_livesweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_livesweep");
    group.sample_size(10);
    for id in [MatrixId::Ca, MatrixId::Gy, MatrixId::Bu] {
        let m = id.spec().generate(256);
        group.bench_with_input(BenchmarkId::from_parameter(id.code()), &m, |b, m| {
            b.iter(|| livesweep::sweep(m));
        });
    }
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_generation");
    group.sample_size(10);
    for id in [MatrixId::Ca, MatrixId::Ro] {
        group.bench_with_input(BenchmarkId::from_parameter(id.code()), &id, |b, id| {
            b.iter(|| id.spec().generate(256));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_livesweep, bench_generation);
criterion_main!(benches);
