//! Criterion bench for Fig 14's core comparison: one Sparsepipe
//! simulation and one ideal-baseline evaluation per (app, matrix).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsepipe_apps::registry;
use sparsepipe_baselines::ideal::IdealAccelerator;
use sparsepipe_baselines::WorkloadInstance;
use sparsepipe_bench::datasets::DatasetSpec;
use sparsepipe_bench::sweep;
use sparsepipe_core::SimRequest;
use sparsepipe_tensor::MatrixId;

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_simulate");
    group.sample_size(10);
    let dataset = DatasetSpec::new(MatrixId::Ca, 256).load().unwrap();
    for app_name in ["pr", "sssp", "cg"] {
        let app = registry::by_name(app_name).unwrap();
        let program = app.compile().unwrap();
        let cfg = sweep::sparsepipe_config(&dataset);
        group.bench_with_input(
            BenchmarkId::from_parameter(app_name),
            &program,
            |b, program| {
                b.iter(|| {
                    SimRequest::new(program, &dataset.reordered)
                        .iterations(app.default_iterations)
                        .config(cfg)
                        .run()
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_ideal_baseline(c: &mut Criterion) {
    let dataset = DatasetSpec::new(MatrixId::Ca, 256).load().unwrap();
    let app = registry::by_name("pr").unwrap();
    let program = app.compile().unwrap();
    let cfg = sweep::sparsepipe_config(&dataset);
    let w = WorkloadInstance {
        profile: &program.profile,
        n: dataset.matrix.nrows() as u64,
        nnz: dataset.matrix.nnz() as u64,
        stats: &dataset.stats,
        iterations: app.default_iterations,
        mxm: None,
    };
    c.bench_function("fig14_ideal_eval", |b| {
        b.iter(|| IdealAccelerator::new(cfg).evaluate(&w));
    });
}

criterion_group!(benches, bench_simulate, bench_ideal_baseline);
criterion_main!(benches);
