//! Criterion micro-benchmarks of the substrate hot paths: semiring `vxm`
//! kernels, the functional OEI fused pass, format conversions, and the
//! e-wise VM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparsepipe_core::oei;
use sparsepipe_semiring::SemiringOp;
use sparsepipe_tensor::{gen, DenseVector};

fn bench_vxm_semirings(c: &mut Criterion) {
    let mut group = c.benchmark_group("vxm");
    let m = gen::uniform(20_000, 20_000, 200_000, 7);
    let csc = m.to_csc();
    let x = DenseVector::filled(20_000, 1.0);
    for s in SemiringOp::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(s.mnemonic()), &s, |b, &s| {
            b.iter(|| {
                csc.vxm_with(&x, s.zero(), |a, v| s.mul(a, v), |a, v| s.add(a, v))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_fused_pass(c: &mut Criterion) {
    let m = gen::uniform(20_000, 20_000, 200_000, 7);
    let csc = m.to_csc();
    let csr = m.to_csr();
    let x = DenseVector::filled(20_000, 1.0);
    c.bench_function("oei_fused_pass", |b| {
        b.iter(|| {
            oei::fused_pass(
                &csc,
                &csr,
                &x,
                |_, v| v * 0.85 + 0.15,
                SemiringOp::MulAdd,
                SemiringOp::MulAdd,
            )
            .unwrap()
        });
    });
}

fn bench_buffered_pass(c: &mut Criterion) {
    let m = gen::uniform(20_000, 20_000, 200_000, 7);
    let csc = m.to_csc();
    let csr = m.to_csr();
    let x = DenseVector::filled(20_000, 1.0);
    let mut group = c.benchmark_group("oei_buffered_pass");
    group.sample_size(10);
    for (name, cap) in [("ample", 64usize << 20), ("pressured", 200_000 * 12 / 5)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cap, |b, &cap| {
            b.iter(|| {
                oei::fused_pass_buffered(
                    &csc,
                    &csr,
                    &x,
                    |_, v| v * 0.85 + 0.15,
                    SemiringOp::MulAdd,
                    SemiringOp::MulAdd,
                    cap,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_conversions(c: &mut Criterion) {
    let m = gen::uniform(20_000, 20_000, 200_000, 7);
    c.bench_function("coo_to_csr", |b| b.iter(|| m.to_csr()));
    c.bench_function("coo_to_csc", |b| b.iter(|| m.to_csc()));
    c.bench_function("blocked_dual_build", |b| {
        b.iter(|| sparsepipe_tensor::BlockedDualStorage::from_coo(&m));
    });
}

fn bench_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorder");
    group.sample_size(10);
    let m = gen::power_law(10_000, 80_000, 1.0, 0.4, 3);
    let csr = m.to_csr();
    group.bench_function("graph_order", |b| {
        b.iter(|| sparsepipe_tensor::reorder::graph_order(&csr, 64));
    });
    group.bench_function("vanilla", |b| {
        b.iter(|| sparsepipe_tensor::reorder::vanilla_triangular(&csr, 3));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_vxm_semirings,
    bench_fused_pass,
    bench_buffered_pass,
    bench_conversions,
    bench_reorder
);
criterion_main!(benches);
