//! Criterion benchmark of trace-sink overhead on the simulator hot path.
//!
//! Three instantiations of the same simulation point:
//!
//! * `null` — the default `NullSink` (`ENABLED == false`), which must
//!   match the pre-instrumentation simulator: every emission site is
//!   compiled out, so this group doubles as a regression guard on the
//!   untraced throughput the tentpole promised to preserve.
//! * `memory` — a `MemorySink` collecting every event.
//! * `jsonl-devnull` — a streaming `JsonlSink` into `std::io::sink()`,
//!   isolating the encode cost from file I/O.

use criterion::{criterion_group, criterion_main, Criterion};
use sparsepipe_core::{Preprocessing, ReorderKind, SimRequest, SparsepipeConfig};
use sparsepipe_tensor::gen;
use sparsepipe_trace::{JsonlSink, MemorySink};

fn bench_trace_overhead(c: &mut Criterion) {
    let app = sparsepipe_apps::registry::by_name("pr").unwrap();
    let program = app.compile().unwrap();
    let matrix = gen::power_law(20_000, 160_000, 1.0, 0.4, 7);
    let cfg = SparsepipeConfig::iso_gpu()
        .with_buffer(1 << 20)
        .with_preprocessing(Preprocessing {
            blocked: true,
            reorder: ReorderKind::None,
        });
    let iterations = app.default_iterations;

    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    group.bench_function("null", |b| {
        b.iter(|| {
            SimRequest::new(&program, &matrix)
                .iterations(iterations)
                .config(cfg)
                .run()
                .unwrap()
        });
    });
    group.bench_function("memory", |b| {
        b.iter(|| {
            let mut sink = MemorySink::new();
            let outcome = SimRequest::new(&program, &matrix)
                .iterations(iterations)
                .config(cfg)
                .trace(&mut sink)
                .run()
                .unwrap();
            (outcome, sink.len())
        });
    });
    group.bench_function("jsonl-devnull", |b| {
        b.iter(|| {
            let mut sink = JsonlSink::new(std::io::sink());
            let outcome = SimRequest::new(&program, &matrix)
                .iterations(iterations)
                .config(cfg)
                .trace(&mut sink)
                .run()
                .unwrap();
            (outcome, sink.lines_written())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
