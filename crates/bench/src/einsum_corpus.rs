//! The committed sparse-einsum expression corpus and its loader.
//!
//! The corpus (`crates/bench/corpus.ses`) is the conformance surface of
//! the einsum front door: the `experiments compile --file` runner, the
//! differential suite, and the golden snapshot all iterate the same
//! entries, so a new expression added here is automatically parsed,
//! linted, lowered, simulated, and checked bitwise against the scalar
//! interpreter.

use std::path::Path;

use crate::error::BenchError;

/// The committed corpus file, bundled into the binary so tests and the
/// default CI job need no path plumbing.
pub const BUNDLED: &str = include_str!("../corpus.ses");

/// One corpus expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Display name: the expression's `name=` setting when it parses,
    /// otherwise `line<N>`.
    pub name: String,
    /// The expression source text.
    pub source: String,
    /// 1-based line number in the corpus file.
    pub line: usize,
}

/// Splits corpus text into entries: one expression per non-empty,
/// non-comment line. Malformed lines are kept (named `line<N>`) so the
/// compile runner reports their diagnostics instead of hiding them.
#[must_use]
pub fn parse_corpus(text: &str) -> Vec<CorpusEntry> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name = sparsepipe_frontend::einsum::parse(line)
            .ok()
            .and_then(|p| p.settings.name)
            .unwrap_or_else(|| format!("line{}", idx + 1));
        out.push(CorpusEntry {
            name,
            source: line.to_string(),
            line: idx + 1,
        });
    }
    out
}

/// The bundled corpus, parsed.
#[must_use]
pub fn bundled() -> Vec<CorpusEntry> {
    parse_corpus(BUNDLED)
}

/// Loads a corpus file from disk.
///
/// # Errors
///
/// Returns [`BenchError::Io`] if the file cannot be read.
pub fn load(path: &Path) -> Result<Vec<CorpusEntry>, BenchError> {
    let text = std::fs::read_to_string(path).map_err(|source| BenchError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    Ok(parse_corpus(&text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_corpus_is_large_and_uniquely_named() {
        let entries = bundled();
        assert!(
            entries.len() >= 20,
            "corpus shrank to {} expressions",
            entries.len()
        );
        let mut names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate corpus names");
        assert!(
            !entries.iter().any(|e| e.name.starts_with("line")),
            "every committed expression must parse and carry a name= setting"
        );
    }

    #[test]
    fn bundled_corpus_has_the_required_families() {
        let entries = bundled();
        let mxm_bearing = entries
            .iter()
            .filter(|e| {
                sparsepipe_frontend::einsum::compile_expression(&e.source).is_ok_and(|l| {
                    l.graph
                        .ops()
                        .any(|(_, op)| matches!(op.kind, sparsepipe_frontend::OpKind::Mxm { .. }))
                })
            })
            .count();
        assert!(
            mxm_bearing >= 3,
            "only {mxm_bearing} mxm-bearing expressions"
        );
        assert!(entries.iter().any(|e| e.name == "pr"));
        assert!(entries.iter().any(|e| e.name == "gcnw"));
    }

    #[test]
    fn parse_corpus_keeps_malformed_lines_with_positions() {
        let entries = parse_corpus("# comment\n\ny[j] +.*= x[i] * A[i,j\n");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "line3");
        assert_eq!(entries[0].line, 3);
    }
}
