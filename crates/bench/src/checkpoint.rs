//! Append-only checkpoint journal for resumable sweeps
//! (`--checkpoint` / `--resume`).
//!
//! The journal is JSONL: one header line naming the format version and a
//! digest of the sweep's [`DataContext`], then one self-validating record
//! per completed point. Every append is flushed and `fsync`'d before the
//! sweep moves on, so a `SIGKILL` at any instant loses at most the record
//! being written — and a trailing half-written line is recognized on
//! resume (no newline terminator) and truncated away.
//!
//! Records carry an FNV-1a digest of the entry's canonical JSON. On
//! resume the journal re-renders each decoded entry and requires both the
//! stored text digest and the re-rendered digest to match, so a corrupted
//! journal — or any decode infidelity that would break the bitwise
//! reproducibility guarantee — fails loudly
//! ([`BenchError::Checkpoint`]) instead of silently producing a sweep
//! that differs from an uninterrupted run.

use std::io::{Seek, Write};
use std::path::{Path, PathBuf};

use serde::Value;
use sparsepipe_baselines::BaselineReport;
use sparsepipe_core::{BwSample, EnergyBreakdown, SimReport, TrafficBreakdown};
use sparsepipe_tensor::MatrixId;

use crate::datasets::DataContext;
use crate::error::{BenchError, PointKey};
use crate::sweep::Entry;

/// The journal format version written in the header line.
pub const JOURNAL_VERSION: u64 = 1;

/// FNV-1a 64-bit digest of a string — the journal's integrity check.
/// Not cryptographic; it guards against truncation, bit rot, and decoder
/// drift, not adversaries.
pub fn digest64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of a sweep's [`DataContext`] — ties a journal to the exact
/// (scale, set, source) it was recorded under.
pub fn context_digest(context: &DataContext) -> Result<u64, BenchError> {
    let text = serde_json::to_string(context).map_err(|e| BenchError::Json(e.to_string()))?;
    Ok(digest64(&text))
}

/// An open checkpoint journal, positioned for appending.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
}

impl Journal {
    fn error(path: &Path, message: impl Into<String>) -> BenchError {
        BenchError::Checkpoint {
            path: path.to_path_buf(),
            message: message.into(),
        }
    }

    fn io_error(path: &Path, source: &std::io::Error) -> BenchError {
        Journal::error(path, source.to_string())
    }

    /// Starts a fresh journal at `path` (truncating any existing file)
    /// with a header for `context`.
    ///
    /// # Errors
    ///
    /// [`BenchError::Checkpoint`] if the file cannot be created or the
    /// header cannot be written.
    pub fn create(path: &Path, context: &DataContext) -> Result<Journal, BenchError> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Journal::io_error(path, &e))?;
        let mut journal = Journal {
            path: path.to_path_buf(),
            file,
        };
        let header = Value::Map(vec![
            (
                "journal".to_string(),
                Value::Str("sparsepipe-sweep".to_string()),
            ),
            ("version".to_string(), Value::UInt(JOURNAL_VERSION)),
            (
                "context_digest".to_string(),
                Value::Str(format!("{:016x}", context_digest(context)?)),
            ),
        ]);
        journal.append_line(&header)?;
        Ok(journal)
    }

    /// Opens an existing journal at `path` for resumption: validates the
    /// header against `context`, decodes and digest-checks every complete
    /// record, truncates a trailing half-written line (the `SIGKILL`
    /// artifact), and returns the journal positioned for appending along
    /// with the restored points in record order.
    ///
    /// A missing file is not an error — the sweep simply starts from
    /// scratch, exactly as [`Journal::create`] would.
    ///
    /// # Errors
    ///
    /// [`BenchError::Checkpoint`] on I/O failure, a header/context
    /// mismatch, a malformed complete record, or a digest mismatch.
    pub fn resume(
        path: &Path,
        context: &DataContext,
    ) -> Result<(Journal, Vec<(PointKey, Entry)>), BenchError> {
        if !path.exists() {
            return Ok((Journal::create(path, context)?, Vec::new()));
        }
        let text = std::fs::read_to_string(path).map_err(|e| Journal::io_error(path, &e))?;

        // Only lines terminated by `\n` are complete; a trailing partial
        // line is dropped and truncated away below.
        let mut valid_len = 0usize;
        let mut lines = Vec::new();
        for line in text.split_inclusive('\n') {
            if !line.ends_with('\n') {
                break;
            }
            valid_len += line.len();
            lines.push(line.trim_end());
        }

        let header_line = *lines
            .first()
            .ok_or_else(|| Journal::error(path, "journal has no complete header line"))?;
        let header = serde_json::from_str(header_line)
            .map_err(|e| Journal::error(path, format!("malformed header: {e}")))?;
        if header.get("version").and_then(Value::as_u64) != Some(JOURNAL_VERSION) {
            return Err(Journal::error(path, "unsupported journal version"));
        }
        let expected = format!("{:016x}", context_digest(context)?);
        let found = header
            .get("context_digest")
            .and_then(Value::as_str)
            .unwrap_or("<missing>");
        if found != expected {
            return Err(Journal::error(
                path,
                format!(
                    "journal was recorded for a different sweep context \
                     (journal {found}, current {expected}) — delete it or drop --resume"
                ),
            ));
        }

        let mut restored = Vec::new();
        for (idx, line) in lines.iter().enumerate().skip(1) {
            let record = serde_json::from_str(line)
                .map_err(|e| Journal::error(path, format!("record {idx}: {e}")))?;
            restored.push(
                decode_record(&record)
                    .map_err(|msg| Journal::error(path, format!("record {idx}: {msg}")))?,
            );
        }

        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| Journal::io_error(path, &e))?;
        file.set_len(valid_len as u64)
            .map_err(|e| Journal::io_error(path, &e))?;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| Journal::io_error(path, &e))?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file,
            },
            restored,
        ))
    }

    /// Appends one completed point and `fsync`s it to disk before
    /// returning.
    ///
    /// # Errors
    ///
    /// [`BenchError::Checkpoint`] on serialization or I/O failure.
    pub fn append(&mut self, key: &PointKey, entry: &Entry) -> Result<(), BenchError> {
        let entry_value = serde::Serialize::to_value(entry);
        let entry_text =
            serde_json::to_string(&entry_value).map_err(|e| BenchError::Json(e.to_string()))?;
        let record = Value::Map(vec![
            ("point".to_string(), serde::Serialize::to_value(key)),
            ("entry".to_string(), entry_value),
            (
                "digest".to_string(),
                Value::Str(format!("{:016x}", digest64(&entry_text))),
            ),
        ]);
        self.append_line(&record)
    }

    fn append_line(&mut self, value: &Value) -> Result<(), BenchError> {
        let mut line = serde_json::to_string(value).map_err(|e| BenchError::Json(e.to_string()))?;
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| Journal::io_error(&self.path, &e))
    }
}

/// Decodes and digest-checks one journal record.
fn decode_record(record: &Value) -> Result<(PointKey, Entry), String> {
    let point = field(record, "point")?;
    let key = PointKey {
        app: str_field(point, "app")?.to_string(),
        matrix: str_field(point, "matrix")?.to_string(),
        scale: u64_field(point, "scale")?,
    };
    let entry_value = field(record, "entry")?;
    let recorded = str_field(record, "digest")?;

    // Guard 1: the parsed tree re-renders to text with the recorded
    // digest (detects corruption and parser infidelity).
    let rerendered = serde_json::to_string(entry_value).map_err(|e| e.to_string())?;
    if format!("{:016x}", digest64(&rerendered)) != recorded {
        return Err(format!("entry digest mismatch for point {key}"));
    }

    let entry = decode_entry(entry_value)?;

    // Guard 2: the decoded Entry re-serializes to the same bytes
    // (detects decoder drift that would break bitwise resume).
    let roundtrip = serde_json::to_string(&entry).map_err(|e| e.to_string())?;
    if format!("{:016x}", digest64(&roundtrip)) != recorded {
        return Err(format!(
            "decoded entry does not round-trip bitwise for point {key}"
        ));
    }
    Ok((key, entry))
}

pub(crate) fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

pub(crate) fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

pub(crate) fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
}

pub(crate) fn str_field<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

pub(crate) fn bool_field(v: &Value, key: &str) -> Result<bool, String> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` is not a boolean"))
}

fn decode_traffic(v: &Value) -> Result<TrafficBreakdown, String> {
    Ok(TrafficBreakdown {
        csc_bytes: f64_field(v, "csc_bytes")?,
        csr_eager_bytes: f64_field(v, "csr_eager_bytes")?,
        refetch_bytes: f64_field(v, "refetch_bytes")?,
        vector_bytes: f64_field(v, "vector_bytes")?,
        writeback_bytes: f64_field(v, "writeback_bytes")?,
    })
}

fn decode_energy(v: &Value) -> Result<EnergyBreakdown, String> {
    Ok(EnergyBreakdown {
        compute_pj: f64_field(v, "compute_pj")?,
        memory_pj: f64_field(v, "memory_pj")?,
        buffer_pj: f64_field(v, "buffer_pj")?,
    })
}

fn decode_bw_sample(v: &Value) -> Result<BwSample, String> {
    Ok(BwSample {
        utilization: f64_field(v, "utilization")?,
        csc_frac: f64_field(v, "csc_frac")?,
        csr_frac: f64_field(v, "csr_frac")?,
        vector_frac: f64_field(v, "vector_frac")?,
    })
}

fn decode_sim_report(v: &Value) -> Result<SimReport, String> {
    let bw_trace = field(v, "bw_trace")?
        .as_seq()
        .ok_or("field `bw_trace` is not a sequence")?
        .iter()
        .map(decode_bw_sample)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SimReport {
        total_cycles: u64_field(v, "total_cycles")?,
        runtime_s: f64_field(v, "runtime_s")?,
        traffic: decode_traffic(field(v, "traffic")?)?,
        avg_bw_utilization: f64_field(v, "avg_bw_utilization")?,
        bw_trace,
        buffer_peak_bytes: f64_field(v, "buffer_peak_bytes")?,
        buffer_avg_bytes: f64_field(v, "buffer_avg_bytes")?,
        evicted_elements: u64_field(v, "evicted_elements")?,
        repack_events: u64_field(v, "repack_events")?,
        energy: decode_energy(field(v, "energy")?)?,
        matrix_loads_per_iteration: f64_field(v, "matrix_loads_per_iteration")?,
        iterations: u64_field(v, "iterations")? as usize,
    })
}

fn decode_baseline(v: &Value) -> Result<BaselineReport, String> {
    Ok(BaselineReport {
        runtime_s: f64_field(v, "runtime_s")?,
        traffic_bytes: f64_field(v, "traffic_bytes")?,
        bw_utilization: f64_field(v, "bw_utilization")?,
        energy: decode_energy(field(v, "energy")?)?,
    })
}

fn matrix_from_variant(name: &str) -> Result<MatrixId, String> {
    MatrixId::ALL
        .into_iter()
        .find(|m| format!("{m:?}") == name)
        .ok_or_else(|| format!("unknown matrix `{name}`"))
}

/// Decodes a journaled [`Entry`]. The `app` string must name a registry
/// app (the registry owns the `&'static str`).
pub(crate) fn decode_entry(v: &Value) -> Result<Entry, String> {
    let app_name = str_field(v, "app")?;
    let app = sparsepipe_apps::registry::by_name(app_name)
        .ok_or_else(|| format!("unknown app `{app_name}`"))?;
    Ok(Entry {
        app: app.name,
        matrix: matrix_from_variant(str_field(v, "matrix")?)?,
        has_oei: bool_field(v, "has_oei")?,
        iterations: u64_field(v, "iterations")? as usize,
        sim: decode_sim_report(field(v, "sim")?)?,
        sim_iso_cpu: decode_sim_report(field(v, "sim_iso_cpu")?)?,
        ideal: decode_baseline(field(v, "ideal")?)?,
        oracle: decode_baseline(field(v, "oracle")?)?,
        cpu: decode_baseline(field(v, "cpu")?)?,
        gpu: decode_baseline(field(v, "gpu")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::MatrixSet;
    use crate::sweep::EvalRequest;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sparsepipe-journal-{tag}-{}", std::process::id()))
    }

    fn one_entry() -> (PointKey, Entry) {
        let dataset = crate::datasets::DatasetSpec::new(MatrixId::Ca, 512)
            .load()
            .unwrap();
        let pr = sparsepipe_apps::registry::by_name("pr").unwrap();
        let entry = EvalRequest::new(&pr, &dataset, 512)
            .run()
            .unwrap()
            .evaluation
            .entry;
        let key = PointKey {
            app: "pr".into(),
            matrix: "ca".into(),
            scale: 512,
        };
        (key, entry)
    }

    #[test]
    fn digest_is_stable() {
        assert_eq!(digest64(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(digest64("a"), digest64("b"));
    }

    #[test]
    fn journal_round_trips_bitwise() {
        let path = temp_path("roundtrip");
        let context = DataContext::synthetic(MatrixSet::Quick, 512);
        let (key, entry) = one_entry();
        let original = serde_json::to_string(&entry).unwrap();

        let mut j = Journal::create(&path, &context).unwrap();
        j.append(&key, &entry).unwrap();
        drop(j);

        let (_j, restored) = Journal::resume(&path, &context).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored[0].0, key);
        let rendered = serde_json::to_string(&restored[0].1).unwrap();
        assert_eq!(rendered, original, "resume must reproduce bitwise JSON");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_tolerates_a_truncated_tail_and_keeps_appending() {
        let path = temp_path("truncated");
        let context = DataContext::synthetic(MatrixSet::Quick, 512);
        let (key, entry) = one_entry();
        let mut j = Journal::create(&path, &context).unwrap();
        j.append(&key, &entry).unwrap();
        drop(j);

        // Simulate a SIGKILL mid-append: a half-written trailing record.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"point\":{\"app\":\"cg\"").unwrap();
        drop(f);

        let (mut j, restored) = Journal::resume(&path, &context).unwrap();
        assert_eq!(restored.len(), 1, "partial record is dropped");
        let key2 = PointKey {
            app: "cg".into(),
            ..key.clone()
        };
        j.append(&key2, &entry).unwrap();
        drop(j);

        // The file is now clean again: both records survive a re-resume.
        let (_j, restored) = Journal::resume(&path, &context).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored[1].0.app, "cg");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_corruption_and_foreign_contexts() {
        let path = temp_path("corrupt");
        let context = DataContext::synthetic(MatrixSet::Quick, 512);
        let (key, entry) = one_entry();
        let mut j = Journal::create(&path, &context).unwrap();
        j.append(&key, &entry).unwrap();
        drop(j);

        // A different context must be refused.
        let other = DataContext::synthetic(MatrixSet::Quick, 256);
        let err = Journal::resume(&path, &other).unwrap_err();
        assert!(err.to_string().contains("different sweep context"), "{err}");

        // Flip one digit inside the recorded entry: digest check fires.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("\"iterations\":", "\"iterations\":1", 1);
        assert_ne!(text, corrupted);
        std::fs::write(&path, corrupted).unwrap();
        let err = Journal::resume(&path, &context).unwrap_err();
        assert!(err.to_string().contains("digest mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_resumes_empty() {
        let path = temp_path("fresh");
        std::fs::remove_file(&path).ok();
        let context = DataContext::synthetic(MatrixSet::Quick, 512);
        let (j, restored) = Journal::resume(&path, &context).unwrap();
        assert!(restored.is_empty());
        drop(j);
        assert!(path.is_file(), "resume-from-nothing creates the journal");
        std::fs::remove_file(&path).ok();
    }
}
