//! Plain-text table rendering for experiment reports.

/// A simple aligned-column text table.
///
/// ```
/// use sparsepipe_bench::table::Table;
/// let mut t = Table::new(vec!["app".into(), "speedup".into()]);
/// t.row(vec!["pr".into(), "2.31".into()]);
/// let s = t.render();
/// assert!(s.contains("pr"));
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as `x.xx×`.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage with one decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["xxx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxx"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_x(2.345), "2.35x");
        assert_eq!(fmt_pct(66.78), "66.8%");
    }
}
