//! Argument parsing for the `experiments` binary (kept in the library so
//! it is unit-testable).

use std::path::PathBuf;

use sparsepipe_tensor::MatrixId;

use crate::datasets::{DataContext, MatrixSet, SourceConfig};

/// Every artifact the harness can regenerate, in paper order.
pub const ALL_ARTIFACTS: [&str; 17] = [
    "table1", "table2", "table3", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20a",
    "fig20b", "fig21", "fig22", "fig23", "ablation", "verify", "all",
];

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Requested artifacts, `all` already expanded.
    pub artifacts: Vec<String>,
    /// Dataset scale divisor.
    pub scale: u64,
    /// Matrix subset.
    pub set: MatrixSet,
    /// Write the raw sweep as JSON here, if set.
    pub json_out: Option<PathBuf>,
    /// Worker threads for the sweep executor (`0` = machine parallelism).
    pub jobs: usize,
    /// Where to write the run-telemetry JSON (default
    /// `BENCH_experiments.json` in the working directory).
    pub bench_json: Option<PathBuf>,
    /// Where matrices come from: synthetic (default), `--mtx DIR`
    /// MatrixMarket files, or `--slab DIR` binary slabs written by the
    /// `convert` subcommand.
    pub source: SourceConfig,
    /// Run the static verifier over every registered app before any
    /// artifact, failing the run on lint errors.
    pub lint: bool,
    /// `--help` was requested.
    pub help: bool,
    /// Trace output directory (`--trace-dir`). When set, sweep-backed
    /// artifacts run with per-point tracing; the `trace` subcommand
    /// writes its exports here (default `trace-out`).
    pub trace_dir: Option<PathBuf>,
    /// App short name (`--app`): the `trace` subcommand's point (default
    /// `pr`), or the `analyze` subcommand's filter (default: all apps).
    pub app: Option<String>,
    /// Matrix for the `trace`/`analyze` subcommands (`--matrix`, default
    /// `ca`).
    pub trace_matrix: MatrixId,
    /// Per-point wall-clock budget in milliseconds (`--deadline-ms`).
    pub deadline_ms: Option<u64>,
    /// Retries per failed point (`--retries`, default 0).
    pub retries: u32,
    /// Base backoff between retries in milliseconds (`--backoff-ms`).
    pub backoff_ms: u64,
    /// Checkpoint journal path (`--checkpoint`).
    pub checkpoint: Option<PathBuf>,
    /// Resume completed points from the checkpoint journal (`--resume`).
    pub resume: bool,
    /// Fault-injection specs (`--inject`, repeatable; test/CI harness).
    pub inject: Vec<String>,
    /// Static pre-flight pruning budget in bytes (`--prune-static`):
    /// sweep points whose provable traffic lower bound exceeds it are
    /// skipped and recorded as `pruned_points` in the telemetry.
    pub prune_static: Option<f64>,
    /// One sparse-einsum expression for the `compile` subcommand
    /// (`--expr`).
    pub expr: Option<String>,
    /// A corpus file of sparse-einsum expressions for the `compile`
    /// subcommand (`--file`), one expression per line.
    pub expr_file: Option<PathBuf>,
    /// MatrixMarket input for the `convert` subcommand (`--in`); when
    /// absent, `convert` generates the synthetic `--matrix` at
    /// `--scale` and slabs that.
    pub convert_in: Option<PathBuf>,
    /// Slab output path for the `convert` subcommand (`--out`).
    pub convert_out: Option<PathBuf>,
    /// Extra artifact the `compile` subcommand emits (`--emit graph`
    /// writes each lowered `DataflowGraph` as JSON under the trace
    /// directory).
    pub emit: Option<String>,
}

impl CliOptions {
    /// The data context these options select.
    pub fn context(&self) -> DataContext {
        DataContext {
            scale: self.scale,
            set: self.set,
            source: self.source.to_source(),
        }
    }

    /// The app the `trace` subcommand targets (`pr` unless `--app`
    /// overrides it).
    pub fn trace_app(&self) -> &str {
        self.app.as_deref().unwrap_or("pr")
    }

    /// The effective trace output directory (`trace-out` unless
    /// `--trace-dir` overrides it).
    pub fn trace_dir(&self) -> PathBuf {
        self.trace_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("trace-out"))
    }

    /// The [`SweepOptions`](crate::sweep::SweepOptions) these options
    /// select for the fault-tolerant sweep.
    pub fn sweep_options(&self) -> crate::sweep::SweepOptions {
        crate::sweep::SweepOptions {
            deadline: self.deadline_ms.map(std::time::Duration::from_millis),
            retry: crate::fault::RetryPolicy::with_retries(self.retries, self.backoff_ms),
            checkpoint: self.checkpoint.clone(),
            resume: self.resume,
            prune_static: self.prune_static,
        }
    }

    /// Whether any fault-tolerance flag was given (these route sweeps
    /// through [`Sweep::run_checked`](crate::sweep::Sweep::run_checked)).
    pub fn uses_fault_tolerance(&self) -> bool {
        self.deadline_ms.is_some()
            || self.retries > 0
            || self.checkpoint.is_some()
            || self.resume
            || !self.inject.is_empty()
            || self.prune_static.is_some()
    }

    /// Whether any requested artifact needs the app × matrix sweep.
    pub fn needs_sweep(&self) -> bool {
        self.json_out.is_some()
            || self.artifacts.iter().any(|a| {
                matches!(
                    a.as_str(),
                    "fig14" | "fig16" | "fig17" | "fig18" | "fig20b" | "fig21" | "fig22" | "fig23"
                )
            })
    }
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing flag
/// values, invalid scales, unknown artifacts, or an empty artifact list.
pub fn parse(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions {
        artifacts: Vec::new(),
        scale: 64,
        set: MatrixSet::Full,
        json_out: None,
        jobs: 0,
        bench_json: None,
        source: SourceConfig::Synthetic,
        lint: false,
        help: false,
        trace_dir: None,
        app: None,
        trace_matrix: MatrixId::Ca,
        deadline_ms: None,
        retries: 0,
        backoff_ms: 0,
        checkpoint: None,
        resume: false,
        inject: Vec::new(),
        prune_static: None,
        expr: None,
        expr_file: None,
        convert_in: None,
        convert_out: None,
        emit: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&v| v > 0)
                    .ok_or("--scale needs a positive integer")?;
            }
            "--quick" => opts.set = MatrixSet::Quick,
            "--json" => {
                i += 1;
                opts.json_out = Some(args.get(i).ok_or("--json needs a file path")?.into());
            }
            "--jobs" => {
                i += 1;
                opts.jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--jobs needs a non-negative integer (0 = all cores)")?;
            }
            "--bench-json" => {
                i += 1;
                opts.bench_json = Some(args.get(i).ok_or("--bench-json needs a file path")?.into());
            }
            "--mtx" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or("--mtx needs a directory of <code>.mtx files")?;
                if opts.source != SourceConfig::Synthetic {
                    return Err("--mtx and --slab are exclusive".into());
                }
                opts.source = SourceConfig::MatrixMarket(dir.into());
            }
            "--slab" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or("--slab needs a directory of <code>.s<scale>.slab files")?;
                if opts.source != SourceConfig::Synthetic {
                    return Err("--mtx and --slab are exclusive".into());
                }
                opts.source = SourceConfig::Slab(dir.into());
            }
            "--in" => {
                i += 1;
                opts.convert_in = Some(
                    args.get(i)
                        .ok_or("--in needs a MatrixMarket file path")?
                        .into(),
                );
            }
            "--out" => {
                i += 1;
                opts.convert_out = Some(args.get(i).ok_or("--out needs a slab file path")?.into());
            }
            "--emit" => {
                i += 1;
                let what = args.get(i).ok_or("--emit needs an artifact kind (graph)")?;
                if what != "graph" {
                    return Err(format!("--emit supports `graph`, got `{what}`"));
                }
                opts.emit = Some(what.clone());
            }
            "--trace-dir" => {
                i += 1;
                opts.trace_dir = Some(
                    args.get(i)
                        .ok_or("--trace-dir needs an output directory")?
                        .into(),
                );
            }
            "--app" => {
                i += 1;
                opts.app = Some(
                    args.get(i)
                        .ok_or("--app needs an app short name (e.g. pr)")?
                        .clone(),
                );
            }
            "--matrix" => {
                i += 1;
                let code = args
                    .get(i)
                    .ok_or("--matrix needs a Table-I matrix code (e.g. ca)")?;
                opts.trace_matrix = MatrixId::ALL
                    .into_iter()
                    .find(|m| m.code() == code)
                    .ok_or_else(|| {
                        format!(
                            "unknown matrix code `{code}` (known: {})",
                            MatrixId::ALL.map(MatrixId::code).join(" ")
                        )
                    })?;
            }
            "--deadline-ms" => {
                i += 1;
                opts.deadline_ms = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--deadline-ms needs a millisecond budget")?,
                );
            }
            "--retries" => {
                i += 1;
                opts.retries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--retries needs a non-negative integer")?;
            }
            "--backoff-ms" => {
                i += 1;
                opts.backoff_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--backoff-ms needs a millisecond base delay")?;
            }
            "--checkpoint" => {
                i += 1;
                opts.checkpoint = Some(
                    args.get(i)
                        .ok_or("--checkpoint needs a journal file path")?
                        .into(),
                );
            }
            "--resume" => opts.resume = true,
            "--prune-static" => {
                i += 1;
                opts.prune_static = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<f64>().ok())
                        .filter(|&v| v.is_finite() && v > 0.0)
                        .ok_or("--prune-static needs a positive byte budget (e.g. 2.5e9)")?,
                );
            }
            "--inject" => {
                i += 1;
                opts.inject.push(
                    args.get(i)
                        .ok_or("--inject needs a spec like panic@pr-ca")?
                        .clone(),
                );
            }
            "--expr" => {
                i += 1;
                opts.expr = Some(
                    args.get(i)
                        .ok_or("--expr needs a sparse-einsum expression")?
                        .clone(),
                );
            }
            "--file" => {
                i += 1;
                opts.expr_file = Some(
                    args.get(i)
                        .ok_or("--file needs a corpus path (one expression per line)")?
                        .into(),
                );
            }
            "--lint" => opts.lint = true,
            "--help" | "-h" => opts.help = true,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag: {flag}"));
            }
            artifact => {
                // `trace`, `analyze`, `compile`, and `convert` are
                // subcommands, not paper artifacts: valid to request
                // explicitly, never pulled in by `all`.
                if !ALL_ARTIFACTS.contains(&artifact)
                    && artifact != "trace"
                    && artifact != "analyze"
                    && artifact != "compile"
                    && artifact != "convert"
                {
                    return Err(format!("unknown artifact: {artifact}"));
                }
                opts.artifacts.push(artifact.to_string());
            }
        }
        i += 1;
    }
    if opts.artifacts.iter().any(|a| a == "all") {
        opts.artifacts = ALL_ARTIFACTS[..ALL_ARTIFACTS.len() - 1]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
    }
    if opts.artifacts.is_empty() && !opts.help && !opts.lint {
        return Err("no artifact requested (try `all`, `--lint`, or `--help`)".into());
    }
    if opts.resume && opts.checkpoint.is_none() {
        return Err("--resume requires --checkpoint <path>".into());
    }
    if opts.uses_fault_tolerance() && opts.trace_dir.is_some() {
        return Err(
            "fault-tolerance flags (--deadline-ms/--retries/--checkpoint/--resume/--inject\
             /--prune-static) are not supported with --trace-dir"
                .into(),
        );
    }
    let wants_compile = opts.artifacts.iter().any(|a| a == "compile");
    match (wants_compile, opts.expr.is_some(), opts.expr_file.is_some()) {
        (true, false, false) => {
            return Err("compile needs --expr '<expression>' or --file <corpus>".into());
        }
        (true, true, true) => {
            return Err("compile takes --expr or --file, not both".into());
        }
        (false, e, f) if e || f => {
            return Err("--expr/--file only apply to the compile subcommand".into());
        }
        _ => {}
    }
    if opts.emit.is_some() && !wants_compile {
        return Err("--emit only applies to the compile subcommand".into());
    }
    let wants_convert = opts.artifacts.iter().any(|a| a == "convert");
    if wants_convert && opts.convert_out.is_none() {
        return Err("convert needs --out <file.slab>".into());
    }
    if !wants_convert && (opts.convert_in.is_some() || opts.convert_out.is_some()) {
        return Err("--in/--out only apply to the convert subcommand".into());
    }
    // Reject malformed specs at parse time, not mid-sweep.
    crate::fault::FaultInjector::from_specs(&opts.inject).map_err(|e| format!("--inject {e}"))?;
    Ok(opts)
}

/// The usage string printed on `--help` or a parse error.
pub fn usage() -> String {
    format!(
        "usage: experiments <artifact>... [--scale N] [--quick] [--jobs N] [--json out.json] \
         [--bench-json out.json] [--mtx DIR | --slab DIR] [--lint] [--trace-dir DIR]\n\
         fault tolerance: [--deadline-ms N] [--retries N] [--backoff-ms N] \
         [--checkpoint journal.jsonl] [--resume] [--inject kind@app-matrix[:n]] \
         [--prune-static BYTES]\n\
         artifacts: {}\n\
         trace subcommand: experiments trace [--app NAME] [--matrix CODE] [--trace-dir DIR]\n\
         analyze subcommand: experiments analyze [--app NAME] [--matrix CODE] — static \
         traffic/occupancy bounds, differentially verified against the simulator\n\
         compile subcommand: experiments compile --expr '<einsum>' | --file corpus.ses \
         [--matrix CODE] [--emit graph] — parse, lint, and lower sparse-einsum \
         expressions, run one simulated point each, exit 4 on any diagnostic error\n\
         convert subcommand: experiments convert --out FILE.slab [--in FILE.mtx | \
         --matrix CODE --scale N] — stream a MatrixMarket file (or a synthetic matrix) \
         into a binary slab loadable with --slab\n\
         (--trace-dir with sweep artifacts also records per-point JSONL traces)",
        ALL_ARTIFACTS.join(" ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_basic_invocation() {
        let o = parse(&args("fig14 fig18 --scale 32 --quick")).unwrap();
        assert_eq!(o.artifacts, vec!["fig14", "fig18"]);
        assert_eq!(o.scale, 32);
        assert_eq!(o.set, MatrixSet::Quick);
        assert!(o.needs_sweep());
    }

    #[test]
    fn all_expands_without_duplicating_itself() {
        let o = parse(&args("all")).unwrap();
        assert_eq!(o.artifacts.len(), ALL_ARTIFACTS.len() - 1);
        assert!(!o.artifacts.iter().any(|a| a == "all"));
    }

    #[test]
    fn table_only_runs_need_no_sweep() {
        let o = parse(&args("table1 table2 fig15 fig19 ablation verify")).unwrap();
        assert!(!o.needs_sweep());
        let with_json = parse(&args("table1 --json out.json")).unwrap();
        assert!(with_json.needs_sweep(), "--json always needs the sweep");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&args("fig99")).is_err());
        assert!(parse(&args("--scale")).is_err());
        assert!(parse(&args("--scale 0 table1")).is_err());
        assert!(parse(&args("--scale x table1")).is_err());
        assert!(parse(&args("--json")).is_err());
        assert!(parse(&args("--jobs table1")).is_err());
        assert!(parse(&args("--jobs -2 table1")).is_err());
        assert!(parse(&args("--bench-json")).is_err());
        assert!(parse(&args("--mtx")).is_err());
        assert!(parse(&args("--frobnicate table1")).is_err());
        assert!(parse(&args("")).is_err());
    }

    #[test]
    fn jobs_and_bench_json_parse() {
        let o = parse(&args("fig14 --jobs 4 --bench-json bench.json")).unwrap();
        assert_eq!(o.jobs, 4);
        assert_eq!(o.bench_json, Some("bench.json".into()));
        // defaults: auto-parallelism, default telemetry path
        let d = parse(&args("fig14")).unwrap();
        assert_eq!(d.jobs, 0);
        assert_eq!(d.bench_json, None);
        // 0 is explicitly allowed (= machine parallelism)
        assert_eq!(parse(&args("fig14 --jobs 0")).unwrap().jobs, 0);
    }

    #[test]
    fn lint_flag_needs_no_artifacts() {
        let o = parse(&args("--lint")).unwrap();
        assert!(o.lint);
        assert!(o.artifacts.is_empty());
        assert!(!o.needs_sweep());
        let both = parse(&args("--lint table1")).unwrap();
        assert!(both.lint);
        assert_eq!(both.artifacts, vec!["table1"]);
    }

    #[test]
    fn help_needs_no_artifacts() {
        let o = parse(&args("--help")).unwrap();
        assert!(o.help);
        assert!(usage().contains("fig23"));
    }

    #[test]
    fn trace_subcommand_and_flags_parse() {
        let o = parse(&args("trace --app sssp --matrix eu --trace-dir /tmp/tr")).unwrap();
        assert_eq!(o.artifacts, vec!["trace"]);
        assert_eq!(o.trace_app(), "sssp");
        assert_eq!(o.trace_matrix, MatrixId::Eu);
        assert_eq!(o.trace_dir(), PathBuf::from("/tmp/tr"));
        assert!(!o.needs_sweep());
        // defaults
        let d = parse(&args("trace")).unwrap();
        assert_eq!(d.trace_app(), "pr");
        assert_eq!(d.app, None);
        assert_eq!(d.trace_matrix, MatrixId::Ca);
        assert_eq!(d.trace_dir(), PathBuf::from("trace-out"));
        // `all` must not pull the subcommand in
        assert!(!parse(&args("all"))
            .unwrap()
            .artifacts
            .iter()
            .any(|a| a == "trace"));
        // sweeps accept --trace-dir too
        let s = parse(&args("fig14 --trace-dir t")).unwrap();
        assert!(s.needs_sweep());
        assert_eq!(s.trace_dir, Some(PathBuf::from("t")));
        // errors
        assert!(parse(&args("trace --matrix zz")).is_err());
        assert!(parse(&args("trace --matrix")).is_err());
        assert!(parse(&args("trace --app")).is_err());
        assert!(parse(&args("--trace-dir")).is_err());
    }

    #[test]
    fn analyze_subcommand_parses() {
        let o = parse(&args("analyze --app gcn --matrix gy --scale 256")).unwrap();
        assert_eq!(o.artifacts, vec!["analyze"]);
        assert_eq!(o.app, Some("gcn".to_string()));
        assert_eq!(o.trace_matrix, MatrixId::Gy);
        assert!(!o.needs_sweep());
        // default: no app filter (= all registered apps)
        assert_eq!(parse(&args("analyze")).unwrap().app, None);
        // `all` must not pull the subcommand in
        assert!(!parse(&args("all"))
            .unwrap()
            .artifacts
            .iter()
            .any(|a| a == "analyze"));
    }

    #[test]
    fn compile_subcommand_parses() {
        let args_vec: Vec<String> = vec![
            "compile".into(),
            "--expr".into(),
            "y[j] +.*= x[i] * A[i,j]".into(),
        ];
        let o = parse(&args_vec).unwrap();
        assert_eq!(o.artifacts, vec!["compile"]);
        assert_eq!(o.expr.as_deref(), Some("y[j] +.*= x[i] * A[i,j]"));
        assert_eq!(o.expr_file, None);
        assert!(!o.needs_sweep());

        let f = parse(&args("compile --file corpus.ses --matrix gy")).unwrap();
        assert_eq!(f.expr_file, Some(PathBuf::from("corpus.ses")));
        assert_eq!(f.trace_matrix, MatrixId::Gy);

        // `all` must not pull the subcommand in
        assert!(!parse(&args("all"))
            .unwrap()
            .artifacts
            .iter()
            .any(|a| a == "compile"));
    }

    #[test]
    fn compile_subcommand_is_validated() {
        assert!(parse(&args("compile")).is_err(), "needs --expr or --file");
        assert!(
            parse(&args("compile --expr a --file b")).is_err(),
            "--expr and --file are exclusive"
        );
        assert!(
            parse(&args("table1 --expr a")).is_err(),
            "--expr without the compile subcommand"
        );
        assert!(
            parse(&args("table1 --file c.ses")).is_err(),
            "--file without the compile subcommand"
        );
        assert!(parse(&args("compile --expr")).is_err());
        assert!(parse(&args("compile --file")).is_err());
    }

    #[test]
    fn prune_static_parses_and_validates() {
        let o = parse(&args("fig14 --prune-static 2.5e9")).unwrap();
        assert_eq!(o.prune_static, Some(2.5e9));
        assert!(
            o.uses_fault_tolerance(),
            "pruning must route through the isolated sweep"
        );
        assert_eq!(o.sweep_options().prune_static, Some(2.5e9));
        let d = parse(&args("fig14")).unwrap();
        assert_eq!(d.prune_static, None);
        assert_eq!(d.sweep_options().prune_static, None);
        assert!(parse(&args("fig14 --prune-static")).is_err());
        assert!(parse(&args("fig14 --prune-static 0")).is_err());
        assert!(parse(&args("fig14 --prune-static -5")).is_err());
        assert!(parse(&args("fig14 --prune-static nan")).is_err());
        assert!(
            parse(&args("fig14 --prune-static 1e9 --trace-dir t")).is_err(),
            "pruning conflicts with tracing like the other run_checked flags"
        );
    }

    #[test]
    fn fault_tolerance_flags_parse() {
        let o = parse(&args(
            "fig14 --deadline-ms 5000 --retries 2 --backoff-ms 10 \
             --checkpoint j.jsonl --resume --inject panic@pr-ca --inject transient@cg-gy:2",
        ))
        .unwrap();
        assert_eq!(o.deadline_ms, Some(5000));
        assert_eq!(o.retries, 2);
        assert_eq!(o.backoff_ms, 10);
        assert_eq!(o.checkpoint, Some("j.jsonl".into()));
        assert!(o.resume);
        assert_eq!(o.inject.len(), 2);
        assert!(o.uses_fault_tolerance());
        let so = o.sweep_options();
        assert_eq!(so.deadline, Some(std::time::Duration::from_millis(5000)));
        assert_eq!(so.retry.max_attempts, 3);
        assert_eq!(so.retry.backoff_base_ms, 10);
        assert!(so.resume);
        // defaults: fault tolerance off, single attempt
        let d = parse(&args("fig14")).unwrap();
        assert!(!d.uses_fault_tolerance());
        assert_eq!(d.sweep_options().retry.max_attempts, 1);
        assert_eq!(d.sweep_options().deadline, None);
    }

    #[test]
    fn fault_tolerance_flags_are_validated() {
        assert!(parse(&args("fig14 --resume")).is_err(), "--resume alone");
        assert!(
            parse(&args("fig14 --trace-dir t --retries 1")).is_err(),
            "fault flags conflict with tracing"
        );
        assert!(parse(&args("fig14 --inject frob@pr-ca")).is_err());
        assert!(parse(&args("fig14 --inject")).is_err());
        assert!(parse(&args("fig14 --deadline-ms")).is_err());
        assert!(parse(&args("fig14 --retries -1")).is_err());
        assert!(parse(&args("fig14 --checkpoint")).is_err());
    }

    #[test]
    fn mtx_dir_selects_matrixmarket_source() {
        let o = parse(&args("table1 --mtx /data/mtx --scale 1")).unwrap();
        assert_eq!(o.source, SourceConfig::MatrixMarket("/data/mtx".into()));
        let ctx = o.context();
        assert_eq!(
            serde_json::to_string(&ctx.source.describe()).unwrap(),
            r#"{"MatrixMarket":"/data/mtx"}"#
        );
        assert_eq!(ctx.scale, 1);
    }

    #[test]
    fn slab_dir_selects_slab_source() {
        let o = parse(&args("table1 --slab /data/slabs")).unwrap();
        assert_eq!(o.source, SourceConfig::Slab("/data/slabs".into()));
        // default stays synthetic; the two file sources are exclusive
        assert_eq!(
            parse(&args("table1")).unwrap().source,
            SourceConfig::Synthetic
        );
        assert!(parse(&args("table1 --mtx a --slab b")).is_err());
        assert!(parse(&args("table1 --slab b --mtx a")).is_err());
        assert!(parse(&args("table1 --slab")).is_err());
    }

    #[test]
    fn convert_subcommand_parses_and_validates() {
        let o = parse(&args("convert --in graph.mtx --out graph.slab")).unwrap();
        assert_eq!(o.artifacts, vec!["convert"]);
        assert_eq!(o.convert_in, Some(PathBuf::from("graph.mtx")));
        assert_eq!(o.convert_out, Some(PathBuf::from("graph.slab")));
        assert!(!o.needs_sweep());
        // synthetic mode: --matrix/--scale instead of --in
        let s = parse(&args("convert --matrix wi --scale 45 --out wi.slab")).unwrap();
        assert_eq!(s.trace_matrix, MatrixId::Wi);
        assert_eq!(s.scale, 45);
        assert_eq!(s.convert_in, None);
        // `all` must not pull the subcommand in
        assert!(!parse(&args("all"))
            .unwrap()
            .artifacts
            .iter()
            .any(|a| a == "convert"));
        // errors
        assert!(parse(&args("convert")).is_err(), "needs --out");
        assert!(parse(&args("convert --in a.mtx")).is_err(), "needs --out");
        assert!(parse(&args("table1 --out x.slab")).is_err());
        assert!(parse(&args("table1 --in x.mtx")).is_err());
        assert!(parse(&args("convert --in")).is_err());
        assert!(parse(&args("convert --out")).is_err());
    }

    #[test]
    fn emit_graph_parses_and_validates() {
        let o = parse(&args("compile --expr x --emit graph")).unwrap();
        assert_eq!(o.emit.as_deref(), Some("graph"));
        assert_eq!(parse(&args("compile --expr x")).unwrap().emit, None);
        assert!(parse(&args("compile --expr x --emit")).is_err());
        assert!(parse(&args("compile --expr x --emit dot")).is_err());
        assert!(
            parse(&args("table1 --emit graph")).is_err(),
            "--emit without the compile subcommand"
        );
    }
}
