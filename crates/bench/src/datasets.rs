//! Scaled dataset loading for experiments.

use sparsepipe_tensor::{reorder, CooMatrix, DatasetSpec, MatrixId, MatrixStats};

/// Where experiment matrices come from.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum DataSource {
    /// Seeded synthetic stand-ins (see `sparsepipe_tensor::datasets`).
    Synthetic,
    /// Real MatrixMarket files `<dir>/<code>.mtx` (e.g. the paper's
    /// SuiteSparse matrices, when available locally).
    MatrixMarket(std::path::PathBuf),
}

/// Everything an experiment needs to obtain its matrices.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DataContext {
    /// Scale divisor for synthetic generation (also sets the buffer
    /// scaling; use 1 with real full-size matrices).
    pub scale: u64,
    /// Which Table-I matrices to cover.
    pub set: MatrixSet,
    /// Matrix source.
    pub source: DataSource,
}

impl DataContext {
    /// Synthetic datasets at `scale`.
    pub fn synthetic(set: MatrixSet, scale: u64) -> Self {
        DataContext {
            scale,
            set,
            source: DataSource::Synthetic,
        }
    }

    /// Loads all matrices in the context's set (in parallel).
    ///
    /// # Panics
    ///
    /// Panics if a MatrixMarket file is missing or malformed — the CLI
    /// surfaces this as an immediate, explicit failure.
    pub fn load(&self) -> Vec<ScaledDataset> {
        let ids = self.set.ids();
        let mut out: Vec<Option<ScaledDataset>> = (0..ids.len()).map(|_| None).collect();
        crossbeam::thread::scope(|s| {
            for (slot, &id) in out.iter_mut().zip(ids) {
                s.spawn(move |_| {
                    *slot = Some(self.load_one(id));
                });
            }
        })
        .expect("dataset loading threads must not panic");
        out.into_iter()
            .map(|d| d.expect("every slot filled"))
            .collect()
    }

    /// Loads one matrix.
    ///
    /// # Panics
    ///
    /// Panics on a missing/malformed MatrixMarket file.
    pub fn load_one(&self, id: MatrixId) -> ScaledDataset {
        match &self.source {
            DataSource::Synthetic => ScaledDataset::load(id, self.scale),
            DataSource::MatrixMarket(dir) => ScaledDataset::load_mtx(id, dir, self.scale),
        }
    }
}

/// One evaluation matrix at the experiment scale, with its preprocessed
/// (GraphOrder-reordered) variant and structural statistics.
#[derive(Debug, Clone)]
pub struct ScaledDataset {
    /// Which Table-I matrix this is.
    pub id: MatrixId,
    /// The scale divisor used.
    pub scale: u64,
    /// The generated matrix (original vertex order).
    pub matrix: CooMatrix,
    /// The matrix after GraphOrder row reordering (§IV-E1), used as the
    /// default Sparsepipe input so the per-call simulation does not repeat
    /// the offline preprocessing.
    pub reordered: CooMatrix,
    /// Structural statistics of the original matrix.
    pub stats: MatrixStats,
}

impl ScaledDataset {
    /// Generates one dataset at `scale`.
    pub fn load(id: MatrixId, scale: u64) -> Self {
        let spec = id.spec();
        let matrix = spec.generate(scale);
        let perm = reorder::graph_order(&matrix.to_csr(), 64);
        let reordered = matrix.permute_symmetric(&perm);
        let stats = MatrixStats::compute(&matrix);
        ScaledDataset {
            id,
            scale,
            matrix,
            reordered,
            stats,
        }
    }

    /// Loads one matrix from `<dir>/<code>.mtx` (real data; rows/cols must
    /// be square). The buffer still scales by `scale` (use 1 for full-size
    /// inputs).
    ///
    /// # Panics
    ///
    /// Panics if the file is missing, malformed, or non-square.
    pub fn load_mtx(id: MatrixId, dir: &std::path::Path, scale: u64) -> Self {
        let path = dir.join(format!("{}.mtx", id.code()));
        let file = std::fs::File::open(&path)
            .unwrap_or_else(|e| panic!("cannot open {}: {e}", path.display()));
        let matrix = sparsepipe_tensor::mm::read(std::io::BufReader::new(file))
            .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
        assert_eq!(
            matrix.nrows(),
            matrix.ncols(),
            "{}: OEI experiments need square matrices",
            path.display()
        );
        let perm = reorder::graph_order(&matrix.to_csr(), 64);
        let reordered = matrix.permute_symmetric(&perm);
        let stats = MatrixStats::compute(&matrix);
        ScaledDataset {
            id,
            scale,
            matrix,
            reordered,
            stats,
        }
    }

    /// The on-chip buffer size preserving the paper's buffer-to-footprint
    /// ratio at this scale.
    pub fn buffer_bytes(&self) -> usize {
        DatasetSpec::scaled_buffer_bytes(self.scale)
    }
}

/// Which matrices an experiment run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum MatrixSet {
    /// All nine Table-I matrices.
    Full,
    /// A three-matrix smoke subset (`ca`, `gy`, `bu`) for quick runs.
    Quick,
}

impl MatrixSet {
    /// The matrix ids in this set.
    pub fn ids(self) -> &'static [MatrixId] {
        match self {
            MatrixSet::Full => &MatrixId::ALL,
            MatrixSet::Quick => &[MatrixId::Ca, MatrixId::Gy, MatrixId::Bu],
        }
    }
}

/// Loads a set of datasets in parallel (one thread per matrix).
pub fn load_all(set: MatrixSet, scale: u64) -> Vec<ScaledDataset> {
    let ids = set.ids();
    let mut out: Vec<Option<ScaledDataset>> = (0..ids.len()).map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        for (slot, &id) in out.iter_mut().zip(ids) {
            s.spawn(move |_| {
                *slot = Some(ScaledDataset::load(id, scale));
            });
        }
    })
    .expect("dataset generation threads must not panic");
    out.into_iter()
        .map(|d| d.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_set_loads() {
        let ds = load_all(MatrixSet::Quick, 256);
        assert_eq!(ds.len(), 3);
        for d in &ds {
            assert_eq!(d.matrix.nnz(), d.reordered.nnz());
            assert!(d.buffer_bytes() > 0);
        }
    }

    #[test]
    fn reordering_preserves_structure() {
        let d = ScaledDataset::load(MatrixId::Gy, 64);
        assert_eq!(d.matrix.nrows(), d.reordered.nrows());
        assert_eq!(d.matrix.nnz(), d.reordered.nnz());
    }
}
