//! Scaled dataset loading for experiments.

use sparsepipe_tensor::{reorder, CooMatrix, DatasetSpec, MatrixId, MatrixStats};

use crate::error::BenchError;
use crate::executor::Executor;

/// Where experiment matrices come from.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum DataSource {
    /// Seeded synthetic stand-ins (see `sparsepipe_tensor::datasets`).
    Synthetic,
    /// Real MatrixMarket files `<dir>/<code>.mtx` (e.g. the paper's
    /// SuiteSparse matrices, when available locally).
    MatrixMarket(std::path::PathBuf),
}

/// Everything an experiment needs to obtain its matrices.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DataContext {
    /// Scale divisor for synthetic generation (also sets the buffer
    /// scaling; use 1 with real full-size matrices).
    pub scale: u64,
    /// Which Table-I matrices to cover.
    pub set: MatrixSet,
    /// Matrix source.
    pub source: DataSource,
}

impl DataContext {
    /// Synthetic datasets at `scale`.
    pub fn synthetic(set: MatrixSet, scale: u64) -> Self {
        DataContext {
            scale,
            set,
            source: DataSource::Synthetic,
        }
    }

    /// Loads all matrices in the context's set, fanned across `exec`'s
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Dataset`] for a missing or malformed
    /// MatrixMarket file.
    pub fn load(&self, exec: &Executor) -> Result<Vec<ScaledDataset>, BenchError> {
        let ids = self.set.ids();
        exec.run(ids, |&id| self.load_one(id)).into_iter().collect()
    }

    /// Loads one matrix.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Dataset`] for a missing or malformed
    /// MatrixMarket file (synthetic generation is infallible).
    pub fn load_one(&self, id: MatrixId) -> Result<ScaledDataset, BenchError> {
        match &self.source {
            DataSource::Synthetic => Ok(ScaledDataset::load(id, self.scale)),
            DataSource::MatrixMarket(dir) => ScaledDataset::load_mtx(id, dir, self.scale),
        }
    }
}

/// One evaluation matrix at the experiment scale, with its preprocessed
/// (GraphOrder-reordered) variant and structural statistics.
#[derive(Debug, Clone)]
pub struct ScaledDataset {
    /// Which Table-I matrix this is.
    pub id: MatrixId,
    /// The scale divisor used.
    pub scale: u64,
    /// The generated matrix (original vertex order).
    pub matrix: CooMatrix,
    /// The matrix after GraphOrder row reordering (§IV-E1), used as the
    /// default Sparsepipe input so the per-call simulation does not repeat
    /// the offline preprocessing.
    pub reordered: CooMatrix,
    /// Structural statistics of the original matrix.
    pub stats: MatrixStats,
}

impl ScaledDataset {
    /// Generates one dataset at `scale`.
    pub fn load(id: MatrixId, scale: u64) -> Self {
        let spec = id.spec();
        let matrix = spec.generate(scale);
        Self::from_matrix(id, scale, matrix)
    }

    /// Loads one matrix from `<dir>/<code>.mtx` (real data; rows/cols must
    /// be square). The buffer still scales by `scale` (use 1 for full-size
    /// inputs).
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Dataset`] if the file is missing, malformed,
    /// or non-square.
    pub fn load_mtx(id: MatrixId, dir: &std::path::Path, scale: u64) -> Result<Self, BenchError> {
        let path = dir.join(format!("{}.mtx", id.code()));
        let dataset_err = |message: String| BenchError::Dataset {
            matrix: id,
            message,
        };
        let file = std::fs::File::open(&path)
            .map_err(|e| dataset_err(format!("cannot open {}: {e}", path.display())))?;
        let matrix = sparsepipe_tensor::mm::read(std::io::BufReader::new(file))
            .map_err(|e| dataset_err(format!("cannot parse {}: {e}", path.display())))?;
        if matrix.nrows() != matrix.ncols() {
            return Err(dataset_err(format!(
                "{}: OEI experiments need square matrices, got {}x{}",
                path.display(),
                matrix.nrows(),
                matrix.ncols()
            )));
        }
        Ok(Self::from_matrix(id, scale, matrix))
    }

    fn from_matrix(id: MatrixId, scale: u64, matrix: CooMatrix) -> Self {
        let perm = reorder::graph_order(&matrix.to_csr(), 64);
        let reordered = matrix.permute_symmetric(&perm);
        let stats = MatrixStats::compute(&matrix);
        ScaledDataset {
            id,
            scale,
            matrix,
            reordered,
            stats,
        }
    }

    /// The on-chip buffer size preserving the paper's buffer-to-footprint
    /// ratio at this scale.
    pub fn buffer_bytes(&self) -> usize {
        DatasetSpec::scaled_buffer_bytes(self.scale)
    }
}

/// Which matrices an experiment run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum MatrixSet {
    /// All nine Table-I matrices.
    Full,
    /// A three-matrix smoke subset (`ca`, `gy`, `bu`) for quick runs.
    Quick,
}

impl MatrixSet {
    /// The matrix ids in this set.
    pub fn ids(self) -> &'static [MatrixId] {
        match self {
            MatrixSet::Full => &MatrixId::ALL,
            MatrixSet::Quick => &[MatrixId::Ca, MatrixId::Gy, MatrixId::Bu],
        }
    }
}

/// Generates a set of synthetic datasets in parallel (machine-wide pool).
pub fn load_all(set: MatrixSet, scale: u64) -> Vec<ScaledDataset> {
    Executor::new(0).run(set.ids(), |&id| ScaledDataset::load(id, scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_set_loads() {
        let ds = load_all(MatrixSet::Quick, 256);
        assert_eq!(ds.len(), 3);
        for d in &ds {
            assert_eq!(d.matrix.nnz(), d.reordered.nnz());
            assert!(d.buffer_bytes() > 0);
        }
    }

    #[test]
    fn reordering_preserves_structure() {
        let d = ScaledDataset::load(MatrixId::Gy, 64);
        assert_eq!(d.matrix.nrows(), d.reordered.nrows());
        assert_eq!(d.matrix.nnz(), d.reordered.nnz());
    }

    #[test]
    fn missing_mtx_is_a_dataset_error() {
        let ctx = DataContext {
            scale: 1,
            set: MatrixSet::Quick,
            source: DataSource::MatrixMarket("/nonexistent-mtx-dir".into()),
        };
        let err = ctx.load_one(MatrixId::Ca).unwrap_err();
        assert!(matches!(err, BenchError::Dataset { matrix, .. } if matrix == MatrixId::Ca));
        let err = ctx.load(&Executor::new(2)).unwrap_err();
        assert!(matches!(err, BenchError::Dataset { .. }));
    }
}
