//! Scaled dataset loading for experiments: the [`MatrixSource`] trait,
//! its built-in implementations (synthetic generation, MatrixMarket
//! files, binary slabs), and the [`DatasetSpec`] builder every consumer
//! — the sweep, the serve daemon's warm LRU, admission validation —
//! goes through.
//!
//! A source answers three questions: *what would this matrix look like
//! at this scale* (admission, no I/O), *give me the dataset*
//! (loading), and *how do I serialize as provenance* (checkpoint
//! digests, sweep JSON). Out-of-core inputs (slabs converted by
//! `experiments convert`, DESIGN.md §17) enter the same admission path
//! as synthetic stand-ins; nothing downstream knows where a matrix
//! came from.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use sparsepipe_tensor::{reorder, CooMatrix, MatrixId, MatrixStats};

use crate::error::BenchError;
use crate::executor::Executor;

/// A provider of evaluation matrices: synthetic stand-ins, MatrixMarket
/// files, binary slabs, or anything a caller implements.
///
/// All three built-in sources ([`SyntheticSource`],
/// [`MatrixMarketSource`], [`SlabSource`]) are usually reached through
/// [`SourceConfig::to_source`] (CLI / daemon configuration) or a
/// [`DatasetSpec`] (one matrix) / [`DataContext`] (a whole set).
pub trait MatrixSource: Send + Sync + std::fmt::Debug {
    /// The source's serialization form — embedded verbatim in sweep
    /// JSON and checkpoint context digests, so it must stay stable for
    /// a given configuration (`"Synthetic"`, `{"MatrixMarket": dir}`,
    /// `{"Slab": dir}` for the built-ins).
    fn describe(&self) -> serde::Value;

    /// Loads one matrix at `scale`.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Dataset`] for a missing or malformed
    /// backing file (synthetic generation is infallible).
    fn load(&self, id: MatrixId, scale: u64) -> Result<ScaledDataset, BenchError>;

    /// Row count the admission check sees for `id` at `scale`, without
    /// touching storage. Defaults to the synthetic generator's scaling
    /// law, which every built-in source follows.
    fn rows_at_scale(&self, id: MatrixId, scale: u64) -> u64 {
        id.spec().rows_at_scale(scale)
    }

    /// Whether `scale` keeps `id` meaningfully sized (the generator's
    /// 16-row floor).
    fn supports_scale(&self, id: MatrixId, scale: u64) -> bool {
        id.spec().supports_scale(scale)
    }
}

/// Seeded synthetic stand-ins (see `sparsepipe_tensor::datasets`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SyntheticSource;

impl MatrixSource for SyntheticSource {
    fn describe(&self) -> serde::Value {
        serde::Value::Str("Synthetic".to_string())
    }

    fn load(&self, id: MatrixId, scale: u64) -> Result<ScaledDataset, BenchError> {
        Ok(ScaledDataset::from_matrix(
            id,
            scale,
            id.spec().generate(scale),
        ))
    }
}

/// Real MatrixMarket files `<dir>/<code>.mtx` (e.g. the paper's
/// SuiteSparse matrices, when available locally). `scale` still drives
/// buffer sizing; the file contents are used as-is.
#[derive(Debug, Clone)]
pub struct MatrixMarketSource {
    dir: PathBuf,
}

impl MatrixMarketSource {
    /// A source reading `<dir>/<code>.mtx`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        MatrixMarketSource { dir: dir.into() }
    }
}

impl MatrixSource for MatrixMarketSource {
    fn describe(&self) -> serde::Value {
        serde::Value::Map(vec![(
            "MatrixMarket".to_string(),
            serde::Serialize::to_value(&self.dir),
        )])
    }

    fn load(&self, id: MatrixId, scale: u64) -> Result<ScaledDataset, BenchError> {
        let path = self.dir.join(format!("{}.mtx", id.code()));
        let dataset_err = |message: String| BenchError::Dataset {
            matrix: id,
            message,
        };
        let file = std::fs::File::open(&path)
            .map_err(|e| dataset_err(format!("cannot open {}: {e}", path.display())))?;
        let matrix = sparsepipe_tensor::mm::read(std::io::BufReader::new(file))
            .map_err(|e| dataset_err(format!("cannot parse {}: {e}", path.display())))?;
        if matrix.nrows() != matrix.ncols() {
            return Err(dataset_err(format!(
                "{}: OEI experiments need square matrices, got {}x{}",
                path.display(),
                matrix.nrows(),
                matrix.ncols()
            )));
        }
        Ok(ScaledDataset::from_matrix(id, scale, matrix))
    }
}

/// Binary slab files `<dir>/<code>.s<scale>.slab` written by
/// `experiments convert` (see `sparsepipe_core::slab`). Loading decodes
/// straight into an arena — no MatrixMarket parse, no triplet list —
/// and the slab's fingerprint is verified on every load.
#[derive(Debug, Clone)]
pub struct SlabSource {
    dir: PathBuf,
}

impl SlabSource {
    /// A source reading `<dir>/<code>.s<scale>.slab`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SlabSource { dir: dir.into() }
    }

    /// The slab path this source reads for `id` at `scale`.
    pub fn slab_path(dir: &Path, id: MatrixId, scale: u64) -> PathBuf {
        dir.join(format!("{}.s{scale}.slab", id.code()))
    }
}

impl MatrixSource for SlabSource {
    fn describe(&self) -> serde::Value {
        serde::Value::Map(vec![(
            "Slab".to_string(),
            serde::Serialize::to_value(&self.dir),
        )])
    }

    fn load(&self, id: MatrixId, scale: u64) -> Result<ScaledDataset, BenchError> {
        let path = Self::slab_path(&self.dir, id, scale);
        let (arena, _header) =
            sparsepipe_core::slab::read_file(&path).map_err(|e| BenchError::Dataset {
                matrix: id,
                message: format!("cannot load slab {}: {e}", path.display()),
            })?;
        Ok(ScaledDataset::from_matrix(id, scale, arena.to_coo()))
    }
}

/// A closed, serializable, comparable description of a built-in source
/// — what configuration surfaces (CLI flags, [`ServeConfig`]
/// (crate::serve::ServeConfig)) hold, so they stay `Eq` while the
/// loading path works through `dyn` [`MatrixSource`].
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub enum SourceConfig {
    /// Seeded synthetic stand-ins.
    #[default]
    Synthetic,
    /// MatrixMarket files `<dir>/<code>.mtx`.
    MatrixMarket(PathBuf),
    /// Binary slabs `<dir>/<code>.s<scale>.slab`.
    Slab(PathBuf),
}

impl SourceConfig {
    /// Instantiates the described source.
    pub fn to_source(&self) -> Arc<dyn MatrixSource> {
        match self {
            SourceConfig::Synthetic => Arc::new(SyntheticSource),
            SourceConfig::MatrixMarket(dir) => Arc::new(MatrixMarketSource::new(dir.clone())),
            SourceConfig::Slab(dir) => Arc::new(SlabSource::new(dir.clone())),
        }
    }
}

/// One matrix request against one source: the single admission and
/// loading path for the sweep, the serve daemon, and ad-hoc tools.
///
/// ```
/// use sparsepipe_bench::datasets::DatasetSpec;
/// use sparsepipe_tensor::MatrixId;
///
/// let spec = DatasetSpec::new(MatrixId::Ca, 256); // synthetic default
/// spec.admit(1).expect("ca supports scale 256");
/// let dataset = spec.load().expect("synthetic loads are infallible");
/// assert_eq!(dataset.id, MatrixId::Ca);
/// ```
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    id: MatrixId,
    scale: u64,
    source: Arc<dyn MatrixSource>,
}

impl DatasetSpec {
    /// A spec for `id` at `scale` against the synthetic source.
    pub fn new(id: MatrixId, scale: u64) -> Self {
        DatasetSpec {
            id,
            scale,
            source: Arc::new(SyntheticSource),
        }
    }

    /// Replaces the source (builder style).
    #[must_use]
    pub fn with_source(mut self, source: Arc<dyn MatrixSource>) -> Self {
        self.source = source;
        self
    }

    /// The matrix this spec requests.
    pub fn id(&self) -> MatrixId {
        self.id
    }

    /// The scale divisor.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// The admission check every consumer runs before loading: the
    /// source must support the scale, and the scaled matrix must keep
    /// at least `min_rows` rows (an app floor; pass 1 for none). The
    /// error pair is `(stable code, message)` — the wire protocol's
    /// `dataset` family.
    ///
    /// # Errors
    ///
    /// `("dataset", message)` describing the violated constraint.
    pub fn admit(&self, min_rows: u32) -> Result<(), (&'static str, String)> {
        if !self.source.supports_scale(self.id, self.scale) {
            return Err((
                "dataset",
                format!(
                    "scale {} shrinks `{}` below the 16-row floor (max scale {})",
                    self.scale,
                    self.id.code(),
                    self.id.spec().max_scale()
                ),
            ));
        }
        let rows = self.source.rows_at_scale(self.id, self.scale);
        if rows < u64::from(min_rows) {
            return Err((
                "dataset",
                format!(
                    "scale {} leaves `{}` with {rows} rows, below the minimum of {min_rows}",
                    self.scale,
                    self.id.code()
                ),
            ));
        }
        Ok(())
    }

    /// Loads the dataset from the spec's source.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Dataset`] for a missing or malformed
    /// backing file.
    pub fn load(&self) -> Result<ScaledDataset, BenchError> {
        self.source.load(self.id, self.scale)
    }
}

/// Everything an experiment needs to obtain its matrices.
#[derive(Debug, Clone)]
pub struct DataContext {
    /// Scale divisor for synthetic generation (also sets the buffer
    /// scaling; use 1 with real full-size matrices).
    pub scale: u64,
    /// Which Table-I matrices to cover.
    pub set: MatrixSet,
    /// Matrix source.
    pub source: Arc<dyn MatrixSource>,
}

/// Hand-written so the serialized form (sweep JSON, checkpoint context
/// digests) is identical to what the old closed-enum derive produced:
/// `{"scale": …, "set": …, "source": "Synthetic" | {"MatrixMarket": …}}`.
impl serde::Serialize for DataContext {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("scale".to_string(), serde::Serialize::to_value(&self.scale)),
            ("set".to_string(), serde::Serialize::to_value(&self.set)),
            ("source".to_string(), self.source.describe()),
        ])
    }
}

impl DataContext {
    /// Synthetic datasets at `scale`.
    pub fn synthetic(set: MatrixSet, scale: u64) -> Self {
        Self::with_source(set, scale, Arc::new(SyntheticSource))
    }

    /// Datasets at `scale` drawn from `source`.
    pub fn with_source(set: MatrixSet, scale: u64, source: Arc<dyn MatrixSource>) -> Self {
        DataContext { scale, set, source }
    }

    /// The [`DatasetSpec`] this context uses for `id`.
    pub fn spec(&self, id: MatrixId) -> DatasetSpec {
        DatasetSpec::new(id, self.scale).with_source(Arc::clone(&self.source))
    }

    /// Loads all matrices in the context's set, fanned across `exec`'s
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Dataset`] for a missing or malformed
    /// backing file.
    pub fn load(&self, exec: &Executor) -> Result<Vec<ScaledDataset>, BenchError> {
        let ids = self.set.ids();
        exec.run(ids, |&id| self.load_one(id)).into_iter().collect()
    }

    /// Loads one matrix.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Dataset`] for a missing or malformed
    /// backing file (synthetic generation is infallible).
    pub fn load_one(&self, id: MatrixId) -> Result<ScaledDataset, BenchError> {
        self.spec(id).load()
    }
}

/// One evaluation matrix at the experiment scale, with its preprocessed
/// (GraphOrder-reordered) variant and structural statistics.
#[derive(Debug, Clone)]
pub struct ScaledDataset {
    /// Which Table-I matrix this is.
    pub id: MatrixId,
    /// The scale divisor used.
    pub scale: u64,
    /// The generated matrix (original vertex order).
    pub matrix: CooMatrix,
    /// The matrix after GraphOrder row reordering (§IV-E1), used as the
    /// default Sparsepipe input so the per-call simulation does not repeat
    /// the offline preprocessing.
    pub reordered: CooMatrix,
    /// Structural statistics of the original matrix.
    pub stats: MatrixStats,
}

impl ScaledDataset {
    /// Generates one synthetic dataset at `scale`.
    #[deprecated(note = "use `DatasetSpec::new(id, scale).load()` — \
                         every source goes through one admission path")]
    pub fn load(id: MatrixId, scale: u64) -> Self {
        Self::from_matrix(id, scale, id.spec().generate(scale))
    }

    /// Loads one matrix from `<dir>/<code>.mtx`.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Dataset`] if the file is missing, malformed,
    /// or non-square.
    #[deprecated(note = "use `DatasetSpec::new(id, scale)\
                         .with_source(Arc::new(MatrixMarketSource::new(dir))).load()`")]
    pub fn load_mtx(id: MatrixId, dir: &Path, scale: u64) -> Result<Self, BenchError> {
        MatrixMarketSource::new(dir).load(id, scale)
    }

    /// Derives the reordered variant and statistics for a loaded matrix
    /// — the one constructor every [`MatrixSource`] funnels through.
    fn from_matrix(id: MatrixId, scale: u64, matrix: CooMatrix) -> Self {
        let perm = reorder::graph_order(&matrix.to_csr(), 64);
        let reordered = matrix.permute_symmetric(&perm);
        let stats = MatrixStats::compute(&matrix);
        ScaledDataset {
            id,
            scale,
            matrix,
            reordered,
            stats,
        }
    }

    /// The on-chip buffer size preserving the paper's buffer-to-footprint
    /// ratio at this scale.
    pub fn buffer_bytes(&self) -> usize {
        sparsepipe_tensor::DatasetSpec::scaled_buffer_bytes(self.scale)
    }
}

/// Where experiment matrices come from (superseded closed enum).
#[deprecated(note = "use a `MatrixSource` (via `SourceConfig` or \
                     `DatasetSpec::with_source`); sources are open, the enum is not")]
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum DataSource {
    /// Seeded synthetic stand-ins (see `sparsepipe_tensor::datasets`).
    Synthetic,
    /// Real MatrixMarket files `<dir>/<code>.mtx`.
    MatrixMarket(PathBuf),
}

#[allow(deprecated)]
impl DataSource {
    /// The equivalent open-world source.
    pub fn to_source(&self) -> Arc<dyn MatrixSource> {
        match self {
            DataSource::Synthetic => Arc::new(SyntheticSource),
            DataSource::MatrixMarket(dir) => Arc::new(MatrixMarketSource::new(dir.clone())),
        }
    }
}

/// Which matrices an experiment run covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum MatrixSet {
    /// All nine Table-I matrices.
    Full,
    /// A three-matrix smoke subset (`ca`, `gy`, `bu`) for quick runs.
    Quick,
}

impl MatrixSet {
    /// The matrix ids in this set.
    pub fn ids(self) -> &'static [MatrixId] {
        match self {
            MatrixSet::Full => &MatrixId::ALL,
            MatrixSet::Quick => &[MatrixId::Ca, MatrixId::Gy, MatrixId::Bu],
        }
    }
}

/// Generates a set of synthetic datasets in parallel (machine-wide pool).
pub fn load_all(set: MatrixSet, scale: u64) -> Vec<ScaledDataset> {
    Executor::new(0).run(set.ids(), |&id| {
        DatasetSpec::new(id, scale)
            .load()
            .expect("synthetic loads are infallible")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_set_loads() {
        let ds = load_all(MatrixSet::Quick, 256);
        assert_eq!(ds.len(), 3);
        for d in &ds {
            assert_eq!(d.matrix.nnz(), d.reordered.nnz());
            assert!(d.buffer_bytes() > 0);
        }
    }

    #[test]
    fn reordering_preserves_structure() {
        let d = DatasetSpec::new(MatrixId::Gy, 64).load().unwrap();
        assert_eq!(d.matrix.nrows(), d.reordered.nrows());
        assert_eq!(d.matrix.nnz(), d.reordered.nnz());
    }

    #[test]
    fn missing_mtx_is_a_dataset_error() {
        let ctx = DataContext::with_source(
            MatrixSet::Quick,
            1,
            SourceConfig::MatrixMarket("/nonexistent-mtx-dir".into()).to_source(),
        );
        let err = ctx.load_one(MatrixId::Ca).unwrap_err();
        assert!(matches!(err, BenchError::Dataset { matrix, .. } if matrix == MatrixId::Ca));
        let err = ctx.load(&Executor::new(2)).unwrap_err();
        assert!(matches!(err, BenchError::Dataset { .. }));
    }

    #[test]
    fn missing_slab_is_a_dataset_error() {
        let spec = DatasetSpec::new(MatrixId::Ca, 64)
            .with_source(SourceConfig::Slab("/nonexistent-slab-dir".into()).to_source());
        let err = spec.load().unwrap_err();
        assert!(matches!(err, BenchError::Dataset { matrix, .. } if matrix == MatrixId::Ca));
        assert!(err.to_string().contains("ca.s64.slab"), "{err}");
    }

    #[test]
    fn slab_source_round_trips_through_a_written_slab() {
        let dir = std::env::temp_dir().join(format!("sparsepipe-slabsrc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let synthetic = DatasetSpec::new(MatrixId::Ca, 256).load().unwrap();
        let arena = sparsepipe_core::MatrixArena::from_coo(&synthetic.matrix);
        sparsepipe_core::slab::write_file(&arena, &SlabSource::slab_path(&dir, MatrixId::Ca, 256))
            .unwrap();

        let loaded = DatasetSpec::new(MatrixId::Ca, 256)
            .with_source(Arc::new(SlabSource::new(&dir)))
            .load()
            .unwrap();
        assert_eq!(loaded.matrix, synthetic.matrix);
        assert_eq!(loaded.reordered, synthetic.reordered);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn admission_is_uniform_across_sources() {
        // scale beyond the generator's floor is refused by every source
        let huge = MatrixId::Ca.spec().max_scale() + 1;
        for source in [
            SourceConfig::Synthetic,
            SourceConfig::MatrixMarket("/x".into()),
            SourceConfig::Slab("/x".into()),
        ] {
            let spec = DatasetSpec::new(MatrixId::Ca, huge).with_source(source.to_source());
            let (code, msg) = spec.admit(1).unwrap_err();
            assert_eq!(code, "dataset");
            assert!(msg.contains("floor"), "{source:?}: {msg}");
        }
        // the app min-rows floor uses the same path
        let spec = DatasetSpec::new(MatrixId::Ca, 1024);
        if spec.admit(1).is_ok() {
            let rows = MatrixId::Ca.spec().rows_at_scale(1024);
            let (code, _) = spec.admit(u32::MAX).unwrap_err();
            assert_eq!(code, "dataset");
            assert!(rows < u64::from(u32::MAX));
        }
    }

    #[test]
    fn context_serialization_is_stable() {
        // the byte form feeds checkpoint digests and golden sweep JSON:
        // it must match what the old closed-enum derive emitted
        let ctx = DataContext::synthetic(MatrixSet::Quick, 64);
        assert_eq!(
            serde_json::to_string(&ctx).unwrap(),
            r#"{"scale":64,"set":"Quick","source":"Synthetic"}"#
        );
        let ctx = DataContext::with_source(
            MatrixSet::Full,
            1,
            SourceConfig::MatrixMarket("/data/mtx".into()).to_source(),
        );
        assert_eq!(
            serde_json::to_string(&ctx).unwrap(),
            r#"{"scale":1,"set":"Full","source":{"MatrixMarket":"/data/mtx"}}"#
        );
        let ctx = DataContext::with_source(
            MatrixSet::Full,
            2,
            SourceConfig::Slab("/data/slabs".into()).to_source(),
        );
        assert_eq!(
            serde_json::to_string(&ctx).unwrap(),
            r#"{"scale":2,"set":"Full","source":{"Slab":"/data/slabs"}}"#
        );
    }
}
