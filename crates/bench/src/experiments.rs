//! One generator per table/figure of the paper's evaluation.
//!
//! Each generator returns `Result<`[`Report`]`, `[`BenchError`]`>` whose
//! `body` is the regenerated artifact as plain text; simulation-heavy
//! generators fan their points across the caller's [`Executor`].
//! `EXPERIMENTS.md` records how each measured number compares with the
//! paper's.

use std::path::Path;

use sparsepipe_apps::{registry, StaApp};
use sparsepipe_core::{MemoryConfig, Preprocessing, ReorderKind, SimOutcome, SparsepipeConfig};
use sparsepipe_tensor::{livesweep, BlockedDualStorage, CooMatrix, DualStorage, MatrixId};

use crate::datasets::DataContext;
use crate::error::BenchError;
use crate::executor::{Executor, PointRecord};
use crate::geomean;
use crate::sweep::{self, Sweep};
use crate::table::{fmt_pct, fmt_x, Table};

/// Looks an app up by name, compiling the registry miss into a
/// [`BenchError::UnknownApp`].
fn app_by_name(name: &str) -> Result<StaApp, BenchError> {
    registry::by_name(name).ok_or_else(|| BenchError::UnknownApp(name.into()))
}

/// Runs one simulation point through the [`sparsepipe_core::SimRequest`]
/// driver, mapping the simulator error to [`BenchError::Sim`].
fn sim_point(
    app: &StaApp,
    matrix_id: MatrixId,
    matrix: &CooMatrix,
    iterations: usize,
    cfg: SparsepipeConfig,
) -> Result<SimOutcome, BenchError> {
    let program = app.compile().map_err(|e| BenchError::Compile {
        app: app.name.into(),
        message: e.to_string(),
    })?;
    sparsepipe_core::SimRequest::new(&program, matrix)
        .iterations(iterations)
        .config(cfg)
        .run()
        .map_err(|source| BenchError::Sim {
            app: app.name.into(),
            matrix: matrix_id,
            source,
        })
}

/// A regenerated table/figure.
#[derive(Debug, Clone)]
pub struct Report {
    /// Paper artifact id (`table1`, `fig14`, …).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// The artifact body (text table / series).
    pub body: String,
}

impl Report {
    /// Renders with a header line.
    pub fn render(&self) -> String {
        format!("== {} — {} ==\n{}\n", self.id, self.title, self.body)
    }
}

/// **Table I** — portion of the sparse matrix live on chip under OEI.
///
/// # Errors
///
/// Returns [`BenchError::Dataset`] if a matrix fails to load.
pub fn table1(ctx: &DataContext, exec: &Executor) -> Result<Report, BenchError> {
    let datasets = ctx.load(exec)?;
    let mut t = Table::new(
        [
            "matrix",
            "rows/cols",
            "nnz",
            "max (%)",
            "avg (%)",
            "paper max",
            "paper avg",
        ]
        .map(String::from)
        .to_vec(),
    );
    for d in &datasets {
        let stats = livesweep::sweep(&d.matrix);
        let spec = d.id.spec();
        t.row(vec![
            d.id.code().into(),
            d.matrix.nrows().to_string(),
            d.matrix.nnz().to_string(),
            fmt_pct(stats.max_percent()),
            fmt_pct(stats.avg_percent()),
            fmt_pct(spec.paper_max_pct),
            fmt_pct(spec.paper_avg_pct),
        ]);
    }
    Ok(Report {
        id: "table1",
        title: format!(
            "on-chip live set under the OEI dataflow (scale 1/{})",
            ctx.scale
        ),
        body: t.render(),
    })
}

/// **Table II** — evaluated memory configurations.
///
/// # Errors
///
/// Infallible in practice; `Result` for a uniform generator signature.
pub fn table2() -> Result<Report, BenchError> {
    let mut t = Table::new(
        [
            "system",
            "bandwidth (GB/s)",
            "latency R/W (ns)",
            "DRAM tech",
        ]
        .map(String::from)
        .to_vec(),
    );
    let rows: [(&str, MemoryConfig); 4] = [
        ("CPU (AMD 5800X3D)", MemoryConfig::ddr4()),
        ("GPU (NVIDIA 4070)", MemoryConfig::gddr6x()),
        ("Sparsepipe (iso-CPU)", MemoryConfig::ddr4()),
        ("Sparsepipe (iso-GPU)", MemoryConfig::gddr6x()),
    ];
    for (name, m) in rows {
        t.row(vec![
            name.into(),
            format!("{:.0}", m.bandwidth_gbps),
            format!("{}/{}", m.read_latency_ns, m.write_latency_ns),
            m.tech.into(),
        ]);
    }
    Ok(Report {
        id: "table2",
        title: "memory configurations evaluated".into(),
        body: t.render(),
    })
}

/// **Table III** — benchmark applications.
///
/// # Errors
///
/// Returns [`BenchError::Compile`] if a registered app fails to compile.
pub fn table3() -> Result<Report, BenchError> {
    let mut t = Table::new(
        [
            "app",
            "vxm semiring",
            "reuse pattern",
            "domain",
            "OEI verified",
        ]
        .map(String::from)
        .to_vec(),
    );
    for app in registry::all() {
        let program = app.compile().map_err(|e| BenchError::Compile {
            app: app.name.into(),
            message: e.to_string(),
        })?;
        t.row(vec![
            app.name.into(),
            app.semiring.to_string(),
            match app.reuse {
                sparsepipe_apps::ReusePattern::CrossIteration => {
                    "cross-iteration, producer-consumer".into()
                }
                sparsepipe_apps::ReusePattern::ProducerConsumer => "producer-consumer".into(),
            },
            format!("{:?}", app.domain),
            if program.profile.has_oei { "yes" } else { "no" }.into(),
        ]);
    }
    Ok(Report {
        id: "table3",
        title: "benchmark STA applications".into(),
        body: t.render(),
    })
}

/// **Fig 14** — Sparsepipe speedup over the idealized sparse accelerator.
///
/// # Errors
///
/// Infallible in practice; `Result` for a uniform generator signature.
pub fn fig14(sweep: &Sweep) -> Result<Report, BenchError> {
    let matrices = sweep.matrices();
    let mut header = vec!["app".to_string()];
    header.extend(matrices.iter().map(|m| m.code().to_string()));
    header.push("geomean".into());
    let mut t = Table::new(header);
    let mut oei_geo = Vec::new();
    let mut all_speedups = Vec::new();
    for app in sweep.app_names() {
        let entries = sweep.by_app(app);
        let mut row = vec![app.to_string()];
        let mut speedups = Vec::new();
        for m in &matrices {
            if let Some(e) = entries.iter().find(|e| e.matrix == *m) {
                let s = e.speedup_vs_ideal();
                speedups.push(s);
                row.push(fmt_x(s));
            } else {
                row.push("-".into());
            }
        }
        let g = geomean(&speedups);
        row.push(fmt_x(g));
        t.row(row);
        if entries.first().is_some_and(|e| e.has_oei) {
            oei_geo.push(g);
        }
        all_speedups.extend(speedups);
    }
    let max = all_speedups.iter().copied().fold(0.0f64, f64::max);
    let body = format!(
        "{}\nmax speedup: {} (paper: up to 3.59x)\nOEI-app geomean range: {} – {} (paper: 1.21x – 2.62x)\n",
        t.render(),
        fmt_x(max),
        fmt_x(oei_geo.iter().copied().fold(f64::INFINITY, f64::min)),
        fmt_x(oei_geo.iter().copied().fold(0.0, f64::max)),
    );
    Ok(Report {
        id: "fig14",
        title: "speedup of Sparsepipe over the baseline (ideal) accelerator".into(),
        body,
    })
}

/// **Fig 15** — bandwidth utilization over execution for the four
/// highlighted workloads (sampled at every 4%), simulated in parallel
/// across `exec`'s pool.
///
/// # Errors
///
/// Returns the first dataset/compile/simulation error in pair order.
pub fn fig15(ctx: &DataContext, exec: &Executor) -> Result<Report, BenchError> {
    let pairs = [
        ("sssp", MatrixId::Bu),
        ("knn", MatrixId::Eu),
        ("kcore", MatrixId::Eu),
        ("sssp", MatrixId::Wi),
    ];
    let results = exec.run(&pairs, |&(app_name, matrix_id)| {
        let dataset = ctx.load_one(matrix_id)?;
        let app = app_by_name(app_name)?;
        let cfg = sweep::sparsepipe_config(&dataset);
        sim_point(
            &app,
            matrix_id,
            &dataset.reordered,
            app.default_iterations,
            cfg,
        )
    });
    let mut body = String::new();
    for (result, (app_name, matrix_id)) in results.into_iter().zip(pairs) {
        let outcome = result?;
        exec.record(PointRecord::from_telemetry(
            format!("fig15:{}-{}", app_name, matrix_id.code()),
            &outcome.telemetry,
        ));
        let report = &outcome.report;
        body.push_str(&format!(
            "--- {}-{} (avg util {}) ---\n",
            app_name,
            matrix_id.code(),
            fmt_pct(report.avg_bw_utilization * 100.0)
        ));
        body.push_str("  %run  util  [csc|csr|vec]  bar\n");
        for (i, s) in report.bw_trace.iter().enumerate() {
            let bar_len = (s.utilization * 40.0).round() as usize;
            body.push_str(&format!(
                "  {:>3}%  {:>5.1}  [{:>4.1}|{:>4.1}|{:>4.1}]  {}\n",
                (i + 1) * 4,
                s.utilization * 100.0,
                s.csc_frac * 100.0,
                s.csr_frac * 100.0,
                s.vector_frac * 100.0,
                "#".repeat(bar_len)
            ));
        }
    }
    Ok(Report {
        id: "fig15",
        title: "memory bandwidth utilization during execution (4% samples)".into(),
        body,
    })
}

/// **Fig 16** — speedup over the CPU implementation (iso-GPU and iso-CPU).
///
/// # Errors
///
/// Infallible in practice; `Result` for a uniform generator signature.
pub fn fig16(sweep: &Sweep) -> Result<Report, BenchError> {
    let matrices = sweep.matrices();
    let mut header = vec!["app".to_string()];
    header.extend(matrices.iter().map(|m| m.code().to_string()));
    header.push("geomean".into());
    header.push("iso-CPU geomean".into());
    let mut t = Table::new(header);
    let mut geos = Vec::new();
    let mut iso_geos = Vec::new();
    let mut max_speedup = 0.0f64;
    for app in sweep.app_names() {
        let entries = sweep.by_app(app);
        let mut row = vec![app.to_string()];
        let mut speedups = Vec::new();
        let mut iso = Vec::new();
        for m in &matrices {
            if let Some(e) = entries.iter().find(|e| e.matrix == *m) {
                let s = e.speedup_vs_cpu();
                max_speedup = max_speedup.max(s);
                speedups.push(s);
                iso.push(e.iso_cpu_speedup_vs_cpu());
                row.push(fmt_x(s));
            } else {
                row.push("-".into());
            }
        }
        let g = geomean(&speedups);
        let gi = geomean(&iso);
        row.push(fmt_x(g));
        row.push(fmt_x(gi));
        t.row(row);
        geos.push(g);
        iso_geos.push(gi);
    }
    let body = format!(
        "{}\nper-app geomean range: {} – {} (paper: 12.20x – 35.14x)\nmax: {} (paper: up to 164.84x on gcn)\niso-CPU geomean range: {} – {} (paper: 1.31x – 3.57x)\n",
        t.render(),
        fmt_x(geos.iter().copied().fold(f64::INFINITY, f64::min)),
        fmt_x(geos.iter().copied().fold(0.0, f64::max)),
        fmt_x(max_speedup),
        fmt_x(iso_geos.iter().copied().fold(f64::INFINITY, f64::min)),
        fmt_x(iso_geos.iter().copied().fold(0.0, f64::max)),
    );
    Ok(Report {
        id: "fig16",
        title: "speedup of Sparsepipe over the CPU STA framework".into(),
        body,
    })
}

/// **Fig 17** — speedup over GPU frameworks (bfs, kcore, pr, sssp).
///
/// # Errors
///
/// Infallible in practice; `Result` for a uniform generator signature.
pub fn fig17(sweep: &Sweep) -> Result<Report, BenchError> {
    let subset = ["bfs", "kcore", "pr", "sssp"];
    let mut t = Table::new(["app", "geomean speedup vs GPU"].map(String::from).to_vec());
    let mut all = Vec::new();
    for app in subset {
        let speedups: Vec<f64> = sweep
            .by_app(app)
            .iter()
            .map(|e| e.speedup_vs_gpu())
            .collect();
        let g = geomean(&speedups);
        t.row(vec![app.into(), fmt_x(g)]);
        all.extend(speedups);
    }
    let body = format!(
        "{}\noverall geomean: {} (paper: 4.65x)\n",
        t.render(),
        fmt_x(geomean(&all))
    );
    Ok(Report {
        id: "fig17",
        title: "speedup of Sparsepipe over GPU implementations".into(),
        body,
    })
}

/// **Fig 18** — performance relative to the oracle accelerator.
///
/// # Errors
///
/// Infallible in practice; `Result` for a uniform generator signature.
pub fn fig18(sweep: &Sweep) -> Result<Report, BenchError> {
    let matrices = sweep.matrices();
    let mut header = vec!["app".to_string()];
    header.extend(matrices.iter().map(|m| m.code().to_string()));
    let mut t = Table::new(header);
    let mut all = Vec::new();
    for app in sweep.app_names() {
        let entries = sweep.by_app(app);
        let mut row = vec![app.to_string()];
        for m in &matrices {
            if let Some(e) = entries.iter().find(|e| e.matrix == *m) {
                let f = e.fraction_of_oracle() * 100.0;
                all.push(f);
                row.push(fmt_pct(f));
            } else {
                row.push("-".into());
            }
        }
        t.row(row);
    }
    let avg = all.iter().sum::<f64>() / all.len().max(1) as f64;
    Ok(Report {
        id: "fig18",
        title: "performance vs. an accelerator with perfect inter-operator reuse".into(),
        body: format!(
            "{}\naverage: {} of oracle performance (paper: 66.78%)\n",
            t.render(),
            fmt_pct(avg)
        ),
    })
}

/// **Fig 19** — sensitivity to sparse tensor preprocessing. The full
/// variant × matrix × app grid runs as one parallel batch on `exec`.
///
/// # Errors
///
/// Returns the first dataset/compile/simulation error in grid order.
pub fn fig19(ctx: &DataContext, exec: &Executor) -> Result<Report, BenchError> {
    let datasets = ctx.load(exec)?;
    let apps = ["pr", "sssp", "kcore"];
    let variants: [(&str, bool, bool); 4] = [
        ("skeleton (no opt)", false, false),
        ("+blocked", true, false),
        ("+reorder", false, true),
        ("+both", true, true),
    ];
    // One flat grid, variant-major (matching the sequential layout), so a
    // single executor batch covers every simulation of the figure.
    let mut points = Vec::new();
    for &(name, blocked, reorder) in &variants {
        for d in &datasets {
            for app_name in apps {
                points.push((name, blocked, reorder, d, app_name));
            }
        }
    }
    let results = exec.run(&points, |&(_, blocked, reorder, d, app_name)| {
        let matrix = if reorder { &d.reordered } else { &d.matrix };
        let app = app_by_name(app_name)?;
        let program = app.compile().map_err(|e| BenchError::Compile {
            app: app.name.into(),
            message: e.to_string(),
        })?;
        let cfg = SparsepipeConfig::iso_gpu()
            .with_buffer(d.buffer_bytes())
            .with_preprocessing(Preprocessing {
                blocked,
                reorder: ReorderKind::None,
            });
        let outcome = sparsepipe_core::SimRequest::new(&program, matrix)
            .iterations(app.default_iterations)
            .config(cfg)
            .run()
            .map_err(|source| BenchError::Sim {
                app: app.name.into(),
                matrix: d.id,
                source,
            })?;
        let w = sparsepipe_baselines::WorkloadInstance {
            profile: &program.profile,
            n: d.matrix.nrows() as u64,
            nnz: d.matrix.nnz() as u64,
            stats: &d.stats,
            iterations: app.default_iterations,
            mxm: None,
        };
        let ideal = sparsepipe_baselines::ideal::IdealAccelerator::new(cfg).evaluate(&w);
        Ok((
            ideal.runtime_s / outcome.report.runtime_s,
            outcome.telemetry,
        ))
    });
    let mut speedups_by_variant: Vec<Vec<f64>> = variants.iter().map(|_| Vec::new()).collect();
    for (result, (name, blocked, _, d, app_name)) in results.into_iter().zip(&points) {
        let (speedup, telemetry) = result?;
        exec.record(PointRecord::from_telemetry(
            format!("fig19:{}-{}:{}", app_name, d.id.code(), name),
            &telemetry,
        ));
        let variant_idx = variants
            .iter()
            .position(|v| v.0 == *name && v.1 == *blocked)
            .expect("point built from variants");
        speedups_by_variant[variant_idx].push(speedup);
    }
    let per_variant: Vec<(&str, f64)> = variants
        .iter()
        .zip(&speedups_by_variant)
        .map(|(&(name, _, _), speedups)| (name, geomean(speedups)))
        .collect();
    let mut t = Table::new(
        ["variant", "geomean speedup vs ideal", "vs skeleton"]
            .map(String::from)
            .to_vec(),
    );
    let skeleton = per_variant[0].1;
    for (name, g) in &per_variant {
        t.row(vec![(*name).into(), fmt_x(*g), fmt_x(*g / skeleton)]);
    }
    Ok(Report {
        id: "fig19",
        title: format!(
            "preprocessing sensitivity, apps {apps:?} (paper: skeleton 1.37x; both 1.05x–1.34x over skeleton)"
        ),
        body: t.render(),
    })
}

/// **Fig 20a** — storage improvement of the blocked dual format.
///
/// # Errors
///
/// Returns [`BenchError::Dataset`] if a matrix fails to load.
pub fn fig20a(ctx: &DataContext, exec: &Executor) -> Result<Report, BenchError> {
    let datasets = ctx.load(exec)?;
    let mut t = Table::new(
        ["matrix", "dual (MB)", "blocked dual (MB)", "ratio"]
            .map(String::from)
            .to_vec(),
    );
    let mut ratios = Vec::new();
    for d in &datasets {
        let dual = DualStorage::from_coo(&d.reordered).storage_bytes() as f64;
        let blocked = BlockedDualStorage::from_coo(&d.reordered).storage_bytes() as f64;
        let ratio = blocked / dual;
        ratios.push(ratio);
        t.row(vec![
            d.id.code().into(),
            format!("{:.2}", dual / 1e6),
            format!("{:.2}", blocked / 1e6),
            fmt_pct(ratio * 100.0),
        ]);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    Ok(Report {
        id: "fig20a",
        title: "blocked dual-storage size relative to naive dual storage".into(),
        body: format!(
            "{}\naverage: {} of naive dual storage (paper: 39.2%)\n",
            t.render(),
            fmt_pct(avg * 100.0)
        ),
    })
}

/// **Fig 20b** — relative performance per area.
///
/// # Errors
///
/// Infallible in practice; `Result` for a uniform generator signature.
pub fn fig20b(sweep: &Sweep) -> Result<Report, BenchError> {
    use sparsepipe_baselines::area;
    let cpu_speedups: Vec<f64> = sweep
        .entries
        .iter()
        .map(super::sweep::Entry::speedup_vs_cpu)
        .collect();
    let gpu_subset = ["bfs", "kcore", "pr", "sssp"];
    let gpu_speedups: Vec<f64> = sweep
        .entries
        .iter()
        .filter(|e| gpu_subset.contains(&e.app))
        .map(super::sweep::Entry::speedup_vs_gpu)
        .collect();
    let vs_cpu = geomean(&cpu_speedups);
    let vs_gpu = geomean(&gpu_speedups);
    let ppa_cpu = area::perf_per_area_ratio(vs_cpu, area::SPARSEPIPE_MM2, area::CPU_MM2);
    let ppa_gpu = area::perf_per_area_ratio(vs_gpu, area::SPARSEPIPE_MM2, area::GPU_MM2);
    let mut t = Table::new(
        ["system", "area (mm2)", "speedup", "perf/area vs system"]
            .map(String::from)
            .to_vec(),
    );
    t.row(vec![
        "Sparsepipe".into(),
        format!("{:.2}", area::SPARSEPIPE_MM2),
        "1.00x".into(),
        "1.00x".into(),
    ]);
    t.row(vec![
        "CPU (5800X3D)".into(),
        format!("{:.0}", area::CPU_MM2),
        fmt_x(vs_cpu),
        fmt_x(ppa_cpu),
    ]);
    t.row(vec![
        "GPU (RTX 4070)".into(),
        format!("{:.0}", area::GPU_MM2),
        fmt_x(vs_gpu),
        fmt_x(ppa_gpu),
    ]);
    Ok(Report {
        id: "fig20b",
        title: "relative performance per area (paper: 5.38x vs GPU, 9.84x vs CPU)".into(),
        body: t.render(),
    })
}

/// **Fig 21** — Sparsepipe bandwidth utilization.
///
/// # Errors
///
/// Infallible in practice; `Result` for a uniform generator signature.
pub fn fig21(sweep: &Sweep) -> Result<Report, BenchError> {
    let mut t = Table::new(
        ["app", "bw utilization (geomean)"]
            .map(String::from)
            .to_vec(),
    );
    let mut all = Vec::new();
    let mut memory_bound = Vec::new();
    for app in sweep.app_names() {
        let utils: Vec<f64> = sweep
            .by_app(app)
            .iter()
            .map(|e| e.sim.avg_bw_utilization * 100.0)
            .collect();
        let g = geomean(&utils);
        t.row(vec![app.into(), fmt_pct(g)]);
        all.push(g);
        if app != "gmres" && app != "gcn" {
            memory_bound.push(g);
        }
    }
    Ok(Report {
        id: "fig21",
        title: "Sparsepipe bandwidth utilization".into(),
        body: format!(
            "{}\ngeomean: {} (paper: 82.93%)\nexcluding gmres/gcn: {} (paper: 92.94%)\n",
            t.render(),
            fmt_pct(geomean(&all)),
            fmt_pct(geomean(&memory_bound))
        ),
    })
}

/// **Fig 22** — CPU/GPU bandwidth utilization per matrix.
///
/// # Errors
///
/// Infallible in practice; `Result` for a uniform generator signature.
pub fn fig22(sweep: &Sweep) -> Result<Report, BenchError> {
    let matrices = sweep.matrices();
    let mut t = Table::new(
        ["matrix", "CPU util (geomean)", "GPU util (geomean)"]
            .map(String::from)
            .to_vec(),
    );
    for m in matrices {
        let cpu: Vec<f64> = sweep
            .entries
            .iter()
            .filter(|e| e.matrix == m)
            .map(|e| e.cpu.bw_utilization * 100.0)
            .collect();
        let gpu: Vec<f64> = sweep
            .entries
            .iter()
            .filter(|e| e.matrix == m)
            .map(|e| e.gpu.bw_utilization * 100.0)
            .collect();
        t.row(vec![
            m.code().into(),
            fmt_pct(geomean(&cpu)),
            fmt_pct(geomean(&gpu)),
        ]);
    }
    Ok(Report {
        id: "fig22",
        title: "CPU/GPU bandwidth utilization (lower on small, cached inputs)".into(),
        body: t.render(),
    })
}

/// **Fig 23** — relative energy vs. the baseline accelerator.
///
/// # Errors
///
/// Infallible in practice; `Result` for a uniform generator signature.
pub fn fig23(sweep: &Sweep) -> Result<Report, BenchError> {
    let mut t = Table::new(
        [
            "app",
            "total energy vs ideal",
            "memory",
            "buffer",
            "compute",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut savings = Vec::new();
    let mut mem_savings = Vec::new();
    let mut buf_savings = Vec::new();
    for app in sweep.app_names() {
        let entries = sweep.by_app(app);
        let ratio = |f: &dyn Fn(&sweep::Entry) -> (f64, f64)| {
            let (a, b): (f64, f64) = entries
                .iter()
                .map(|e| f(e))
                .fold((0.0, 0.0), |(x, y), (a, b)| (x + a, y + b));
            a / b.max(1e-30)
        };
        let total = ratio(&|e| (e.sim.energy.total_pj(), e.ideal.energy.total_pj()));
        let mem = ratio(&|e| (e.sim.energy.memory_pj, e.ideal.energy.memory_pj));
        let buf = ratio(&|e| (e.sim.energy.buffer_pj, e.ideal.energy.buffer_pj));
        let cmp = ratio(&|e| (e.sim.energy.compute_pj, e.ideal.energy.compute_pj));
        t.row(vec![
            app.into(),
            fmt_pct(total * 100.0),
            fmt_pct(mem * 100.0),
            fmt_pct(buf * 100.0),
            fmt_pct(cmp * 100.0),
        ]);
        savings.push(1.0 - total);
        mem_savings.push(1.0 - mem);
        buf_savings.push(1.0 - buf);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64 * 100.0;
    Ok(Report {
        id: "fig23",
        title: "relative energy consumption vs the baseline accelerator".into(),
        body: format!(
            "{}\naverage energy saving: {} (paper: 54.98%)\nmemory-op saving: {} (paper: 50.32%)\nbuffer-op saving: {} (paper: 39.45%)\n",
            t.render(),
            fmt_pct(avg(&savings)),
            fmt_pct(avg(&mem_savings)),
            fmt_pct(avg(&buf_savings)),
        ),
    })
}

/// **Ablations** — the design-choice studies DESIGN.md §7 calls out:
/// sub-tensor width, eager CSR loading, eviction policy, repack threshold,
/// and buffer capacity. Each study's configuration list runs as one
/// parallel batch on `exec`.
///
/// # Errors
///
/// Returns the first dataset/compile/simulation error encountered.
pub fn ablation(ctx: &DataContext, exec: &Executor) -> Result<Report, BenchError> {
    use sparsepipe_core::EvictionPolicy;
    let mut body = String::new();

    let mut loaded = exec
        .run(&[MatrixId::Wi, MatrixId::Bu], |&id| ctx.load_one(id))
        .into_iter();
    let wi = loaded.next().expect("two datasets requested")?;
    let bu = loaded.next().expect("two datasets requested")?;
    let pr = app_by_name("pr")?;
    let sssp = app_by_name("sssp")?;

    // A labelled batch of configs simulated in parallel; rows and
    // telemetry are emitted in config order.
    let study = |study: &str,
                 app: &StaApp,
                 matrix_id: MatrixId,
                 matrix: &CooMatrix,
                 configs: &[(String, SparsepipeConfig)]|
     -> Result<Vec<sparsepipe_core::SimReport>, BenchError> {
        let outcomes = exec.run(configs, |(_, cfg)| {
            sim_point(app, matrix_id, matrix, app.default_iterations, *cfg)
        });
        let mut reports = Vec::with_capacity(configs.len());
        for (outcome, (label, _)) in outcomes.into_iter().zip(configs) {
            let outcome = outcome?;
            exec.record(PointRecord::from_telemetry(
                format!("ablation:{study}:{}-{}:{label}", app.name, matrix_id.code()),
                &outcome.telemetry,
            ));
            reports.push(outcome.report);
        }
        Ok(reports)
    };

    // --- A: sub-tensor width (pr on wi: skewed, large) ---
    let base = sweep::sparsepipe_config(&wi);
    let auto = base.subtensor_auto(wi.reordered.ncols(), wi.reordered.nnz());
    let configs: Vec<(String, SparsepipeConfig)> = [
        ("1".to_string(), 1usize),
        ("8".to_string(), 8),
        ("64".to_string(), 64),
        ("512".to_string(), 512),
        (format!("auto ({auto})"), 0),
    ]
    .into_iter()
    .map(|(label, cols)| {
        (
            label,
            SparsepipeConfig {
                subtensor_cols: cols,
                ..base
            },
        )
    })
    .collect();
    let mut t = Table::new(
        ["sub-tensor T", "steps", "runtime (ms)", "bw util"]
            .map(String::from)
            .to_vec(),
    );
    for (r, (label, cfg)) in study("subtensor", &pr, wi.id, &wi.reordered, &configs)?
        .into_iter()
        .zip(&configs)
    {
        let eff = if cfg.subtensor_cols == 0 {
            auto
        } else {
            cfg.subtensor_cols
        };
        t.row(vec![
            label.clone(),
            wi.reordered.ncols().div_ceil(eff as u32).to_string(),
            format!("{:.4}", r.runtime_s * 1e3),
            fmt_pct(r.avg_bw_utilization * 100.0),
        ]);
    }
    body.push_str("--- sub-tensor width (pr on wi) ---\n");
    body.push_str(&t.render());

    // --- B: eager CSR + eviction policy under buffer pressure (sssp/bu) ---
    // Use the ORIGINAL (unreordered) bu: GraphOrder halves its live set
    // (the anti-diagonal mass relabels to near-diagonal), which would
    // remove the pressure this study needs. Quarter the buffer on top.
    let pressured = sweep::sparsepipe_config(&bu).with_buffer(bu.buffer_bytes() / 4);
    let configs: Vec<(String, SparsepipeConfig)> = [
        (
            "eager + highest-row-first",
            true,
            EvictionPolicy::HighestRowFirst,
        ),
        ("no eager CSR", false, EvictionPolicy::HighestRowFirst),
        ("eager + oldest-first", true, EvictionPolicy::OldestFirst),
    ]
    .into_iter()
    .map(|(name, eager, policy)| {
        (
            name.to_string(),
            SparsepipeConfig {
                eviction: policy,
                ..pressured.with_eager_csr(eager)
            },
        )
    })
    .collect();
    let mut t = Table::new(
        [
            "variant",
            "runtime (ms)",
            "refetch (MB)",
            "eager (MB)",
            "evictions",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (r, (name, _)) in study("eager-eviction", &sssp, bu.id, &bu.matrix, &configs)?
        .into_iter()
        .zip(&configs)
    {
        t.row(vec![
            name.clone(),
            format!("{:.4}", r.runtime_s * 1e3),
            format!("{:.2}", r.traffic.refetch_bytes / 1e6),
            format!("{:.2}", r.traffic.csr_eager_bytes / 1e6),
            r.evicted_elements.to_string(),
        ]);
    }
    body.push_str("\n--- eager CSR loading & eviction policy (sssp on bu (original order), quarter buffer) ---\n");
    body.push_str(&t.render());

    // --- C: repack threshold ---
    let configs: Vec<(String, SparsepipeConfig)> = [0.1, 0.5, 0.9]
        .into_iter()
        .map(|thr| {
            (
                format!("{thr}"),
                SparsepipeConfig {
                    repack_threshold: thr,
                    ..pressured
                },
            )
        })
        .collect();
    let mut t = Table::new(
        ["repack threshold", "runtime (ms)", "repacks", "evictions"]
            .map(String::from)
            .to_vec(),
    );
    for (r, (label, _)) in study("repack", &sssp, bu.id, &bu.matrix, &configs)?
        .into_iter()
        .zip(&configs)
    {
        t.row(vec![
            label.clone(),
            format!("{:.4}", r.runtime_s * 1e3),
            r.repack_events.to_string(),
            r.evicted_elements.to_string(),
        ]);
    }
    body.push_str(
        "\n--- CSR-space repack threshold (sssp on bu (original order), quarter buffer) ---\n",
    );
    body.push_str(&t.render());

    // --- D: buffer capacity (pr on bu) ---
    let full = bu.buffer_bytes();
    let configs: Vec<(String, SparsepipeConfig)> = [8usize, 4, 2, 1]
        .into_iter()
        .map(|frac| {
            (
                format!("1/{frac} of scaled 64 MB"),
                sweep::sparsepipe_config(&bu).with_buffer(full / frac),
            )
        })
        .collect();
    let mut t = Table::new(
        ["buffer", "runtime (ms)", "refetch (MB)", "loads/iter"]
            .map(String::from)
            .to_vec(),
    );
    for (r, (label, _)) in study("buffer", &pr, bu.id, &bu.matrix, &configs)?
        .into_iter()
        .zip(&configs)
    {
        t.row(vec![
            label.clone(),
            format!("{:.4}", r.runtime_s * 1e3),
            format!("{:.2}", r.traffic.refetch_bytes / 1e6),
            format!("{:.3}", r.matrix_loads_per_iteration),
        ]);
    }
    body.push_str("\n--- buffer capacity (pr on bu) ---\n");
    body.push_str(&t.render());

    Ok(Report {
        id: "ablation",
        title: format!("design-choice ablations (scale 1/{})", ctx.scale),
        body,
    })
}

/// **Self-verification** — runs the stack's functional cross-checks on
/// fresh matrices and reports pass/fail per check: every app through the
/// interpreter, Table III's reuse classification recomputed, the OEI
/// schedule (element, sub-tensor, and mechanism-level buffered variants)
/// against sequential execution, and a fused multi-iteration PageRank
/// against the interpreter.
///
/// # Errors
///
/// Infallible in practice (failed checks are reported as `FAIL` rows, not
/// errors); `Result` for a uniform generator signature.
pub fn verify() -> Result<Report, BenchError> {
    use sparsepipe_core::oei;
    use sparsepipe_semiring::SemiringOp;
    use sparsepipe_tensor::{gen, DenseVector};

    let mut t = Table::new(["check", "status"].map(String::from).to_vec());
    let mut failures = 0usize;
    let check = |t: &mut Table, failures: &mut usize, name: String, ok: bool| {
        if !ok {
            *failures += 1;
        }
        t.row(vec![name, if ok { "ok".into() } else { "FAIL".into() }]);
    };

    // 1. every app interprets and matches its Table-III classification
    let m = gen::uniform(48, 48, 280, 99);
    for app in registry::all() {
        let interp_ok = sparsepipe_frontend::interp::run(&app.graph, &app.bindings(&m), 3).is_ok();
        check(
            &mut t,
            &mut failures,
            format!("{}: interprets (3 iterations)", app.name),
            interp_ok,
        );
        match app.compile() {
            Ok(program) => {
                let expected = app.reuse == sparsepipe_apps::ReusePattern::CrossIteration;
                check(
                    &mut t,
                    &mut failures,
                    format!("{}: OEI classification matches Table III", app.name),
                    program.profile.has_oei == expected,
                );
            }
            Err(_) => check(
                &mut t,
                &mut failures,
                format!("{}: compiles", app.name),
                false,
            ),
        }
    }

    // 2. OEI schedule equivalence across dataset families and variants
    for (family, matrix) in [
        ("uniform", gen::uniform(90, 90, 700, 1)),
        ("banded", gen::banded(90, 700, 6, 2)),
        ("power-law", gen::power_law(90, 700, 1.4, 0.4, 3)),
    ] {
        let (csc, csr) = (matrix.to_csc(), matrix.to_csr());
        let x = DenseVector::filled(90, 0.25);
        let ew = |_: usize, v: f64| v * 0.7 + 0.2;
        let Ok(reference) =
            oei::fused_pass(&csc, &csr, &x, ew, SemiringOp::MulAdd, SemiringOp::MulAdd)
        else {
            check(
                &mut t,
                &mut failures,
                format!("oei element pass on {family}"),
                false,
            );
            continue;
        };
        let wide = oei::fused_pass_subtensor(
            &csc,
            &csr,
            &x,
            ew,
            SemiringOp::MulAdd,
            SemiringOp::MulAdd,
            7,
        );
        check(
            &mut t,
            &mut failures,
            format!("oei sub-tensor schedule == element schedule ({family})"),
            wide.is_ok_and(|w| w.y2.max_abs_diff(&reference.y2).unwrap_or(f64::MAX) < 1e-9),
        );
        for cap in [64 << 20, matrix.nnz() * 12 / 6] {
            let buffered = oei::fused_pass_buffered(
                &csc,
                &csr,
                &x,
                ew,
                SemiringOp::MulAdd,
                SemiringOp::MulAdd,
                cap,
            );
            check(
                &mut t,
                &mut failures,
                format!("oei buffered mechanism exact ({family}, {} KiB)", cap >> 10),
                buffered.is_ok_and(|(o, _)| {
                    o.y2.max_abs_diff(&reference.y2).unwrap_or(f64::MAX) < 1e-9
                }),
            );
        }
    }

    // 3. end-to-end: fused multi-iteration PageRank == interpreter
    let graph = gen::power_law(64, 500, 1.0, 0.4, 5);
    let transition = sparsepipe_apps::pagerank::transition_matrix(&graph);
    let (csc, csr) = (transition.to_csc(), transition.to_csr());
    let x0 = DenseVector::filled(64, 1.0 / 64.0);
    let d = sparsepipe_apps::pagerank::DAMPING;
    let fused = oei::run_fused_buffered(
        &csc,
        &csr,
        &x0,
        |_, v| d * v + 0.15,
        SemiringOp::MulAdd,
        SemiringOp::MulAdd,
        6,
        transition.nnz() * 12 / 4,
    );
    let app = sparsepipe_apps::pagerank::app(6);
    let via_interp = sparsepipe_frontend::interp::run(&app.graph, &app.bindings(&graph), 6);
    check(
        &mut t,
        &mut failures,
        "pagerank x6: buffered OEI pipeline == interpreter".into(),
        match (fused, via_interp) {
            (Ok((x, _)), Ok(out)) => out["pr"]
                .as_vector()
                .is_some_and(|pr| x.max_abs_diff(pr).unwrap_or(f64::MAX) < 1e-9),
            _ => false,
        },
    );

    Ok(Report {
        id: "verify",
        title: format!("functional self-verification — {failures} check(s) failed"),
        body: t.render(),
    })
}

/// **trace** — event-level trace of a single (app, matrix) point.
///
/// Runs the point with an in-memory sink, audits the replayed stream
/// against the traffic report bit-for-bit, and writes four exports into
/// `trace_dir`: the raw `trace.jsonl` stream, a Perfetto-loadable
/// `chrome-trace.json`, and `reuse.csv` / `occupancy.csv` /
/// `traffic.csv` analyzer tables. The report summarizes the audit
/// verdict and the trace-derived statistics.
///
/// # Errors
///
/// Returns [`BenchError::UnknownApp`] for an unregistered app name,
/// [`BenchError::Dataset`] / [`BenchError::Compile`] / [`BenchError::Sim`]
/// from the point itself, [`BenchError::Trace`] on an audit mismatch,
/// and [`BenchError::Io`] if an export cannot be written.
pub fn trace_point(
    ctx: &DataContext,
    exec: &Executor,
    app_name: &str,
    matrix_id: MatrixId,
    trace_dir: &std::path::Path,
) -> Result<Report, BenchError> {
    use sparsepipe_trace::{
        chrome, jsonl, MemorySink, OccupancyTimeline, ReuseHistogram, StageTraffic, TraceAudit,
        TrafficTimeline,
    };

    let app = app_by_name(app_name)?;
    let dataset = ctx.load_one(matrix_id)?;
    let program = app.compile().map_err(|e| BenchError::Compile {
        app: app.name.into(),
        message: e.to_string(),
    })?;
    let cfg = sweep::sparsepipe_config(&dataset);
    let mut sink = MemorySink::new();
    let outcome = sparsepipe_core::SimRequest::new(&program, &dataset.reordered)
        .iterations(app.default_iterations)
        .config(cfg)
        .trace(&mut sink)
        .run()
        .map_err(|source| BenchError::Sim {
            app: app.name.into(),
            matrix: matrix_id,
            source,
        })?;
    let events = sink.events();
    TraceAudit::replay(events)
        .check(&outcome.report.traffic.audit_totals())
        .map_err(|e| BenchError::Trace {
            app: app.name.into(),
            matrix: matrix_id,
            message: e.to_string(),
        })?;

    std::fs::create_dir_all(trace_dir).map_err(|e| BenchError::Io {
        path: trace_dir.to_path_buf(),
        source: e,
    })?;
    let io_err =
        |path: std::path::PathBuf| move |e: std::io::Error| BenchError::Io { path, source: e };
    let jsonl_path = trace_dir.join("trace.jsonl");
    jsonl::write_events(&jsonl_path, events).map_err(io_err(jsonl_path.clone()))?;
    let chrome_path = trace_dir.join("chrome-trace.json");
    chrome::write(&chrome_path, events).map_err(io_err(chrome_path.clone()))?;
    let reuse = ReuseHistogram::from_events(events);
    let reuse_path = trace_dir.join("reuse.csv");
    std::fs::write(&reuse_path, reuse.to_csv()).map_err(io_err(reuse_path.clone()))?;
    let occupancy = OccupancyTimeline::from_events(events);
    let occ_path = trace_dir.join("occupancy.csv");
    std::fs::write(&occ_path, occupancy.to_csv()).map_err(io_err(occ_path.clone()))?;
    let traffic_path = trace_dir.join("traffic.csv");
    std::fs::write(&traffic_path, TrafficTimeline::from_events(events).to_csv())
        .map_err(io_err(traffic_path.clone()))?;

    let counters = sweep::trace_counters(events);
    exec.record(
        PointRecord::from_telemetry(
            format!("trace:{}-{}", app.name, matrix_id.code()),
            &outcome.telemetry,
        )
        .with_trace(counters),
    );

    let stage = StageTraffic::from_events(events);
    let mut body = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        body,
        "point      : {} on {} ({} iterations, scale {})",
        app.name,
        matrix_id.code(),
        app.default_iterations,
        ctx.scale
    );
    let _ = writeln!(body, "events     : {}", events.len());
    let _ = writeln!(
        body,
        "audit      : exact — replayed DRAM bytes equal the report bitwise"
    );
    let _ = writeln!(
        body,
        "reuse |r-c|: median {} steps, p95 {} steps ({} OS/IS pairs)",
        counters.reuse_median,
        counters.reuse_p95,
        reuse.total()
    );
    let _ = writeln!(
        body,
        "occupancy  : peak {:.0} B, mean {:.1} B",
        occupancy.peak_bytes(),
        occupancy.mean_bytes()
    );
    let _ = writeln!(
        body,
        "dram bytes : demand {:.0}, prefetch {:.0}, vector {:.0}, writeback {:.0}",
        stage.demand_bytes, stage.prefetch_bytes, stage.vector_bytes, stage.writeback_bytes
    );
    let _ = writeln!(
        body,
        "exports    : {} (+ chrome-trace.json for Perfetto, reuse/occupancy/traffic CSVs)",
        jsonl_path.display()
    );
    Ok(Report {
        id: "trace",
        title: format!("event trace of {} on {}", app.name, matrix_id.code()),
        body,
    })
}

/// **analyze** — the static cost & reuse analyzer, differentially
/// verified against the simulator.
///
/// For each selected app (all registered apps unless `app_filter` names
/// one), the analyzer (`sparsepipe_lint::analysis_cost`) derives traffic
/// and occupancy bounds from the dataflow graph and the matrix profile
/// alone; the same point is then simulated with an audited trace, and
/// every per-pass, per-category bound is checked against the replayed
/// actuals (`lower ≤ actual ≤ upper`). The table summarizes one app per
/// row; the full per-pass comparison is written to `json_path`. The
/// returned count is the number of bound violations (0 on a sound run —
/// CI fails otherwise).
///
/// # Errors
///
/// Returns [`BenchError::UnknownApp`] for an unregistered `app_filter`,
/// [`BenchError::Dataset`] / [`BenchError::Compile`] / [`BenchError::Sim`]
/// from the points themselves, [`BenchError::Trace`] on an audit
/// mismatch, and [`BenchError::Io`] if the JSON report cannot be written.
pub fn analyze(
    ctx: &DataContext,
    exec: &Executor,
    app_filter: Option<&str>,
    matrix_id: MatrixId,
    json_path: &std::path::Path,
) -> Result<(Report, usize), BenchError> {
    use serde::Serialize as _;
    use sparsepipe_lint::analysis_cost;
    use sparsepipe_trace::{replay_passes, MemorySink, TraceAudit};

    let apps: Vec<StaApp> = match app_filter {
        Some(name) => vec![app_by_name(name)?],
        None => registry::all(),
    };
    let dataset = ctx.load_one(matrix_id)?;
    let cfg = sweep::sparsepipe_config(&dataset);

    let mut t = Table::new(
        [
            "app",
            "passes",
            "lower (MB)",
            "actual (MB)",
            "upper (MB)",
            "occupancy peak",
            "reuse",
            "diags",
            "bounds",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut violations = 0usize;
    let mut apps_json: Vec<serde::Value> = Vec::new();
    let mb = |b: f64| format!("{:.2}", b / 1e6);

    for app in &apps {
        let program = app.compile().map_err(|e| BenchError::Compile {
            app: app.name.into(),
            message: e.to_string(),
        })?;
        let iterations = app.default_iterations;
        let cost = analysis_cost::analyze_matrix(&program, &dataset.reordered, &cfg, iterations);

        let mut sink = MemorySink::new();
        let outcome = sparsepipe_core::SimRequest::new(&program, &dataset.reordered)
            .iterations(iterations)
            .config(cfg)
            .cache(
                exec.cache(),
                sparsepipe_core::MatrixCache::key_for(dataset.id.code(), &dataset.reordered),
            )
            .trace(&mut sink)
            .run()
            .map_err(|source| BenchError::Sim {
                app: app.name.into(),
                matrix: matrix_id,
                source,
            })?;
        // Ground truth: the trace must reproduce the report bitwise
        // before it is allowed to judge the static bounds.
        TraceAudit::replay(sink.events())
            .check(&outcome.report.traffic.audit_totals())
            .map_err(|e| BenchError::Trace {
                app: app.name.into(),
                matrix: matrix_id,
                message: e.to_string(),
            })?;
        exec.record(PointRecord::from_telemetry(
            format!("analyze:{}-{}", app.name, matrix_id.code()),
            &outcome.telemetry,
        ));

        // Per-pass, per-category verdicts.
        let actual_passes = replay_passes(sink.events());
        let mut app_violations = 0usize;
        let mut passes_json: Vec<serde::Value> = Vec::new();
        if actual_passes.len() != cost.passes.len() {
            app_violations += 1;
        }
        for (sp, ap) in cost.passes.iter().zip(&actual_passes) {
            let actuals = [
                ap.traffic.csc_bytes,
                ap.traffic.csr_eager_bytes,
                ap.traffic.refetch_bytes,
                ap.traffic.vector_bytes,
                ap.traffic.writeback_bytes,
            ];
            let mut cats: Vec<(String, serde::Value)> = Vec::new();
            for ((name, bound), actual) in sp.traffic.categories().iter().zip(actuals) {
                let ok = bound.contains(actual);
                if !ok {
                    app_violations += 1;
                }
                cats.push((
                    (*name).to_string(),
                    serde::Value::Map(vec![
                        ("lower".into(), bound.lower.to_value()),
                        ("actual".into(), actual.to_value()),
                        ("upper".into(), bound.upper.to_value()),
                        ("ok".into(), ok.to_value()),
                    ]),
                ));
            }
            passes_json.push(serde::Value::Map(vec![
                ("pass".into(), sp.pass.to_value()),
                ("kind".into(), sp.kind.label().to_value()),
                ("repeats".into(), sp.repeats.to_value()),
                ("steps".into(), sp.steps.to_value()),
                ("categories".into(), serde::Value::Map(cats)),
            ]));
        }
        let actual_total = outcome.report.traffic.total_bytes();
        let total = cost.traffic.total();
        if !total.contains(actual_total) {
            app_violations += 1;
        }
        let occupancy_ok = cost
            .occupancy_bytes
            .contains(outcome.report.buffer_peak_bytes);
        if !occupancy_ok {
            app_violations += 1;
        }
        violations += app_violations;

        t.row(vec![
            app.name.into(),
            cost.passes.len().to_string(),
            mb(total.lower),
            mb(actual_total),
            mb(total.upper),
            format!(
                "{:.0} in [{:.0}, {:.0}]",
                outcome.report.buffer_peak_bytes,
                cost.occupancy_bytes.lower,
                cost.occupancy_bytes.upper
            ),
            format!("{:.2}", cost.reuse_score),
            cost.diagnostics.diagnostics().len().to_string(),
            if app_violations == 0 {
                "ok".into()
            } else {
                format!("{app_violations} VIOLATION(S)")
            },
        ]);
        apps_json.push(serde::Value::Map(vec![
            ("app".into(), app.name.to_value()),
            ("matrix".into(), matrix_id.code().to_value()),
            ("iterations".into(), iterations.to_value()),
            ("has_oei".into(), cost.has_oei.to_value()),
            ("cross_iteration".into(), cost.cross_iteration.to_value()),
            ("reuse_score".into(), cost.reuse_score.to_value()),
            (
                "no_eviction_guaranteed".into(),
                cost.no_eviction_guaranteed.to_value(),
            ),
            (
                "thrash_guaranteed".into(),
                cost.thrash_guaranteed.to_value(),
            ),
            ("passes".into(), serde::Value::Seq(passes_json)),
            (
                "total".into(),
                serde::Value::Map(vec![
                    ("lower".into(), total.lower.to_value()),
                    ("actual".into(), actual_total.to_value()),
                    ("upper".into(), total.upper.to_value()),
                ]),
            ),
            (
                "occupancy".into(),
                serde::Value::Map(vec![
                    ("lower".into(), cost.occupancy_bytes.lower.to_value()),
                    ("actual".into(), outcome.report.buffer_peak_bytes.to_value()),
                    ("upper".into(), cost.occupancy_bytes.upper.to_value()),
                    ("ok".into(), occupancy_ok.to_value()),
                ]),
            ),
            (
                "diagnostics".into(),
                serde::Value::Seq(
                    cost.diagnostics
                        .diagnostics()
                        .iter()
                        .map(|d| d.to_string().to_value())
                        .collect(),
                ),
            ),
            ("violations".into(), app_violations.to_value()),
        ]));
    }

    let json = serde::Value::Map(vec![
        ("matrix".into(), matrix_id.code().to_value()),
        ("scale".into(), ctx.scale.to_value()),
        ("violations".into(), violations.to_value()),
        ("apps".into(), serde::Value::Seq(apps_json)),
    ]);
    let text = serde_json::to_string_pretty(&json).map_err(|e| BenchError::Json(e.to_string()))?;
    std::fs::write(json_path, text).map_err(|source| BenchError::Io {
        path: json_path.to_path_buf(),
        source,
    })?;

    let mut body = t.render();
    use std::fmt::Write as _;
    let _ = writeln!(
        body,
        "bounds     : {} (per-pass, per-category, vs bit-audited trace replay)",
        if violations == 0 {
            "all sound".to_string()
        } else {
            format!("{violations} VIOLATION(S)")
        }
    );
    let _ = writeln!(body, "json report: {}", json_path.display());
    Ok((
        Report {
            id: "analyze",
            title: format!(
                "static traffic/occupancy bounds vs simulator on {} (scale 1/{})",
                matrix_id.code(),
                ctx.scale
            ),
            body,
        },
        violations,
    ))
}

/// **compile** — the sparse-einsum front door: parse, lint, lower, and
/// run one simulated point for each expression. Returns the report and
/// the number of expressions with diagnostic errors (parse/lower
/// rejections, lint errors, backend compile or simulation failures).
///
/// With `emit_graph` set, every expression that lowers cleanly also gets
/// its [`DataflowGraph`](sparsepipe_frontend::DataflowGraph) dumped as
/// pretty-printed JSON to `<dir>/compile-graph-<name>.json` — the
/// schema-stable interchange form downstream tools consume.
///
/// # Errors
///
/// Returns [`BenchError::Dataset`] if the input matrix fails to load —
/// per-expression failures are reported in the table, not raised.
pub fn compile_exprs(
    ctx: &DataContext,
    exec: &Executor,
    entries: &[crate::einsum_corpus::CorpusEntry],
    matrix_id: MatrixId,
    emit_graph: Option<&Path>,
) -> Result<(Report, usize), BenchError> {
    use sparsepipe_lint::einsum_checks;

    if let Some(dir) = emit_graph {
        std::fs::create_dir_all(dir).map_err(|source| BenchError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
    }
    let dataset = ctx.load_one(matrix_id)?;
    let cfg = sweep::sparsepipe_config(&dataset);
    let mb = |b: f64| format!("{:.2}", b / 1e6);

    let mut t = Table::new(
        [
            "expr",
            "ops",
            "profile",
            "errors",
            "warnings",
            "iters",
            "cycles",
            "traffic (MB)",
            "status",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut failing = 0usize;
    let mut details = String::new();
    for e in entries {
        let check = einsum_checks::check_expression(&e.source);
        let mut report = check.report;
        let dash = || "-".to_string();

        // Lowered expressions go through the unchanged backend stack:
        // fusion/compile, the full graph linter, then one simulation.
        let mut ops = None;
        let mut profile = None;
        let mut iterations = None;
        let mut point = None;
        let mut backend_failure = None;
        if let Some(lowered) = &check.lowered {
            ops = Some(lowered.graph.ops().count());
            iterations = Some(lowered.iterations);
            if let Some(dir) = emit_graph {
                let path = dir.join(format!("compile-graph-{}.json", e.name));
                let json = serde_json::to_string_pretty(&lowered.graph)
                    .map_err(|err| BenchError::Json(err.to_string()))?;
                std::fs::write(&path, json).map_err(|source| BenchError::Io { path, source })?;
            }
            match sparsepipe_frontend::compile(&lowered.graph, lowered.feature_dim) {
                Ok(program) => {
                    report.merge(sparsepipe_lint::lint_program(&program));
                    profile = Some(if program.profile.cross_iteration {
                        "cross-oei"
                    } else if program.profile.has_oei {
                        "oei"
                    } else {
                        "stream"
                    });
                    if !report.has_errors() {
                        let run = sparsepipe_core::SimRequest::new(&program, &dataset.reordered)
                            .iterations(lowered.iterations)
                            .config(cfg)
                            .run();
                        match run {
                            Ok(outcome) => {
                                exec.record(PointRecord::from_telemetry(
                                    format!("compile:{}-{}", e.name, matrix_id.code()),
                                    &outcome.telemetry,
                                ));
                                point = Some(outcome);
                            }
                            Err(err) => backend_failure = Some(format!("simulation: {err}")),
                        }
                    }
                }
                Err(err) => backend_failure = Some(format!("backend compile: {err}")),
            }
        }

        let failed = report.has_errors() || backend_failure.is_some();
        if failed {
            failing += 1;
        }
        if let Some(msg) = &backend_failure {
            details.push_str(&format!("{}: {msg}\n", e.name));
        }
        if !report.diagnostics().is_empty() {
            details.push_str(&format!("--- {} (line {}) ---\n{report}\n", e.name, e.line));
        }
        t.row(vec![
            e.name.clone(),
            ops.map_or_else(dash, |n| n.to_string()),
            profile.unwrap_or("-").into(),
            report.error_count().to_string(),
            report.warning_count().to_string(),
            iterations.map_or_else(dash, |n| n.to_string()),
            point
                .as_ref()
                .map_or_else(dash, |o| o.report.total_cycles.to_string()),
            point
                .as_ref()
                .map_or_else(dash, |o| mb(o.report.traffic.total_bytes())),
            if failed { "FAIL".into() } else { "ok".into() },
        ]);
    }

    let mut body = t.render();
    if !details.is_empty() {
        body.push_str(&details);
    }
    use std::fmt::Write as _;
    let _ = writeln!(
        body,
        "compile    : {} expression(s), {failing} failing",
        entries.len()
    );
    if let Some(dir) = emit_graph {
        let _ = writeln!(
            body,
            "graphs     : lowered DataflowGraph JSON in {}",
            dir.display()
        );
    }
    Ok((
        Report {
            id: "compile",
            title: format!(
                "sparse-einsum front door on {} (scale 1/{})",
                matrix_id.code(),
                ctx.scale
            ),
            body,
        },
        failing,
    ))
}

/// **convert** — the out-of-core front door: writes a binary matrix slab
/// (`SPSLAB1` format, see `sparsepipe_core::slab`) either by streaming a
/// MatrixMarket file through the chunked [`ArenaBuilder`]
/// (`--in FILE.mtx`, never materializing the triplet list) or by
/// freezing a synthetic Table-I matrix at the requested scale
/// (`--matrix CODE --scale N`). The resulting slab is what `--slab DIR`
/// serves back through [`SlabSource`](crate::datasets::SlabSource).
///
/// [`ArenaBuilder`]: sparsepipe_core::ArenaBuilder
///
/// # Errors
///
/// Returns [`BenchError::Dataset`] when the source fails to parse or the
/// slab cannot be written.
pub fn convert(
    input: Option<&Path>,
    matrix_id: MatrixId,
    scale: u64,
    out: &Path,
) -> Result<Report, BenchError> {
    let to_dataset = |message: String| BenchError::Dataset {
        matrix: matrix_id,
        message,
    };
    let (header, source_desc) = if let Some(mtx) = input {
        let header = sparsepipe_core::slab::convert_mm(mtx, out)
            .map_err(|e| to_dataset(format!("{}: {e}", mtx.display())))?;
        (header, mtx.display().to_string())
    } else {
        let matrix = matrix_id.spec().generate(scale);
        let arena = sparsepipe_core::MatrixArena::from_coo(&matrix);
        let header = sparsepipe_core::slab::write_file(&arena, out)
            .map_err(|e| to_dataset(format!("{}: {e}", out.display())))?;
        (
            header,
            format!("synthetic {} @ scale 1/{scale}", matrix_id.code()),
        )
    };
    let mut t = Table::new(
        ["slab", "n", "nnz", "bytes", "fingerprint"]
            .map(String::from)
            .to_vec(),
    );
    t.row(vec![
        out.display().to_string(),
        header.n.to_string(),
        header.nnz.to_string(),
        header.file_bytes().to_string(),
        format!("{:016x}", header.fingerprint),
    ]);
    let mut body = t.render();
    use std::fmt::Write as _;
    let _ = writeln!(body, "converted  : {source_desc}");
    Ok(Report {
        id: "convert",
        title: format!("matrix slab written to {}", out.display()),
        body,
    })
}

/// **--lint** — the static verifier over every registered app (graph
/// well-formedness, shapes/semirings, the OEI oracle cross-check) plus a
/// representative pass plan per feature width. Returns the report and the
/// number of apps with lint errors.
pub fn lint_apps() -> (Report, usize) {
    let mut t = Table::new(
        ["app", "errors", "warnings", "status"]
            .map(String::from)
            .to_vec(),
    );
    let mut failing = 0usize;
    let mut details = String::new();
    let config = SparsepipeConfig::iso_gpu();
    let matrix = sparsepipe_tensor::gen::power_law(512, 4096, 1.0, 0.4, 11);
    for app in registry::all() {
        // `StaApp::compile` already rejects lint errors; go through the raw
        // frontend so findings are reported instead of swallowed into an
        // `Uncompilable`.
        let mut report = match sparsepipe_frontend::compile(&app.graph, app.feature_dim) {
            Ok(program) => sparsepipe_lint::lint_program(&program),
            Err(e) => {
                failing += 1;
                t.row(vec![
                    app.name.into(),
                    "-".into(),
                    "-".into(),
                    "NO COMPILE".into(),
                ]);
                details.push_str(&format!("{}: {e}\n", app.name));
                continue;
            }
        };
        let t_cols = config.subtensor_auto(matrix.ncols(), matrix.nnz());
        let plan = sparsepipe_core::PassPlan::build(&matrix, t_cols);
        let mut plan_report = sparsepipe_lint::LintReport::new();
        sparsepipe_lint::plan_checks::check(&plan, &config, app.feature_dim, &mut plan_report);
        report.merge(plan_report);
        if report.has_errors() {
            failing += 1;
        }
        if !report.diagnostics().is_empty() {
            details.push_str(&format!("--- {} ---\n{report}\n", app.name));
        }
        t.row(vec![
            app.name.into(),
            report.error_count().to_string(),
            report.warning_count().to_string(),
            if report.has_errors() {
                "FAIL".into()
            } else {
                "ok".into()
            },
        ]);
    }
    let mut body = t.render();
    if !details.is_empty() {
        body.push_str(&details);
    }
    (
        Report {
            id: "lint",
            title: format!("static verification — {failing} app(s) failed"),
            body,
        },
        failing,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::MatrixSet;

    fn tiny() -> Sweep {
        Sweep::run(DataContext::synthetic(MatrixSet::Quick, 512))
    }

    #[test]
    fn static_tables_render() {
        assert!(table2().unwrap().render().contains("GDDR6X"));
        let t3 = table3().unwrap();
        assert!(t3.body.contains("Aril-Add"));
        assert!(t3.body.contains("cross-iteration"));
    }

    #[test]
    fn table1_includes_paper_comparison() {
        let ctx = DataContext::synthetic(MatrixSet::Quick, 512);
        let r = table1(&ctx, &Executor::new(1)).unwrap();
        assert!(r.body.contains("ca"));
        assert!(r.body.contains("paper max"));
    }

    #[test]
    fn trace_point_audits_and_writes_exports() {
        let dir =
            std::env::temp_dir().join(format!("sparsepipe-trace-point-{}", std::process::id()));
        let ctx = DataContext::synthetic(MatrixSet::Quick, 512);
        let exec = Executor::new(1);
        let r = trace_point(&ctx, &exec, "pr", sparsepipe_tensor::MatrixId::Ca, &dir).unwrap();
        assert!(r.body.contains("audit      : exact"), "{}", r.body);
        assert!(r.body.contains("reuse |r-c|"), "{}", r.body);
        for name in [
            "trace.jsonl",
            "chrome-trace.json",
            "reuse.csv",
            "occupancy.csv",
            "traffic.csv",
        ] {
            assert!(dir.join(name).is_file(), "missing export {name}");
        }
        let t = exec.finish();
        assert_eq!(t.points, 1);
        assert!(t.records[0].trace.is_some());
        assert!(matches!(
            trace_point(&ctx, &exec, "nosuch", sparsepipe_tensor::MatrixId::Ca, &dir),
            Err(BenchError::UnknownApp(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_figures_render() {
        let s = tiny();
        for report in [
            fig14(&s).unwrap(),
            fig16(&s).unwrap(),
            fig17(&s).unwrap(),
            fig18(&s).unwrap(),
            fig20b(&s).unwrap(),
            fig21(&s).unwrap(),
            fig22(&s).unwrap(),
            fig23(&s).unwrap(),
        ] {
            assert!(!report.body.is_empty(), "{} empty", report.id);
        }
    }

    #[test]
    fn fig20a_shows_compression() {
        let ctx = DataContext::synthetic(MatrixSet::Quick, 512);
        let r = fig20a(&ctx, &Executor::new(2)).unwrap();
        assert!(r.body.contains("average"));
    }

    #[test]
    fn unknown_app_is_an_error() {
        let err = app_by_name("not-an-app").unwrap_err();
        assert!(matches!(err, BenchError::UnknownApp(ref name) if name == "not-an-app"));
    }

    #[test]
    fn fig15_records_labelled_telemetry() {
        let ctx = DataContext::synthetic(MatrixSet::Quick, 512);
        let exec = Executor::new(2);
        let r = fig15(&ctx, &exec).unwrap();
        assert!(!r.body.is_empty());
        let t = exec.finish();
        assert!(t.points > 0);
        assert!(t.records.iter().all(|p| p.label.starts_with("fig15:")));
    }
}

#[cfg(test)]
mod verify_tests {
    #[test]
    fn lint_apps_is_all_green() {
        let (report, failing) = super::lint_apps();
        assert_eq!(failing, 0, "{}\n{}", report.title, report.body);
        assert!(!report.body.contains("FAIL"));
    }

    #[test]
    fn self_verification_is_all_green() {
        let report = super::verify().unwrap();
        assert!(
            report.title.contains("0 check(s) failed"),
            "{}\n{}",
            report.title,
            report.body
        );
        assert!(!report.body.contains("FAIL"));
    }
}
