//! Workload replay client for `sparsepipe-serve`.
//!
//! ```text
//! serve-loadgen --addr HOST:PORT [--clients N] [--repeat N] [--scale N]
//!               [--matrices quick|full] [--deadline-ms N]
//!               [--out BENCH_serve.json] [--shutdown]
//! ```
//!
//! Replays the app × matrix workload at the requested concurrency,
//! writes latency percentiles, throughput, and the daemon's cache
//! hit-rate to `--out`, and exits nonzero if any request failed —
//! a daemon killed mid-load shows up as clean client errors, not hangs.

use std::process::ExitCode;

use sparsepipe_bench::serve::loadgen;
use sparsepipe_bench::serve::opts::{loadgen_usage, parse_loadgen};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_loadgen(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", loadgen_usage());
            return ExitCode::FAILURE;
        }
    };
    if opts.help {
        println!("{}", loadgen_usage());
        return ExitCode::SUCCESS;
    }
    let report = match loadgen::run(&opts.config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: could not connect to {}: {e}", opts.config.addr);
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = report.write(&opts.out) {
        eprintln!("error: writing {}: {e}", opts.out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "replayed {} requests over {} clients in {:.2}s: {} ok, {} errors, \
         {:.1} req/s, p50 {:.1}ms p95 {:.1}ms p99 {:.1}ms, cache hit-rate {:.0}%",
        report.requests,
        report.clients,
        report.wall_s,
        report.ok,
        report.errors,
        report.throughput_rps,
        report.latency_ms.p50,
        report.latency_ms.p95,
        report.latency_ms.p99,
        report.stats.hit_rate() * 100.0
    );
    for sample in &report.error_samples {
        eprintln!("error sample: {sample}");
    }
    println!("report written to {}", opts.out.display());
    if report.errors > 0 {
        eprintln!(
            "error: {} of {} requests failed",
            report.errors, report.requests
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
