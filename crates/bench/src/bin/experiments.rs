//! Regenerates the Sparsepipe paper's tables and figures.
//!
//! ```text
//! experiments <artifact>... [--scale N] [--quick] [--json out.json] [--mtx DIR] [--lint]
//!
//! artifacts: all table1 table2 table3 fig14 fig15 fig16 fig17 fig18
//!            fig19 fig20a fig20b fig21 fig22 fig23 ablation verify
//! --scale N  dataset scale divisor (default 64; 1 = paper-size)
//! --quick    three-matrix subset (ca, gy, bu) for smoke runs
//! --json F   additionally dump the raw app x matrix sweep (all systems'
//!            reports) as JSON to F
//! --mtx DIR  load real MatrixMarket matrices from DIR/<code>.mtx instead
//!            of the synthetic stand-ins (use --scale 1 for full size)
//! --lint     run the static verifier (sparsepipe-lint) over every
//!            registered app first; exit non-zero on any lint error
//! ```

use std::process::ExitCode;

use sparsepipe_bench::cli;
use sparsepipe_bench::experiments as exp;
use sparsepipe_bench::sweep::Sweep;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{}", cli::usage());
            return ExitCode::FAILURE;
        }
    };
    if opts.help {
        eprintln!("{}", cli::usage());
        return ExitCode::SUCCESS;
    }
    if opts.lint {
        let (report, failing) = exp::lint_apps();
        println!("{}", report.render());
        if failing > 0 {
            return ExitCode::FAILURE;
        }
        if opts.artifacts.is_empty() {
            return ExitCode::SUCCESS;
        }
    }

    let ctx = opts.context();
    eprintln!(
        "# sparsepipe experiments — scale 1/{}, {:?} matrices, source {:?}",
        ctx.scale, ctx.set, ctx.source
    );
    // Figures 14/16/17/18/20b/21/22/23 share one sweep; run it lazily.
    let sweep = if opts.needs_sweep() {
        eprintln!("# running app x matrix sweep …");
        Some(Sweep::run(ctx.clone()))
    } else {
        None
    };
    if let (Some(path), Some(sweep)) = (&opts.json_out, &sweep) {
        match serde_json::to_string_pretty(sweep)
            .map_err(std::io::Error::other)
            .and_then(|j| std::fs::write(path, j))
        {
            Ok(()) => eprintln!("# wrote sweep JSON to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let sweep_ref = || sweep.as_ref().expect("sweep computed above");

    for artifact in &opts.artifacts {
        let report = match artifact.as_str() {
            "table1" => exp::table1(&ctx),
            "table2" => exp::table2(),
            "table3" => exp::table3(),
            "fig14" => exp::fig14(sweep_ref()),
            "fig15" => exp::fig15(&ctx),
            "fig16" => exp::fig16(sweep_ref()),
            "fig17" => exp::fig17(sweep_ref()),
            "fig18" => exp::fig18(sweep_ref()),
            "fig19" => exp::fig19(&ctx),
            "fig20a" => exp::fig20a(&ctx),
            "fig20b" => exp::fig20b(sweep_ref()),
            "fig21" => exp::fig21(sweep_ref()),
            "fig22" => exp::fig22(sweep_ref()),
            "fig23" => exp::fig23(sweep_ref()),
            "ablation" => exp::ablation(&ctx),
            "verify" => exp::verify(),
            other => unreachable!("cli::parse validated artifact {other}"),
        };
        println!("{}", report.render());
    }
    ExitCode::SUCCESS
}
