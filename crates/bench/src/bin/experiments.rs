//! Regenerates the Sparsepipe paper's tables and figures.
//!
//! ```text
//! experiments <artifact>... [--scale N] [--quick] [--jobs N] [--json out.json]
//!                           [--bench-json out.json] [--mtx DIR] [--lint]
//!                           [--trace-dir DIR]
//! experiments trace [--app NAME] [--matrix CODE] [--trace-dir DIR]
//! experiments analyze [--app NAME] [--matrix CODE]
//! experiments compile --expr '<einsum>' | --file corpus.ses [--matrix CODE]
//!                     [--emit graph]
//! experiments convert --out FILE.slab [--in FILE.mtx | --matrix CODE --scale N]
//!
//! artifacts: all table1 table2 table3 fig14 fig15 fig16 fig17 fig18
//!            fig19 fig20a fig20b fig21 fig22 fig23 ablation verify
//! --scale N       dataset scale divisor (default 64; 1 = paper-size)
//! --quick         three-matrix subset (ca, gy, bu) for smoke runs
//! --jobs N        worker threads for the sweep executor (default 0 = all
//!                 cores; 1 = fully sequential). Output is byte-identical
//!                 for every N.
//! --json F        additionally dump the raw app x matrix sweep (all
//!                 systems' reports) as JSON to F
//! --bench-json F  write run telemetry (per-point wall clock, simulator
//!                 step counts, peak working sets) to F instead of the
//!                 default BENCH_experiments.json
//! --mtx DIR       load real MatrixMarket matrices from DIR/<code>.mtx
//!                 instead of the synthetic stand-ins (use --scale 1)
//! --slab DIR      load binary matrix slabs from DIR/<code>.s<scale>.slab
//!                 (written by `experiments convert`); exclusive with --mtx
//! --lint          run the static verifier (sparsepipe-lint) over every
//!                 registered app first; exit non-zero on any lint error
//! --trace-dir DIR with sweep artifacts: trace every sweep point, audit
//!                 each stream against its report bit-for-bit, and write
//!                 per-point JSONL traces to DIR. With the `trace`
//!                 subcommand: where the exports go (default trace-out)
//! trace           trace one (app, matrix) point (--app, --matrix; default
//!                 pr on ca) and export trace.jsonl, a Perfetto-loadable
//!                 chrome-trace.json, and reuse/occupancy/traffic CSVs
//! analyze         run the static cost & reuse analyzer (--app filters to
//!                 one app, default all; --matrix picks the input) and
//!                 verify every traffic/occupancy bound against an audited
//!                 simulator trace; writes analyze-report.json and exits
//!                 3 on any bound violation
//! compile         parse, lint, and lower sparse-einsum expressions
//!                 (`--expr` for one, `--file` for a corpus, one per
//!                 line), run one simulated point for each, and exit 4
//!                 when any expression carries a diagnostic error.
//!                 `--emit graph` additionally dumps each lowered
//!                 DataflowGraph as JSON into the trace dir
//! convert         write a binary matrix slab: `--in FILE.mtx` streams a
//!                 MatrixMarket file (constant-memory two-pass build), or
//!                 `--matrix CODE --scale N` freezes a synthetic matrix;
//!                 `--out FILE.slab` is required
//!
//! fault tolerance (routes sweeps through the isolated executor; a failed
//! point is reported and skipped instead of aborting the run, and the
//! process exits 2 when any point failed):
//! --deadline-ms N    per-point wall-clock budget
//! --retries N        attempts beyond the first per failed point
//! --backoff-ms N     deterministic doubling backoff base between retries
//! --checkpoint F     append each completed point to journal F (fsync'd)
//! --resume           restore completed points from F instead of re-running
//! --inject SPEC      deterministic fault injection for tests/CI, e.g.
//!                    panic@pr-ca, timeout@sssp-bu, transient@pr-ca:2
//! --prune-static N   skip sweep points whose statically *provable* DRAM
//!                    traffic lower bound exceeds N bytes (recorded as
//!                    `pruned_points` in the telemetry; an in-budget point
//!                    is never pruned)
//! ```

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use sparsepipe_bench::cli;
use sparsepipe_bench::error::BenchError;
use sparsepipe_bench::executor::Executor;
use sparsepipe_bench::experiments as exp;
use sparsepipe_bench::fault::FaultInjector;
use sparsepipe_bench::sweep::Sweep;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            let mut source = std::error::Error::source(&e);
            while let Some(cause) = source {
                eprintln!("  caused by: {cause}");
                source = cause.source();
            }
            ExitCode::FAILURE
        }
    }
}

fn write_json(path: &Path, value: &impl serde::Serialize) -> Result<(), BenchError> {
    let json = serde_json::to_string_pretty(value).map_err(|e| BenchError::Json(e.to_string()))?;
    std::fs::write(path, json).map_err(|source| BenchError::Io {
        path: path.to_path_buf(),
        source,
    })
}

fn run() -> Result<ExitCode, BenchError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            return Err(BenchError::Cli(format!("{e}\n{}", cli::usage())));
        }
    };
    if opts.help {
        eprintln!("{}", cli::usage());
        return Ok(ExitCode::SUCCESS);
    }
    if opts.lint {
        let (report, failing) = exp::lint_apps();
        println!("{}", report.render());
        if failing > 0 {
            return Ok(ExitCode::FAILURE);
        }
        if opts.artifacts.is_empty() {
            return Ok(ExitCode::SUCCESS);
        }
    }

    let ctx = opts.context();
    let exec = Executor::new(opts.jobs);
    // determinism: allow (host wall-clock telemetry, not simulated state)
    let wall_start = Instant::now();
    eprintln!(
        "# sparsepipe experiments — scale 1/{}, {:?} matrices, source {:?}, {} worker(s)",
        ctx.scale,
        ctx.set,
        ctx.source,
        exec.jobs()
    );
    // Figures 14/16/17/18/20b/21/22/23 share one sweep; run it lazily.
    let mut sweep_failures = 0usize;
    let mut bound_violations = 0usize;
    let mut compile_failures = 0usize;
    let sweep = if opts.needs_sweep() {
        if let Some(dir) = &opts.trace_dir {
            eprintln!(
                "# running app x matrix sweep with tracing (streams in {}) …",
                dir.display()
            );
            Some(Sweep::run_traced(ctx.clone(), &exec, dir)?)
        } else if opts.uses_fault_tolerance() {
            let injector = FaultInjector::from_specs(&opts.inject).map_err(BenchError::Cli)?;
            eprintln!("# running fault-tolerant app x matrix sweep …");
            let outcome = Sweep::run_checked(ctx.clone(), &exec, &opts.sweep_options(), &injector)?;
            if outcome.resumed > 0 {
                eprintln!(
                    "# resumed {} completed point(s) from the checkpoint journal, executed {}",
                    outcome.resumed, outcome.executed
                );
            }
            sweep_failures = outcome.failures.len();
            for failure in outcome.failures {
                eprintln!("point failed: {failure}");
                let mut source = std::error::Error::source(&failure);
                while let Some(cause) = source {
                    eprintln!("  caused by: {cause}");
                    source = cause.source();
                }
                exec.record_failure(failure);
            }
            Some(outcome.sweep)
        } else {
            eprintln!("# running app x matrix sweep …");
            Some(Sweep::run_with(ctx.clone(), &exec)?)
        }
    } else {
        None
    };
    if let (Some(path), Some(sweep)) = (&opts.json_out, &sweep) {
        write_json(path, sweep)?;
        eprintln!("# wrote sweep JSON to {}", path.display());
    }
    let sweep_ref = || sweep.as_ref().expect("sweep computed above");

    for artifact in &opts.artifacts {
        let report = match artifact.as_str() {
            "table1" => exp::table1(&ctx, &exec)?,
            "table2" => exp::table2()?,
            "table3" => exp::table3()?,
            "fig14" => exp::fig14(sweep_ref())?,
            "fig15" => exp::fig15(&ctx, &exec)?,
            "fig16" => exp::fig16(sweep_ref())?,
            "fig17" => exp::fig17(sweep_ref())?,
            "fig18" => exp::fig18(sweep_ref())?,
            "fig19" => exp::fig19(&ctx, &exec)?,
            "fig20a" => exp::fig20a(&ctx, &exec)?,
            "fig20b" => exp::fig20b(sweep_ref())?,
            "fig21" => exp::fig21(sweep_ref())?,
            "fig22" => exp::fig22(sweep_ref())?,
            "fig23" => exp::fig23(sweep_ref())?,
            "ablation" => exp::ablation(&ctx, &exec)?,
            "verify" => exp::verify()?,
            "trace" => exp::trace_point(
                &ctx,
                &exec,
                opts.trace_app(),
                opts.trace_matrix,
                &opts.trace_dir(),
            )?,
            "analyze" => {
                let (report, violations) = exp::analyze(
                    &ctx,
                    &exec,
                    opts.app.as_deref(),
                    opts.trace_matrix,
                    Path::new("analyze-report.json"),
                )?;
                bound_violations += violations;
                report
            }
            "compile" => {
                let entries = if let Some(src) = &opts.expr {
                    sparsepipe_bench::einsum_corpus::parse_corpus(src)
                } else {
                    let path = opts.expr_file.as_ref().expect("cli::parse validated");
                    sparsepipe_bench::einsum_corpus::load(path)?
                };
                if entries.is_empty() {
                    return Err(BenchError::Cli(
                        "compile: no expressions found in the input".into(),
                    ));
                }
                let emit_dir = opts.emit.as_ref().map(|_| opts.trace_dir());
                let (report, failing) = exp::compile_exprs(
                    &ctx,
                    &exec,
                    &entries,
                    opts.trace_matrix,
                    emit_dir.as_deref(),
                )?;
                compile_failures += failing;
                report
            }
            "convert" => exp::convert(
                opts.convert_in.as_deref(),
                opts.trace_matrix,
                opts.scale,
                opts.convert_out.as_ref().expect("cli::parse validated"),
            )?,
            other => unreachable!("cli::parse validated artifact {other}"),
        };
        println!("{}", report.render());
    }

    let telemetry = exec.finish();
    if telemetry.points > 0 {
        let path = opts
            .bench_json
            .clone()
            .unwrap_or_else(|| "BENCH_experiments.json".into());
        write_json(&path, &telemetry)?;
        eprintln!(
            "# {} simulation point(s), {:.2}s simulated wall clock across {} worker(s), \
             {:.2}s elapsed — telemetry in {}",
            telemetry.points,
            telemetry.sim_wall_s_total,
            telemetry.jobs,
            wall_start.elapsed().as_secs_f64(),
            path.display()
        );
    }
    if sweep_failures > 0 {
        eprintln!(
            "# {sweep_failures} sweep point(s) failed — details in the telemetry JSON \
             (`failed_points`); successful points are unaffected"
        );
        return Ok(ExitCode::from(2));
    }
    if bound_violations > 0 {
        eprintln!(
            "# {bound_violations} static bound violation(s) — the analyzer's proofs do not \
             hold against the audited trace (details in analyze-report.json)"
        );
        return Ok(ExitCode::from(3));
    }
    if compile_failures > 0 {
        eprintln!(
            "# {compile_failures} expression(s) failed to compile clean — diagnostics in the \
             compile report above"
        );
        return Ok(ExitCode::from(4));
    }
    Ok(ExitCode::SUCCESS)
}
