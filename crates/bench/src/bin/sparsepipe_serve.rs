//! The resident evaluation daemon.
//!
//! ```text
//! sparsepipe-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!                  [--cache-bytes BYTES] [--max-frame BYTES]
//! ```
//!
//! Binds, prints `listening on <addr>` (port 0 resolves to the actual
//! ephemeral port — scripts parse this line), and serves `EvalRequest`s
//! over the versioned length-prefixed JSON protocol until a wire
//! shutdown request arrives; then drains admitted work and exits.
//! `--cache-bytes` bounds the shared matrix cache with LRU eviction.

use std::process::ExitCode;

use sparsepipe_bench::serve::opts::{parse_serve, serve_usage};
use sparsepipe_bench::serve::server::Server;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_serve(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", serve_usage());
            return ExitCode::FAILURE;
        }
    };
    if opts.help {
        println!("{}", serve_usage());
        return ExitCode::SUCCESS;
    }
    let server = match Server::start(opts.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to start daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    server.wait_for_shutdown();
    println!("draining");
    server.shutdown();
    println!("bye");
    ExitCode::SUCCESS
}
