//! Typed errors for the benchmark harness.
//!
//! Every `experiments::*` generator returns `Result<Report, BenchError>`;
//! the `experiments` binary renders the error and exits non-zero instead
//! of panicking mid-sweep.

use std::path::PathBuf;

use sparsepipe_core::CoreError;
use sparsepipe_tensor::MatrixId;

/// Everything that can go wrong while regenerating an artifact.
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// Command-line arguments did not parse.
    Cli(String),
    /// An artifact referenced an app name missing from the registry.
    UnknownApp(String),
    /// An application's dataflow graph failed to compile.
    Compile {
        /// Application short name.
        app: String,
        /// The compiler's message.
        message: String,
    },
    /// A dataset could not be loaded (missing/malformed/non-square
    /// MatrixMarket file).
    Dataset {
        /// The Table-I matrix being loaded.
        matrix: MatrixId,
        /// What went wrong.
        message: String,
    },
    /// The simulator rejected a (program, matrix, iterations) point.
    Sim {
        /// Application short name.
        app: String,
        /// The matrix the simulation ran on.
        matrix: MatrixId,
        /// The simulator's error.
        source: CoreError,
    },
    /// A file read/write failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// JSON serialization failed.
    Json(String),
    /// A trace audit failed: the replayed event stream did not reproduce
    /// the simulator's traffic report bit-for-bit.
    Trace {
        /// Application short name.
        app: String,
        /// The matrix the traced simulation ran on.
        matrix: MatrixId,
        /// The audit's mismatch description.
        message: String,
    },
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Cli(msg) => write!(f, "invalid arguments: {msg}"),
            BenchError::UnknownApp(name) => write!(f, "unknown application `{name}`"),
            BenchError::Compile { app, message } => {
                write!(f, "app `{app}` failed to compile: {message}")
            }
            BenchError::Dataset { matrix, message } => {
                write!(f, "dataset `{}` failed to load: {message}", matrix.code())
            }
            BenchError::Sim {
                app,
                matrix,
                source,
            } => write!(
                f,
                "simulation of `{app}` on `{}` failed: {source}",
                matrix.code()
            ),
            BenchError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            BenchError::Json(msg) => write!(f, "JSON serialization failed: {msg}"),
            BenchError::Trace {
                app,
                matrix,
                message,
            } => write!(
                f,
                "trace audit of `{app}` on `{}` failed: {message}",
                matrix.code()
            ),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Sim { source, .. } => Some(source),
            BenchError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_failing_point() {
        let e = BenchError::Sim {
            app: "pr".into(),
            matrix: MatrixId::Bu,
            source: CoreError::ZeroIterations,
        };
        let msg = e.to_string();
        assert!(msg.contains("pr") && msg.contains("bu"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());

        let e = BenchError::Dataset {
            matrix: MatrixId::Eu,
            message: "no such file".into(),
        };
        assert!(e.to_string().contains("eu"));
    }
}
