//! Typed errors for the benchmark harness.
//!
//! Every `experiments::*` generator returns `Result<Report, BenchError>`;
//! the `experiments` binary renders the error and exits non-zero instead
//! of panicking mid-sweep.

use std::path::PathBuf;

use sparsepipe_core::CoreError;
use sparsepipe_tensor::MatrixId;

/// Everything that can go wrong while regenerating an artifact.
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// Command-line arguments did not parse.
    Cli(String),
    /// An artifact referenced an app name missing from the registry.
    UnknownApp(String),
    /// An application's dataflow graph failed to compile.
    Compile {
        /// Application short name.
        app: String,
        /// The compiler's message.
        message: String,
    },
    /// A dataset could not be loaded (missing/malformed/non-square
    /// MatrixMarket file).
    Dataset {
        /// The Table-I matrix being loaded.
        matrix: MatrixId,
        /// What went wrong.
        message: String,
    },
    /// The simulator rejected a (program, matrix, iterations) point.
    Sim {
        /// Application short name.
        app: String,
        /// The matrix the simulation ran on.
        matrix: MatrixId,
        /// The simulator's error.
        source: CoreError,
    },
    /// A file read/write failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// JSON serialization failed.
    Json(String),
    /// A trace audit failed: the replayed event stream did not reproduce
    /// the simulator's traffic report bit-for-bit.
    Trace {
        /// Application short name.
        app: String,
        /// The matrix the traced simulation ran on.
        matrix: MatrixId,
        /// The audit's mismatch description.
        message: String,
    },
    /// The checkpoint journal could not be written, read, or validated
    /// (`--checkpoint` / `--resume`).
    Checkpoint {
        /// The journal path.
        path: PathBuf,
        /// What went wrong.
        message: String,
    },
    /// A [`FaultInjector`](crate::fault::FaultInjector) injected a
    /// transient error at this point (test/CI harness paths only).
    Injected {
        /// The `app-matrix` label of the injected point.
        label: String,
        /// Which attempt the fault fired on (1-based).
        attempt: u32,
    },
}

impl BenchError {
    /// The stable, wire-safe string code for this error family, used by
    /// the serve protocol envelope (DESIGN.md §14). Codes are part of
    /// the wire contract: existing codes never change meaning, and the
    /// enum is `#[non_exhaustive]` so new variants (with new codes) are
    /// not semver breaks.
    pub fn code(&self) -> &'static str {
        match self {
            BenchError::Cli(_) => "cli",
            BenchError::UnknownApp(_) => "unknown-app",
            BenchError::Compile { .. } => "compile",
            BenchError::Dataset { .. } => "dataset",
            BenchError::Sim { .. } => "sim",
            BenchError::Io { .. } => "io",
            BenchError::Json(_) => "json",
            BenchError::Trace { .. } => "trace",
            BenchError::Checkpoint { .. } => "checkpoint",
            BenchError::Injected { .. } => "injected",
        }
    }
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Cli(msg) => write!(f, "invalid arguments: {msg}"),
            BenchError::UnknownApp(name) => write!(f, "unknown application `{name}`"),
            BenchError::Compile { app, message } => {
                write!(f, "app `{app}` failed to compile: {message}")
            }
            BenchError::Dataset { matrix, message } => {
                write!(f, "dataset `{}` failed to load: {message}", matrix.code())
            }
            BenchError::Sim {
                app,
                matrix,
                source,
            } => write!(
                f,
                "simulation of `{app}` on `{}` failed: {source}",
                matrix.code()
            ),
            BenchError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            BenchError::Json(msg) => write!(f, "JSON serialization failed: {msg}"),
            BenchError::Trace {
                app,
                matrix,
                message,
            } => write!(
                f,
                "trace audit of `{app}` on `{}` failed: {message}",
                matrix.code()
            ),
            BenchError::Checkpoint { path, message } => {
                write!(f, "checkpoint journal {}: {message}", path.display())
            }
            BenchError::Injected { label, attempt } => {
                write!(
                    f,
                    "injected transient fault at `{label}` (attempt {attempt})"
                )
            }
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Sim { source, .. } => Some(source),
            BenchError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The identity of one sweep point, carried by every fault-tolerance
/// artifact (failure reports, checkpoint records, injector rules).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PointKey {
    /// Application short name (e.g. `pr`).
    pub app: String,
    /// Matrix code (e.g. `ca` — [`MatrixId::code`] form).
    pub matrix: String,
    /// Dataset scale divisor the sweep ran at.
    pub scale: u64,
}

impl PointKey {
    /// The `app-matrix` label used in telemetry and injector specs.
    pub fn label(&self) -> String {
        format!("{}-{}", self.app, self.matrix)
    }
}

impl std::fmt::Display for PointKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}@{}", self.app, self.matrix, self.scale)
    }
}

impl serde::Serialize for PointKey {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("app".to_string(), self.app.to_value()),
            ("matrix".to_string(), self.matrix.to_value()),
            ("scale".to_string(), self.scale.to_value()),
        ])
    }
}

/// How a sweep point failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum PointErrorKind {
    /// The point's evaluation panicked; the payload is the panic message.
    Panic(String),
    /// The point exceeded its per-point wall-clock deadline.
    Timeout {
        /// The budget the point was given, in milliseconds.
        budget_ms: u64,
    },
    /// The point's evaluation returned an error.
    Sim(BenchError),
}

impl PointErrorKind {
    /// The stable kind tag used in telemetry JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            PointErrorKind::Panic(_) => "panic",
            PointErrorKind::Timeout { .. } => "timeout",
            PointErrorKind::Sim(_) => "error",
        }
    }

    /// The stable wire code: `panic`/`timeout` for isolation failures,
    /// the underlying [`BenchError::code`] for simulation errors. Unlike
    /// [`PointErrorKind::tag`] (coarse telemetry bucket), this names the
    /// precise failure family for protocol clients.
    pub fn code(&self) -> &'static str {
        match self {
            PointErrorKind::Panic(_) => "panic",
            PointErrorKind::Timeout { .. } => "timeout",
            PointErrorKind::Sim(e) => e.code(),
        }
    }
}

/// A failed sweep point: what failed, how, and after how many attempts.
/// Rendered into `BENCH_experiments.json` (`failed_points`) and the CLI
/// error chain; the sweep completes around it.
#[derive(Debug)]
pub struct PointError {
    /// How the point failed (last attempt's outcome).
    pub kind: PointErrorKind,
    /// Which point failed.
    pub point: PointKey,
    /// Attempts made before giving up (≥ 1).
    pub attempts: u32,
}

impl PointError {
    /// The stable wire code for this failure (see
    /// [`PointErrorKind::code`]).
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "point {} failed after {} attempt(s): ",
            self.point, self.attempts
        )?;
        match &self.kind {
            PointErrorKind::Panic(msg) => write!(f, "panicked: {msg}"),
            PointErrorKind::Timeout { budget_ms } => {
                write!(f, "exceeded its {budget_ms} ms deadline")
            }
            PointErrorKind::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            PointErrorKind::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl serde::Serialize for PointError {
    fn to_value(&self) -> serde::Value {
        let detail = match &self.kind {
            PointErrorKind::Panic(msg) => msg.clone(),
            PointErrorKind::Timeout { budget_ms } => format!("deadline {budget_ms} ms"),
            PointErrorKind::Sim(e) => e.to_string(),
        };
        serde::Value::Map(vec![
            ("point".to_string(), self.point.to_value()),
            ("kind".to_string(), self.kind.tag().to_value()),
            ("code".to_string(), self.code().to_value()),
            ("detail".to_string(), detail.to_value()),
            ("attempts".to_string(), self.attempts.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_failing_point() {
        let e = BenchError::Sim {
            app: "pr".into(),
            matrix: MatrixId::Bu,
            source: CoreError::ZeroIterations,
        };
        let msg = e.to_string();
        assert!(msg.contains("pr") && msg.contains("bu"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());

        let e = BenchError::Dataset {
            matrix: MatrixId::Eu,
            message: "no such file".into(),
        };
        assert!(e.to_string().contains("eu"));
    }

    #[test]
    fn point_error_names_point_kind_and_attempts() {
        let key = PointKey {
            app: "pr".into(),
            matrix: "ca".into(),
            scale: 64,
        };
        assert_eq!(key.label(), "pr-ca");
        assert_eq!(key.to_string(), "pr-ca@64");

        let e = PointError {
            kind: PointErrorKind::Timeout { budget_ms: 250 },
            point: key.clone(),
            attempts: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("pr-ca@64") && msg.contains("3 attempt") && msg.contains("250"));
        assert!(std::error::Error::source(&e).is_none());

        let e = PointError {
            kind: PointErrorKind::Sim(BenchError::UnknownApp("zz".into())),
            point: key.clone(),
            attempts: 1,
        };
        assert!(std::error::Error::source(&e).is_some());

        let e = PointError {
            kind: PointErrorKind::Panic("index out of bounds".into()),
            point: key,
            attempts: 2,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"kind\":\"panic\""), "{json}");
        assert!(json.contains("\"code\":\"panic\""), "{json}");
        assert!(json.contains("\"app\":\"pr\""), "{json}");
        assert!(json.contains("\"attempts\":2"), "{json}");
        assert!(json.contains("index out of bounds"), "{json}");
    }

    #[test]
    fn wire_codes_are_stable_and_distinct() {
        // The wire contract (DESIGN.md §14): these exact strings are
        // frozen — clients dispatch on them.
        let cases: Vec<(BenchError, &str)> = vec![
            (BenchError::Cli("x".into()), "cli"),
            (BenchError::UnknownApp("x".into()), "unknown-app"),
            (
                BenchError::Compile {
                    app: "pr".into(),
                    message: String::new(),
                },
                "compile",
            ),
            (
                BenchError::Dataset {
                    matrix: MatrixId::Ca,
                    message: String::new(),
                },
                "dataset",
            ),
            (
                BenchError::Sim {
                    app: "pr".into(),
                    matrix: MatrixId::Ca,
                    source: CoreError::ZeroIterations,
                },
                "sim",
            ),
            (
                BenchError::Io {
                    path: "/x".into(),
                    source: std::io::Error::other("x"),
                },
                "io",
            ),
            (BenchError::Json("x".into()), "json"),
            (
                BenchError::Trace {
                    app: "pr".into(),
                    matrix: MatrixId::Ca,
                    message: String::new(),
                },
                "trace",
            ),
            (
                BenchError::Checkpoint {
                    path: "/x".into(),
                    message: String::new(),
                },
                "checkpoint",
            ),
            (
                BenchError::Injected {
                    label: "pr-ca".into(),
                    attempt: 1,
                },
                "injected",
            ),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (err, code) in &cases {
            assert_eq!(err.code(), *code);
            assert!(seen.insert(*code), "duplicate wire code {code}");
        }
        // PointErrorKind::code refines tag() with the BenchError family
        assert_eq!(PointErrorKind::Panic("p".into()).code(), "panic");
        assert_eq!(PointErrorKind::Timeout { budget_ms: 1 }.code(), "timeout");
        assert_eq!(
            PointErrorKind::Sim(BenchError::UnknownApp("z".into())).code(),
            "unknown-app"
        );
    }

    #[test]
    fn new_bench_variants_render() {
        let e = BenchError::Checkpoint {
            path: "/tmp/j.jsonl".into(),
            message: "digest mismatch".into(),
        };
        assert!(e.to_string().contains("digest mismatch"));
        let e = BenchError::Injected {
            label: "pr-ca".into(),
            attempt: 2,
        };
        assert!(e.to_string().contains("pr-ca") && e.to_string().contains("2"));
    }
}
