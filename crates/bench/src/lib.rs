//! Benchmark harness for the Sparsepipe evaluation.
//!
//! Regenerates every table and figure of the paper's §V–§VI. The
//! `experiments` binary (`cargo run -p sparsepipe-bench --release --bin
//! experiments -- all`) prints each artifact; Criterion benches under
//! `benches/` wrap the hot paths.
//!
//! # Scaling
//!
//! Experiments run at a configurable divisor of the paper's dataset sizes
//! (default 64; see `DESIGN.md` §3). The Sparsepipe buffer **and** the
//! CPU/GPU cache capacities are scaled by the same factor, preserving
//! every capacity-to-footprint ratio the results depend on. The scale is
//! printed in every table header.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod cli;
pub mod datasets;
pub mod einsum_corpus;
pub mod error;
pub mod executor;
pub mod experiments;
pub mod fault;
pub mod serve;
pub mod sweep;
pub mod table;

/// Geometric mean of a non-empty slice (ignores non-positive values).
///
/// ```
/// let g = sparsepipe_bench::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[0.0, -1.0]), 0.0);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }
}
