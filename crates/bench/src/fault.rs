//! Fault-tolerance policy for long-running sweeps: retry schedules and
//! deterministic fault injection.
//!
//! A 226-point sweep must survive one pathological point. The executor
//! isolates every point behind `catch_unwind` plus a per-point wall-clock
//! deadline ([`crate::executor::Executor::run_isolated`]); this module
//! supplies the two policies around that isolation:
//!
//! * [`RetryPolicy`] — how many attempts a point gets and how long to
//!   back off between them. The schedule is a pure function of the
//!   attempt number (no wall-clock randomness), so retried runs stay
//!   byte-identical for every successful point at any `--jobs N`.
//! * [`FaultHook`] / [`FaultInjector`] — a deterministic, seedable fault
//!   source consulted before each attempt, used by the integration tests
//!   and the CI `fault-smoke` job to prove isolation, retry, and resume
//!   actually work. Production sweeps run with [`NoFaults`].

use crate::error::{BenchError, PointErrorKind, PointKey};

/// How many attempts a point gets and how to space them.
///
/// The backoff schedule is deterministic: attempt `k` (1-based) sleeps
/// `min(backoff_base_ms << (k - 1), backoff_cap_ms)` milliseconds before
/// retrying. Sleeping only delays workers — it never reorders results
/// (the executor reassembles by input index) and never feeds wall-clock
/// values into any rendered output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts a point gets before it is declared failed (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff, in milliseconds.
    pub backoff_cap_ms: u64,
}

impl Default for RetryPolicy {
    /// One attempt, no retries — the pre-fault-tolerance behavior.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `retries` retries (so `retries + 1` attempts) and a
    /// doubling backoff starting at `backoff_base_ms`, capped at 8×.
    pub fn with_retries(retries: u32, backoff_base_ms: u64) -> Self {
        RetryPolicy {
            max_attempts: retries + 1,
            backoff_base_ms,
            backoff_cap_ms: backoff_base_ms.saturating_mul(8),
        }
    }

    /// The backoff taken after failed attempt `attempt` (1-based), or
    /// `None` when the point has no attempts left.
    pub fn backoff_after(&self, attempt: u32) -> Option<std::time::Duration> {
        if attempt >= self.max_attempts {
            return None;
        }
        let shift = attempt.saturating_sub(1).min(63);
        let ms = self
            .backoff_base_ms
            .checked_shl(shift)
            .unwrap_or(u64::MAX)
            .min(self.backoff_cap_ms);
        Some(std::time::Duration::from_millis(ms))
    }
}

/// What a fault hook can make an attempt do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic inside the point's evaluation (exercises `catch_unwind`).
    Panic,
    /// Fail as if the point's deadline expired.
    Timeout,
    /// Return a transient [`BenchError::Injected`] (succeeds on a later
    /// attempt once the rule's `fail_attempts` are exhausted).
    Transient,
}

/// A deterministic fault source consulted once per (point, attempt).
///
/// Implementations must be pure functions of their construction state and
/// the `(key, attempt)` arguments — the executor may consult them from
/// any worker thread in any order.
pub trait FaultHook: Sync {
    /// The fault to inject into this attempt, if any.
    fn inject(&self, key: &PointKey, attempt: u32) -> Option<InjectedFault>;
}

/// The production hook: never injects anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn inject(&self, _key: &PointKey, _attempt: u32) -> Option<InjectedFault> {
        None
    }
}

/// One injection rule: fault `kind` fires at the point labelled
/// `app-matrix` on attempts `1..=fail_attempts`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultRule {
    label: String,
    kind: InjectedFault,
    fail_attempts: u32,
}

/// A rule-based [`FaultHook`] for tests and the CI smoke job.
///
/// Rules are parsed from `--inject` specs of the form
/// `<kind>@<app>-<matrix>[:<attempts>]`, e.g. `panic@pr-ca`,
/// `timeout@sssp-bu`, or `transient@pr-ca:2` (fail the first two
/// attempts, succeed afterwards). `attempts` defaults to `u32::MAX` for
/// `panic`/`timeout` (the point always fails) and `1` for `transient`
/// (succeeds on the first retry).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultInjector {
    rules: Vec<FaultRule>,
}

impl FaultInjector {
    /// An injector with no rules (equivalent to [`NoFaults`]).
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Parses one `--inject` spec and adds its rule.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs.
    pub fn add_spec(&mut self, spec: &str) -> Result<(), String> {
        let (kind_s, rest) = spec
            .split_once('@')
            .ok_or_else(|| format!("`{spec}`: expected <kind>@<app>-<matrix>[:<attempts>]"))?;
        let kind = match kind_s {
            "panic" => InjectedFault::Panic,
            "timeout" => InjectedFault::Timeout,
            "transient" => InjectedFault::Transient,
            other => {
                return Err(format!(
                    "unknown fault kind `{other}` (panic/timeout/transient)"
                ))
            }
        };
        let (label, attempts) = match rest.split_once(':') {
            Some((label, n)) => {
                let n: u32 = n
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("`{spec}`: attempts must be a positive integer"))?;
                (label, n)
            }
            None => (
                rest,
                if kind == InjectedFault::Transient {
                    1
                } else {
                    u32::MAX
                },
            ),
        };
        if label.is_empty() {
            return Err(format!("`{spec}`: empty point label"));
        }
        self.rules.push(FaultRule {
            label: label.to_string(),
            kind,
            fail_attempts: attempts,
        });
        Ok(())
    }

    /// Builds an injector from a list of `--inject` specs.
    ///
    /// # Errors
    ///
    /// Returns the first malformed spec's message.
    pub fn from_specs<S: AsRef<str>>(specs: &[S]) -> Result<Self, String> {
        let mut inj = FaultInjector::new();
        for spec in specs {
            inj.add_spec(spec.as_ref())?;
        }
        Ok(inj)
    }

    /// A seeded injector that deterministically picks `count` distinct
    /// victim points out of `labels` (an `app-matrix` label list) and
    /// assigns each a fault kind — the property-style entry used by the
    /// integration tests to cover arbitrary points without wall-clock
    /// randomness.
    pub fn seeded(seed: u64, labels: &[String], count: usize) -> Self {
        // splitmix64: deterministic, no external deps
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut inj = FaultInjector::new();
        if labels.is_empty() {
            return inj;
        }
        let kinds = [
            InjectedFault::Panic,
            InjectedFault::Timeout,
            InjectedFault::Transient,
        ];
        let mut remaining: Vec<&String> = labels.iter().collect();
        for _ in 0..count.min(labels.len()) {
            let pick = (next() % remaining.len() as u64) as usize;
            let label = remaining.swap_remove(pick);
            let kind = kinds[(next() % 3) as usize];
            inj.rules.push(FaultRule {
                label: label.clone(),
                kind,
                fail_attempts: if kind == InjectedFault::Transient {
                    1
                } else {
                    u32::MAX
                },
            });
        }
        inj
    }

    /// Whether the injector has any rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The labels this injector targets, in rule order.
    pub fn labels(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.label.as_str()).collect()
    }
}

impl FaultHook for FaultInjector {
    fn inject(&self, key: &PointKey, attempt: u32) -> Option<InjectedFault> {
        let label = key.label();
        self.rules
            .iter()
            .find(|r| r.label == label && attempt <= r.fail_attempts)
            .map(|r| r.kind)
    }
}

/// Classifies a [`BenchError`] from a failed attempt into the
/// [`PointErrorKind`] reported for the point: deadline expiries become
/// `Timeout`, everything else stays a structured `Sim` error.
pub fn classify(err: BenchError) -> PointErrorKind {
    if let BenchError::Sim {
        source: sparsepipe_core::CoreError::DeadlineExceeded { budget_ms },
        ..
    } = &err
    {
        return PointErrorKind::Timeout {
            budget_ms: *budget_ms,
        };
    }
    PointErrorKind::Sim(err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(app: &str, matrix: &str) -> PointKey {
        PointKey {
            app: app.into(),
            matrix: matrix.into(),
            scale: 64,
        }
    }

    #[test]
    fn default_policy_is_single_attempt() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff_after(1), None);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_base_ms: 10,
            backoff_cap_ms: 35,
        };
        let ms = |a| p.backoff_after(a).map(|d| d.as_millis());
        assert_eq!(ms(1), Some(10));
        assert_eq!(ms(2), Some(20));
        assert_eq!(ms(3), Some(35), "capped");
        assert_eq!(ms(4), Some(35));
        assert_eq!(ms(5), None, "no attempts left");
    }

    #[test]
    fn specs_parse_and_fire() {
        let inj = FaultInjector::from_specs(&["panic@pr-ca", "transient@sssp-bu:2"]).unwrap();
        assert_eq!(inj.inject(&key("pr", "ca"), 1), Some(InjectedFault::Panic));
        assert_eq!(inj.inject(&key("pr", "ca"), 99), Some(InjectedFault::Panic));
        assert_eq!(
            inj.inject(&key("sssp", "bu"), 2),
            Some(InjectedFault::Transient)
        );
        assert_eq!(inj.inject(&key("sssp", "bu"), 3), None, "recovers");
        assert_eq!(inj.inject(&key("cg", "ca"), 1), None);
        assert!(NoFaults.inject(&key("pr", "ca"), 1).is_none());
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultInjector::from_specs(&["panic"]).is_err());
        assert!(FaultInjector::from_specs(&["frob@pr-ca"]).is_err());
        assert!(FaultInjector::from_specs(&["panic@pr-ca:0"]).is_err());
        assert!(FaultInjector::from_specs(&["panic@"]).is_err());
    }

    #[test]
    fn seeded_injection_is_deterministic_and_distinct() {
        let labels: Vec<String> = ["pr-ca", "pr-gy", "cg-ca", "cg-gy", "sssp-bu"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let a = FaultInjector::seeded(42, &labels, 3);
        let b = FaultInjector::seeded(42, &labels, 3);
        assert_eq!(a, b, "same seed, same rules");
        let picked = a.labels();
        assert_eq!(picked.len(), 3);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "victims are distinct");
        let c = FaultInjector::seeded(43, &labels, 3);
        assert_ne!(a, c, "different seed, different rules (w.h.p.)");
    }

    #[test]
    fn classify_splits_timeouts_from_errors() {
        let timeout = BenchError::Sim {
            app: "pr".into(),
            matrix: sparsepipe_tensor::MatrixId::Ca,
            source: sparsepipe_core::CoreError::DeadlineExceeded { budget_ms: 9 },
        };
        assert!(matches!(
            classify(timeout),
            PointErrorKind::Timeout { budget_ms: 9 }
        ));
        let other = BenchError::UnknownApp("zz".into());
        assert!(matches!(classify(other), PointErrorKind::Sim(_)));
    }
}
