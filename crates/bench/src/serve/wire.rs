//! The versioned serve envelope: typed requests/responses and their
//! JSON wire form.
//!
//! Every frame carries `{"v": 1, "id": N, "type": "...", ...}`. The
//! envelope is:
//!
//! * **versioned** — `v` is checked first; an unsupported version is
//!   rejected with the stable code [`codes::VERSION`] before anything
//!   else is interpreted, so the field set of future versions is
//!   unconstrained;
//! * **unknown-field-tolerant** — decoding walks the JSON tree for the
//!   fields it needs and ignores the rest, so a v1 server and a v1
//!   client can each grow optional fields without breaking the other;
//! * **shared between paths** — [`EvalSpec::run_local`] is the same
//!   code the daemon's workers run, so an in-process evaluation and a
//!   network round-trip of the same spec produce byte-identical
//!   entries (`serve_e2e` proves it).
//!
//! Error responses carry a stable string `code` ([`BenchError::code`] /
//! [`PointErrorKind::code`](crate::error::PointErrorKind::code) for
//! evaluation failures, the [`codes`] constants for protocol-level
//! rejections) so clients dispatch on codes, never on message text.

use serde::{Serialize, Value};
use sparsepipe_tensor::MatrixId;

use crate::datasets::ScaledDataset;
use crate::error::{BenchError, PointKey};
use crate::sweep::{Entry, EvalOutcome, EvalRequest};

/// The protocol version this build speaks.
pub const WIRE_VERSION: u64 = 1;

/// Stable protocol-level error codes (evaluation failures use
/// [`BenchError::code`] instead). Frozen: clients dispatch on these.
pub mod codes {
    /// The request's `v` field named an unsupported protocol version.
    pub const VERSION: &str = "version";
    /// The frame parsed as JSON but required envelope fields were
    /// missing or ill-typed.
    pub const MALFORMED: &str = "malformed";
    /// The admission queue was at its depth cap; retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// The daemon is draining for shutdown and admits no new work.
    pub const DRAINING: &str = "draining";
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The envelope named a version this build does not speak.
    Version {
        /// The version the peer sent.
        got: u64,
    },
    /// The frame was not a valid envelope of the negotiated version.
    Malformed(String),
}

impl WireError {
    /// The stable wire code for this decode failure.
    pub fn code(&self) -> &'static str {
        match self {
            WireError::Version { .. } => codes::VERSION,
            WireError::Malformed(_) => codes::MALFORMED,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Version { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this build speaks {WIRE_VERSION})"
                )
            }
            WireError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The owned, serializable form of an [`EvalRequest`]: everything a
/// caller chooses about a single-point evaluation, free of borrows so
/// it can cross the wire (the in-process builder borrows its app and
/// dataset; the daemon resolves both from this spec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalSpec {
    /// Application short name (registry form, e.g. `pr`).
    pub app: String,
    /// Matrix code ([`MatrixId::code`] form, e.g. `ca`).
    pub matrix: String,
    /// Dataset scale divisor.
    pub scale: u64,
    /// Per-request wall-clock budget, mapped onto
    /// [`EvalRequest::deadline`] (and through it
    /// `SimRequest::deadline`); `None` = unbounded.
    pub deadline_ms: Option<u64>,
    /// Extra attempts after a failed one (0 = single attempt), run on
    /// the executor's deterministic retry schedule.
    pub retries: u32,
}

impl EvalSpec {
    /// A spec with no deadline and no retries.
    pub fn new(app: impl Into<String>, matrix: impl Into<String>, scale: u64) -> Self {
        EvalSpec {
            app: app.into(),
            matrix: matrix.into(),
            scale,
            deadline_ms: None,
            retries: 0,
        }
    }

    /// The point identity this spec evaluates.
    pub fn key(&self) -> PointKey {
        PointKey {
            app: self.app.clone(),
            matrix: self.matrix.clone(),
            scale: self.scale,
        }
    }

    /// The [`MatrixId`] named by [`EvalSpec::matrix`], if any.
    pub fn matrix_id(&self) -> Option<MatrixId> {
        MatrixId::ALL
            .iter()
            .copied()
            .find(|m| m.code() == self.matrix)
    }

    /// Admission-time validation: the spec names a known matrix, a
    /// scale the dataset generator accepts, and — when the app is
    /// registered — a scaled matrix large enough for the app's row
    /// floor (`StaApp::min_rows`; the SpGEMM family needs ≥ 32 rows).
    /// The daemon runs this before queueing, so a hostile spec
    /// (`scale: 0`, `scale: u64::MAX`) is refused with a stable error
    /// response instead of panicking a worker during dataset
    /// generation. An *unknown* app name still passes here — the
    /// worker's [`EvalSpec::run_local`] owns that rejection
    /// (`unknown-app`), keeping the two error families distinct.
    ///
    /// # Errors
    ///
    /// The stable wire `code` (the `dataset` family) and a
    /// human-readable message.
    pub fn validate(&self) -> Result<MatrixId, (&'static str, String)> {
        let Some(id) = self.matrix_id() else {
            return Err(("dataset", format!("unknown matrix code `{}`", self.matrix)));
        };
        // One admission path for every consumer: the daemon, the sweep,
        // and ad-hoc tools all run `DatasetSpec::admit`. The wire layer
        // only contributes the app row floor (unknown apps pass — the
        // worker's `run_local` owns that rejection).
        let min_rows = sparsepipe_apps::registry::by_name(&self.app).map_or(1, |app| app.min_rows);
        crate::datasets::DatasetSpec::new(id, self.scale).admit(min_rows)?;
        Ok(id)
    }

    /// Runs this spec in-process — the exact code path the daemon's
    /// workers execute per request, exposed so serial evaluation and a
    /// network round-trip are the same computation. `dataset` must be
    /// the [`ScaledDataset`] for [`EvalSpec::matrix`]/[`EvalSpec::scale`]
    /// (the daemon keeps these warm per `(matrix, scale)`).
    ///
    /// Retries are *not* applied here: panic isolation and the retry
    /// loop wrap this via
    /// [`executor::isolate_point`](crate::executor::isolate_point).
    ///
    /// # Errors
    ///
    /// [`BenchError::UnknownApp`] for an unregistered app,
    /// [`BenchError::Dataset`] when `dataset` does not match the spec,
    /// and whatever [`EvalRequest::run`] reports.
    pub fn run_local(
        &self,
        dataset: &ScaledDataset,
        cache: &sparsepipe_core::MatrixCache,
    ) -> Result<EvalOutcome, BenchError> {
        let app = sparsepipe_apps::registry::by_name(&self.app)
            .ok_or_else(|| BenchError::UnknownApp(self.app.clone()))?;
        if dataset.id.code() != self.matrix || dataset.scale != self.scale {
            return Err(BenchError::Dataset {
                matrix: dataset.id,
                message: format!(
                    "dataset is {}@{}, spec wants {}@{}",
                    dataset.id.code(),
                    dataset.scale,
                    self.matrix,
                    self.scale
                ),
            });
        }
        let mut req = EvalRequest::new(&app, dataset, self.scale).cache(cache);
        if let Some(ms) = self.deadline_ms {
            req = req.deadline(std::time::Duration::from_millis(ms));
        }
        req.run()
    }

    fn to_fields(&self, fields: &mut Vec<(String, Value)>) {
        fields.push(("app".to_string(), self.app.to_value()));
        fields.push(("matrix".to_string(), self.matrix.to_value()));
        fields.push(("scale".to_string(), self.scale.to_value()));
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), ms.to_value()));
        }
        if self.retries > 0 {
            fields.push(("retries".to_string(), self.retries.to_value()));
        }
    }

    fn from_value(v: &Value) -> Result<Self, WireError> {
        let app = require_str(v, "app")?.to_string();
        let matrix = require_str(v, "matrix")?.to_string();
        let scale = require_u64(v, "scale")?;
        let deadline_ms = match v.get("deadline_ms") {
            None => None,
            Some(ms) => Some(ms.as_u64().ok_or_else(|| {
                WireError::Malformed("`deadline_ms` is not an unsigned integer".into())
            })?),
        };
        let retries = match v.get("retries") {
            None => 0,
            Some(r) => u32::try_from(r.as_u64().ok_or_else(|| {
                WireError::Malformed("`retries` is not an unsigned integer".into())
            })?)
            .map_err(|_| WireError::Malformed("`retries` exceeds u32".into()))?,
        };
        Ok(EvalSpec {
            app,
            matrix,
            scale,
            deadline_ms,
            retries,
        })
    }
}

/// A client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate one point.
    Eval {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// What to evaluate.
        spec: EvalSpec,
    },
    /// Report daemon and cache counters.
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Begin graceful drain: stop admitting, finish queued work, exit.
    Shutdown {
        /// Correlation id.
        id: u64,
    },
}

impl Request {
    /// Encodes the request as one envelope-framed JSON text.
    pub fn encode(&self) -> String {
        let mut fields = vec![("v".to_string(), WIRE_VERSION.to_value())];
        match self {
            Request::Eval { id, spec } => {
                fields.push(("id".to_string(), id.to_value()));
                fields.push(("type".to_string(), "eval".to_value()));
                spec.to_fields(&mut fields);
            }
            Request::Stats { id } => {
                fields.push(("id".to_string(), id.to_value()));
                fields.push(("type".to_string(), "stats".to_value()));
            }
            Request::Shutdown { id } => {
                fields.push(("id".to_string(), id.to_value()));
                fields.push(("type".to_string(), "shutdown".to_value()));
            }
        }
        render(Value::Map(fields))
    }

    /// Decodes one frame's JSON text.
    ///
    /// # Errors
    ///
    /// [`WireError::Version`] for an unsupported `v`,
    /// [`WireError::Malformed`] for anything else wrong.
    pub fn decode(text: &str) -> Result<Self, WireError> {
        let v = parse(text)?;
        check_version(&v)?;
        let id = require_u64(&v, "id")?;
        match require_str(&v, "type")? {
            "eval" => Ok(Request::Eval {
                id,
                spec: EvalSpec::from_value(&v)?,
            }),
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(WireError::Malformed(format!(
                "unknown request type `{other}`"
            ))),
        }
    }
}

/// Daemon/cache counters returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Eval requests answered with an entry.
    pub served: u64,
    /// Eval requests answered with an evaluation failure.
    pub failed: u64,
    /// Eval requests refused at admission (queue full or draining).
    pub rejected: u64,
    /// Requests queued but not yet completed at sample time.
    pub queue_len: u64,
    /// Worker threads evaluating requests.
    pub workers: u64,
    /// Matrix-cache lookups served from the cache.
    pub cache_hits: u64,
    /// Matrix-cache lookups that had to build.
    pub cache_misses: u64,
    /// Matrix-cache entries evicted under the byte budget.
    pub cache_evictions: u64,
    /// Matrix-cache resident bytes at sample time.
    pub cache_resident_bytes: u64,
    /// Matrix-cache byte budget (0 = unbounded).
    pub cache_budget_bytes: u64,
}

impl ServeStats {
    const FIELDS: [&'static str; 10] = [
        "served",
        "failed",
        "rejected",
        "queue_len",
        "workers",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "cache_resident_bytes",
        "cache_budget_bytes",
    ];

    fn values(&self) -> [u64; 10] {
        [
            self.served,
            self.failed,
            self.rejected,
            self.queue_len,
            self.workers,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_resident_bytes,
            self.cache_budget_bytes,
        ]
    }

    fn from_value(v: &Value) -> Result<Self, WireError> {
        let mut vals = [0u64; 10];
        for (slot, name) in vals.iter_mut().zip(Self::FIELDS) {
            *slot = require_u64(v, name)?;
        }
        let [served, failed, rejected, queue_len, workers, cache_hits, cache_misses, cache_evictions, cache_resident_bytes, cache_budget_bytes] =
            vals;
        Ok(ServeStats {
            served,
            failed,
            rejected,
            queue_len,
            workers,
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_resident_bytes,
            cache_budget_bytes,
        })
    }

    /// The cache hit rate in `[0, 1]`, or 0 when untouched.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

impl Serialize for ServeStats {
    fn to_value(&self) -> Value {
        Value::Map(
            Self::FIELDS
                .iter()
                .zip(self.values())
                .map(|(name, val)| ((*name).to_string(), val.to_value()))
                .collect(),
        )
    }
}

/// A server → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A successful evaluation: the point's [`Entry`] as a JSON tree.
    Entry {
        /// Echo of the request id.
        id: u64,
        /// Attempts the evaluation took (≥ 1).
        attempts: u32,
        /// The entry, as produced by [`Entry`]'s serialization — kept
        /// as a `Value` so clients can re-render it byte-identically
        /// to an in-process `serde_json::to_string(&entry)`.
        entry: Value,
    },
    /// The request failed; `code` is stable, `message` is for humans.
    Error {
        /// Echo of the request id (0 when the frame itself was
        /// undecodable and no id was recovered).
        id: u64,
        /// Stable failure code ([`codes`] or [`BenchError::code`]).
        code: String,
        /// Human-readable detail; never dispatch on this.
        message: String,
        /// Attempts made before giving up (0 when the request never
        /// reached evaluation).
        attempts: u32,
    },
    /// Counters for a [`Request::Stats`].
    Stats {
        /// Echo of the request id.
        id: u64,
        /// The sampled counters.
        stats: ServeStats,
    },
    /// Acknowledges a [`Request::Shutdown`]; the daemon then drains.
    Bye {
        /// Echo of the request id.
        id: u64,
    },
}

impl Response {
    /// Encodes the response as one envelope-framed JSON text.
    pub fn encode(&self) -> String {
        let mut fields = vec![("v".to_string(), WIRE_VERSION.to_value())];
        match self {
            Response::Entry {
                id,
                attempts,
                entry,
            } => {
                fields.push(("id".to_string(), id.to_value()));
                fields.push(("type".to_string(), "entry".to_value()));
                fields.push(("attempts".to_string(), attempts.to_value()));
                fields.push(("entry".to_string(), entry.clone()));
            }
            Response::Error {
                id,
                code,
                message,
                attempts,
            } => {
                fields.push(("id".to_string(), id.to_value()));
                fields.push(("type".to_string(), "error".to_value()));
                fields.push(("code".to_string(), code.to_value()));
                fields.push(("message".to_string(), message.to_value()));
                fields.push(("attempts".to_string(), attempts.to_value()));
            }
            Response::Stats { id, stats } => {
                fields.push(("id".to_string(), id.to_value()));
                fields.push(("type".to_string(), "stats".to_value()));
                fields.push(("stats".to_string(), stats.to_value()));
            }
            Response::Bye { id } => {
                fields.push(("id".to_string(), id.to_value()));
                fields.push(("type".to_string(), "bye".to_value()));
            }
        }
        render(Value::Map(fields))
    }

    /// Decodes one frame's JSON text.
    ///
    /// # Errors
    ///
    /// Same contract as [`Request::decode`].
    pub fn decode(text: &str) -> Result<Self, WireError> {
        let v = parse(text)?;
        check_version(&v)?;
        let id = require_u64(&v, "id")?;
        match require_str(&v, "type")? {
            "entry" => Ok(Response::Entry {
                id,
                attempts: require_u32(&v, "attempts")?,
                entry: v
                    .get("entry")
                    .ok_or_else(|| WireError::Malformed("missing `entry`".into()))?
                    .clone(),
            }),
            "error" => Ok(Response::Error {
                id,
                code: require_str(&v, "code")?.to_string(),
                message: require_str(&v, "message")?.to_string(),
                attempts: require_u32(&v, "attempts")?,
            }),
            "stats" => Ok(Response::Stats {
                id,
                stats: ServeStats::from_value(
                    v.get("stats")
                        .ok_or_else(|| WireError::Malformed("missing `stats`".into()))?,
                )?,
            }),
            "bye" => Ok(Response::Bye { id }),
            other => Err(WireError::Malformed(format!(
                "unknown response type `{other}`"
            ))),
        }
    }
}

/// Decodes an `entry` payload ([`Response::Entry`]) into a typed
/// [`Entry`] — the same decoder the checkpoint journal resumes through.
///
/// # Errors
///
/// A description of the first missing/ill-typed field.
pub fn entry_from_value(v: &Value) -> Result<Entry, String> {
    crate::checkpoint::decode_entry(v)
}

fn render(v: Value) -> String {
    serde_json::to_string(&v).expect("value trees always render")
}

fn parse(text: &str) -> Result<Value, WireError> {
    serde_json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))
}

fn check_version(v: &Value) -> Result<(), WireError> {
    let got = require_u64(v, "v")?;
    if got != WIRE_VERSION {
        return Err(WireError::Version { got });
    }
    Ok(())
}

fn require_u64(v: &Value, key: &str) -> Result<u64, WireError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| WireError::Malformed(format!("missing or ill-typed `{key}`")))
}

fn require_u32(v: &Value, key: &str) -> Result<u32, WireError> {
    u32::try_from(require_u64(v, key)?)
        .map_err(|_| WireError::Malformed(format!("`{key}` exceeds u32")))
}

fn require_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, WireError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::Malformed(format!("missing or ill-typed `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Eval {
                id: 3,
                spec: EvalSpec {
                    app: "pr".into(),
                    matrix: "ca".into(),
                    scale: 256,
                    deadline_ms: Some(30_000),
                    retries: 2,
                },
            },
            Request::Eval {
                id: 4,
                spec: EvalSpec::new("bfs", "gy", 64),
            },
            Request::Stats { id: 9 },
            Request::Shutdown { id: 10 },
        ];
        for req in reqs {
            let text = req.encode();
            assert!(text.starts_with(r#"{"v":1,"#), "{text}");
            assert_eq!(Request::decode(&text).unwrap(), req);
        }
    }

    #[test]
    fn validation_enforces_the_app_row_floor() {
        // ca@1024 generates 18 rows — past the generator's own 16-row
        // floor, but below the SpGEMM family's 32-row minimum.
        let rows = MatrixId::Ca.spec().rows_at_scale(1024);
        assert!(
            (16..32).contains(&rows),
            "fixture drift: ca@1024 = {rows} rows"
        );
        assert!(EvalSpec::new("pr", "ca", 1024).validate().is_ok());
        for app in ["msbfs", "tri", "mcl", "gcnw"] {
            let (code, message) = EvalSpec::new(app, "ca", 1024).validate().unwrap_err();
            assert_eq!(code, "dataset", "{app}");
            assert!(
                message.contains("minimum of 32"),
                "{app} rejection unexplained: {message}"
            );
        }
        // At a scale with enough rows the same apps pass…
        assert!(EvalSpec::new("tri", "ca", 256).validate().is_ok());
        // …and an unknown app is not this check's to reject: run_local
        // answers it with the `unknown-app` family.
        assert!(EvalSpec::new("nope", "ca", 1024).validate().is_ok());
    }

    #[test]
    fn responses_round_trip() {
        let entry = Value::Map(vec![("app".to_string(), "pr".to_value())]);
        let resps = [
            Response::Entry {
                id: 3,
                attempts: 2,
                entry,
            },
            Response::Error {
                id: 4,
                code: codes::OVERLOADED.into(),
                message: "queue at depth cap".into(),
                attempts: 0,
            },
            Response::Stats {
                id: 5,
                stats: ServeStats {
                    served: 10,
                    failed: 1,
                    rejected: 2,
                    queue_len: 3,
                    workers: 4,
                    cache_hits: 100,
                    cache_misses: 20,
                    cache_evictions: 5,
                    cache_resident_bytes: 1 << 20,
                    cache_budget_bytes: 1 << 21,
                },
            },
            Response::Bye { id: 6 },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        let text = r#"{"v":1,"id":7,"type":"eval","app":"pr","matrix":"ca","scale":64,
                       "future_knob":true,"nested":{"x":[1,2,3]}}"#;
        let req = Request::decode(text).unwrap();
        assert_eq!(
            req,
            Request::Eval {
                id: 7,
                spec: EvalSpec::new("pr", "ca", 64),
            }
        );
    }

    #[test]
    fn version_is_checked_before_anything_else() {
        // v2 with an otherwise-garbled body must still be a Version error
        let err = Request::decode(r#"{"v":2,"nonsense":true}"#).unwrap_err();
        assert_eq!(err, WireError::Version { got: 2 });
        assert_eq!(err.code(), codes::VERSION);
        let err = Response::decode(r#"{"v":99,"id":1,"type":"bye"}"#).unwrap_err();
        assert_eq!(err, WireError::Version { got: 99 });
    }

    #[test]
    fn malformed_frames_name_the_problem() {
        for (text, needle) in [
            ("{", ""),
            (r#"{"id":1,"type":"stats"}"#, "`v`"),
            (r#"{"v":1,"type":"stats"}"#, "`id`"),
            (r#"{"v":1,"id":1}"#, "`type`"),
            (r#"{"v":1,"id":1,"type":"teapot"}"#, "teapot"),
            (
                r#"{"v":1,"id":1,"type":"eval","matrix":"ca","scale":64}"#,
                "`app`",
            ),
            (
                r#"{"v":1,"id":1,"type":"eval","app":"pr","matrix":"ca","scale":"big"}"#,
                "`scale`",
            ),
        ] {
            let err = Request::decode(text).unwrap_err();
            assert_eq!(err.code(), codes::MALFORMED, "{text}");
            assert!(err.to_string().contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn spec_key_and_matrix_resolution() {
        let spec = EvalSpec::new("pr", "ca", 64);
        let key = spec.key();
        assert_eq!(key.label(), "pr-ca");
        assert_eq!(key.scale, 64);
        assert_eq!(spec.matrix_id(), Some(sparsepipe_tensor::MatrixId::Ca));
        assert_eq!(EvalSpec::new("pr", "zz", 64).matrix_id(), None);
    }

    #[test]
    fn run_local_rejects_unknown_app_and_mismatched_dataset() {
        let cache = sparsepipe_core::MatrixCache::new();
        let dataset = crate::datasets::DatasetSpec::new(sparsepipe_tensor::MatrixId::Ca, 512)
            .load()
            .unwrap();
        let err = EvalSpec::new("nope", "ca", 512)
            .run_local(&dataset, &cache)
            .unwrap_err();
        assert_eq!(err.code(), "unknown-app");
        let err = EvalSpec::new("pr", "gy", 512)
            .run_local(&dataset, &cache)
            .unwrap_err();
        assert_eq!(err.code(), "dataset");
    }
}
