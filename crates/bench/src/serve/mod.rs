//! `sparsepipe-serve`: a resident evaluation daemon and its wire API.
//!
//! The harness's batch path (`experiments` → [`Sweep`](crate::sweep))
//! pays dataset generation and matrix preprocessing per process. This
//! module keeps those warm in one long-running daemon:
//!
//! * [`proto`] — length-prefixed JSON framing over `TcpStream`;
//! * [`wire`] — the versioned `{"v":1,...}` envelope: [`wire::EvalSpec`]
//!   (the owned, serializable form of an
//!   [`EvalRequest`](crate::sweep::EvalRequest)), responses with stable
//!   error codes, daemon counters;
//! * [`queue`] — bounded admission with per-client round-robin fairness;
//! * [`server`] — the daemon: acceptor, per-connection readers, a worker
//!   pool running the same isolation machinery as the batch executor
//!   over one shared, optionally byte-budgeted
//!   [`MatrixCache`](sparsepipe_core::MatrixCache), graceful drain;
//! * [`client`] — a blocking client, one request in flight;
//! * [`loadgen`] — workload replay + `BENCH_serve.json` reporting;
//! * [`opts`] — CLI parsing for both binaries.
//!
//! The contract that makes the daemon trustworthy: a served entry is
//! **byte-identical** to what a serial in-process evaluation of the
//! same spec produces (`tests/serve_e2e.rs` proves it), because workers
//! run [`wire::EvalSpec::run_local`] — the very
//! [`EvalRequest`](crate::sweep::EvalRequest) path the batch harness
//! uses — not a reimplementation.

pub mod client;
pub mod loadgen;
pub mod opts;
pub mod proto;
pub mod queue;
pub mod server;
pub mod wire;

pub use client::{ClientError, EvalReply, ServeClient};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use queue::{AdmissionQueue, PushError};
pub use server::{ServeConfig, Server};
pub use wire::{EvalSpec, Request, Response, ServeStats, WireError, WIRE_VERSION};
