//! Workload replay against a running daemon.
//!
//! `serve-loadgen` opens N client connections and replays the harness's
//! app × matrix sweep workload `repeat` times each, recording per-request
//! wall-clock latency. Each client starts at a different rotation of the
//! same spec list, so at any moment the daemon sees a mix of points —
//! and because every client ultimately requests the *same* points, a
//! warm [`MatrixCache`](sparsepipe_core::MatrixCache) turns the overlap
//! into hits (the replay's hit-rate lands in `BENCH_serve.json`).

use std::io;
use std::path::Path;
use std::sync::Mutex;

use serde::{Serialize, Value};

use crate::datasets::MatrixSet;
use crate::serve::client::{ClientError, ServeClient};
use crate::serve::wire::{EvalSpec, ServeStats};
use sparsepipe_tensor::MatrixId;

/// What a replay run looks like.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `127.0.0.1:7341`.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Full passes over the workload per client.
    pub repeat: usize,
    /// Dataset scale divisor for every spec.
    pub scale: u64,
    /// Matrix subset the workload sweeps.
    pub set: MatrixSet,
    /// Per-request deadline forwarded in each spec.
    pub deadline_ms: Option<u64>,
    /// Ask the daemon to drain and exit after the replay.
    pub shutdown: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7341".into(),
            clients: 4,
            repeat: 3,
            scale: 256,
            set: MatrixSet::Quick,
            deadline_ms: None,
            shutdown: false,
        }
    }
}

/// The replayed workload: every registered app on every matrix in the
/// set, in deterministic (matrix-major) order.
pub fn workload(set: MatrixSet, scale: u64, deadline_ms: Option<u64>) -> Vec<EvalSpec> {
    let mut specs = Vec::new();
    for &matrix in set.ids() {
        for app in sparsepipe_apps::registry::all() {
            let mut spec = EvalSpec::new(app.name, matrix.code(), scale);
            spec.deadline_ms = deadline_ms;
            specs.push(spec);
        }
    }
    specs
}

/// Nearest-rank percentile of an ascending-sorted sample (`p` in
/// `(0, 100]`); 0 for an empty sample.
pub fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Latency distribution over every successful request, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Worst observed.
    pub max: f64,
}

impl LatencySummary {
    fn from_samples(mut ms: Vec<f64>) -> Self {
        if ms.is_empty() {
            return LatencySummary::default();
        }
        ms.sort_by(f64::total_cmp);
        LatencySummary {
            p50: percentile(&ms, 50.0),
            p95: percentile(&ms, 95.0),
            p99: percentile(&ms, 99.0),
            mean: ms.iter().sum::<f64>() / ms.len() as f64,
            max: *ms.last().expect("non-empty"),
        }
    }
}

impl Serialize for LatencySummary {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("p50".to_string(), self.p50.to_value()),
            ("p95".to_string(), self.p95.to_value()),
            ("p99".to_string(), self.p99.to_value()),
            ("mean".to_string(), self.mean.to_value()),
            ("max".to_string(), self.max.to_value()),
        ])
    }
}

/// Everything a replay measured; serializes as the `BENCH_serve.json`
/// schema (one `serve` section).
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Client connections replaying.
    pub clients: u64,
    /// Requests attempted across all clients.
    pub requests: u64,
    /// Requests answered with an entry.
    pub ok: u64,
    /// Requests that failed (server errors, rejections, transport).
    pub errors: u64,
    /// First few error messages, for humans reading the report.
    pub error_samples: Vec<String>,
    /// Replay wall-clock in seconds.
    pub wall_s: f64,
    /// Successful requests per second of replay wall-clock.
    pub throughput_rps: f64,
    /// Latency distribution of successful requests.
    pub latency_ms: LatencySummary,
    /// Daemon counters sampled after the replay (zeros when the daemon
    /// was unreachable — e.g. it was killed mid-load).
    pub stats: ServeStats,
    /// Whether `stats` is a real post-replay sample.
    pub stats_sampled: bool,
}

impl Serialize for LoadgenReport {
    fn to_value(&self) -> Value {
        let cache = Value::Map(vec![
            ("hits".to_string(), self.stats.cache_hits.to_value()),
            ("misses".to_string(), self.stats.cache_misses.to_value()),
            (
                "evictions".to_string(),
                self.stats.cache_evictions.to_value(),
            ),
            (
                "resident_bytes".to_string(),
                self.stats.cache_resident_bytes.to_value(),
            ),
            (
                "budget_bytes".to_string(),
                self.stats.cache_budget_bytes.to_value(),
            ),
            ("hit_rate".to_string(), self.stats.hit_rate().to_value()),
        ]);
        let server = Value::Map(vec![
            ("served".to_string(), self.stats.served.to_value()),
            ("failed".to_string(), self.stats.failed.to_value()),
            ("rejected".to_string(), self.stats.rejected.to_value()),
            ("workers".to_string(), self.stats.workers.to_value()),
            ("sampled".to_string(), self.stats_sampled.to_value()),
        ]);
        let serve = Value::Map(vec![
            ("clients".to_string(), self.clients.to_value()),
            ("requests".to_string(), self.requests.to_value()),
            ("ok".to_string(), self.ok.to_value()),
            ("errors".to_string(), self.errors.to_value()),
            ("error_samples".to_string(), self.error_samples.to_value()),
            ("wall_s".to_string(), self.wall_s.to_value()),
            ("throughput_rps".to_string(), self.throughput_rps.to_value()),
            ("latency_ms".to_string(), self.latency_ms.to_value()),
            ("matrix_cache".to_string(), cache),
            ("server".to_string(), server),
        ]);
        Value::Map(vec![("serve".to_string(), serve)])
    }
}

impl LoadgenReport {
    /// Writes the report as pretty JSON (the `BENCH_serve.json`
    /// artifact).
    ///
    /// # Errors
    ///
    /// Whatever writing the file reports.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let mut text = serde_json::to_string_pretty(&self.to_value())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        text.push('\n');
        std::fs::write(path, text)
    }
}

#[derive(Default)]
struct ClientTally {
    latencies_ms: Vec<f64>,
    ok: u64,
    errors: u64,
    samples: Vec<String>,
}

const ERROR_SAMPLE_CAP: usize = 5;

fn replay_client(
    cfg: &LoadgenConfig,
    specs: &[EvalSpec],
    client_idx: usize,
) -> io::Result<ClientTally> {
    let mut tally = ClientTally::default();
    let mut client = ServeClient::connect(&cfg.addr)?;
    // rotate each client's starting point so concurrent clients hit a
    // mix of specs rather than marching in lockstep
    let start = (client_idx * specs.len()) / cfg.clients.max(1);
    for _round in 0..cfg.repeat {
        for j in 0..specs.len() {
            let spec = &specs[(start + j) % specs.len()];
            // determinism: allow (host latency telemetry, not simulated time)
            let t0 = std::time::Instant::now();
            match client.eval(spec) {
                Ok(_reply) => {
                    tally.ok += 1;
                    tally.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                Err(e) => {
                    tally.errors += 1;
                    if tally.samples.len() < ERROR_SAMPLE_CAP {
                        tally.samples.push(format!("{}: {e}", spec.key().label()));
                    }
                    if matches!(e, ClientError::Io(_)) {
                        // the connection is gone; the rest of this
                        // client's replay cannot be delivered
                        return Ok(tally);
                    }
                }
            }
        }
    }
    Ok(tally)
}

/// Replays the workload against the daemon and summarizes the run.
///
/// Client-side failures (rejections, evaluation errors, a daemon killed
/// mid-load) are *counted*, not fatal: the report's `errors` field says
/// how the replay went.
///
/// # Errors
///
/// Only an up-front failure to connect any client is an `Err`; once a
/// client is connected its failures land in the report.
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let specs = workload(cfg.set, cfg.scale, cfg.deadline_ms);
    let clients = cfg.clients.max(1);
    let tallies: Mutex<Vec<ClientTally>> = Mutex::new(Vec::new());
    let connect_errors: Mutex<Vec<io::Error>> = Mutex::new(Vec::new());
    // determinism: allow (host latency telemetry, not simulated time)
    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for idx in 0..clients {
            let specs = &specs;
            let tallies = &tallies;
            let connect_errors = &connect_errors;
            scope.spawn(move || match replay_client(cfg, specs, idx) {
                Ok(tally) => tallies.lock().expect("tally lock").push(tally),
                Err(e) => connect_errors.lock().expect("tally lock").push(e),
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    if let Some(e) = connect_errors
        .into_inner()
        .expect("tally lock")
        .into_iter()
        .next()
    {
        return Err(e);
    }
    let tallies = tallies.into_inner().expect("tally lock");
    let mut latencies = Vec::new();
    let mut ok = 0;
    let mut errors = 0;
    let mut error_samples = Vec::new();
    for mut tally in tallies {
        latencies.append(&mut tally.latencies_ms);
        ok += tally.ok;
        errors += tally.errors;
        for s in tally.samples {
            if error_samples.len() < ERROR_SAMPLE_CAP {
                error_samples.push(s);
            }
        }
    }
    let (stats, stats_sampled) = sample_stats(cfg);
    let requests = (clients * cfg.repeat * specs.len()) as u64;
    debug_assert!(ok + errors <= requests);
    Ok(LoadgenReport {
        clients: clients as u64,
        requests,
        ok,
        // a dead connection's undelivered remainder counts as errors
        errors: requests - ok,
        error_samples,
        wall_s,
        throughput_rps: if wall_s > 0.0 {
            ok as f64 / wall_s
        } else {
            0.0
        },
        latency_ms: LatencySummary::from_samples(latencies),
        stats,
        stats_sampled,
    })
}

fn sample_stats(cfg: &LoadgenConfig) -> (ServeStats, bool) {
    let Ok(mut client) = ServeClient::connect(&cfg.addr) else {
        return (ServeStats::default(), false);
    };
    let Ok(stats) = client.stats() else {
        return (ServeStats::default(), false);
    };
    if cfg.shutdown {
        let _ = client.shutdown_server();
    }
    (stats, true)
}

/// The matrix codes a `--matrices` flag accepts (`quick` or `full`).
pub fn parse_set(name: &str) -> Result<MatrixSet, String> {
    match name {
        "quick" => Ok(MatrixSet::Quick),
        "full" => Ok(MatrixSet::Full),
        other => Err(format!("unknown matrix set `{other}` (quick or full)")),
    }
}

/// Sanity: every workload matrix code resolves to a real [`MatrixId`].
pub fn workload_is_resolvable(specs: &[EvalSpec]) -> bool {
    specs.iter().all(|s| {
        MatrixId::ALL.iter().any(|m| m.code() == s.matrix)
            && sparsepipe_apps::registry::by_name(&s.app).is_some()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_covers_apps_by_matrices_deterministically() {
        let specs = workload(MatrixSet::Quick, 256, Some(10_000));
        assert_eq!(specs.len(), 3 * 15, "3 quick matrices x 15 apps");
        assert!(workload_is_resolvable(&specs));
        assert!(specs.iter().all(|s| s.deadline_ms == Some(10_000)));
        assert_eq!(specs, workload(MatrixSet::Quick, 256, Some(10_000)));
        // matrix-major: the first 15 specs share the first quick matrix
        assert!(specs[..15].iter().all(|s| s.matrix == "ca"));
        // every generated spec passes admission (the mxm family's row
        // floor included — scale 256 keeps all quick matrices above it)
        assert!(specs.iter().all(|s| s.validate().is_ok()));
    }

    #[test]
    fn nearest_rank_percentiles() {
        let ms: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&ms, 50.0), 50.0);
        assert_eq!(percentile(&ms, 95.0), 95.0);
        assert_eq!(percentile(&ms, 99.0), 99.0);
        assert_eq!(percentile(&ms, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
        let summary = LatencySummary::from_samples(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(summary.p50, 2.0);
        assert_eq!(summary.max, 4.0);
        assert_eq!(summary.mean, 2.5);
    }

    #[test]
    fn report_serializes_the_bench_schema() {
        let report = LoadgenReport {
            clients: 4,
            requests: 132,
            ok: 130,
            errors: 2,
            error_samples: vec!["pr-ca: server error".into()],
            wall_s: 1.5,
            throughput_rps: 86.7,
            latency_ms: LatencySummary::from_samples(vec![1.0, 2.0, 3.0]),
            stats: ServeStats {
                served: 130,
                cache_hits: 90,
                cache_misses: 30,
                ..ServeStats::default()
            },
            stats_sampled: true,
        };
        let text = serde_json::to_string(&report.to_value()).unwrap();
        for key in [
            r#""serve""#,
            r#""clients""#,
            r#""throughput_rps""#,
            r#""p50""#,
            r#""p95""#,
            r#""p99""#,
            r#""matrix_cache""#,
            r#""hit_rate""#,
            r#""server""#,
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        assert!(text.contains("0.75"), "hit rate 90/120: {text}");
    }

    #[test]
    fn matrix_set_flag_parses() {
        assert_eq!(parse_set("quick").unwrap(), MatrixSet::Quick);
        assert_eq!(parse_set("full").unwrap(), MatrixSet::Full);
        assert!(parse_set("smol").is_err());
    }
}
