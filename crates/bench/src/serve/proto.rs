//! Wire framing for the serve protocol: length-prefixed JSON.
//!
//! Each frame is a 4-byte big-endian payload length followed by that
//! many bytes of UTF-8 JSON (the envelope defined in
//! [`wire`](crate::serve::wire)). The prefix makes message boundaries
//! explicit over a byte stream — no sentinel scanning, no ambiguity
//! with newlines inside JSON strings — and lets the reader reject
//! oversized frames *before* allocating for them.

use std::io::{self, Read, Write};

/// Default per-frame size limit: generous for any `Entry` response at
/// the scales the harness sweeps, small enough that a malformed or
/// hostile length prefix cannot balloon allocation.
pub const MAX_FRAME_DEFAULT: usize = 8 * 1024 * 1024;

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidInput`] when the payload exceeds `u32::MAX`
/// bytes, otherwise whatever the underlying writer reports.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    // One buffered write so concurrent writers serialized by a mutex
    // never interleave a prefix with another frame's payload.
    let mut buf = Vec::with_capacity(4 + bytes.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(bytes);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame, enforcing `max_frame` on the declared length.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames — the normal way a connection ends).
///
/// # Errors
///
/// [`io::ErrorKind::UnexpectedEof`] for a stream torn mid-frame,
/// [`io::ErrorKind::InvalidData`] for an over-limit length or non-UTF-8
/// payload, otherwise whatever the underlying reader reports.
pub fn read_frame<R: Read>(r: &mut R, max_frame: usize) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut len_buf[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame header",
            ));
        }
        got += n;
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {max_frame}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"v":1,"id":7}"#).unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "αβγ").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_DEFAULT).unwrap().as_deref(),
            Some(r#"{"v":1,"id":7}"#)
        );
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_DEFAULT).unwrap().as_deref(),
            Some("")
        );
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_DEFAULT).unwrap().as_deref(),
            Some("αβγ")
        );
        assert!(read_frame(&mut r, MAX_FRAME_DEFAULT).unwrap().is_none());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"whatever");
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn torn_header_and_torn_payload_are_distinguished_from_clean_eof() {
        // two bytes of a header, then EOF
        let err = read_frame(&mut Cursor::new(vec![0u8, 0]), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // full header declaring 10 bytes, only 3 present
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // no bytes at all: clean end of stream
        assert!(read_frame(&mut Cursor::new(Vec::new()), 1024)
            .unwrap()
            .is_none());
    }

    #[test]
    fn non_utf8_payload_is_invalid_data() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
