//! Argument parsing for the `sparsepipe-serve` and `serve-loadgen`
//! binaries (kept in the library so it is unit-testable, like
//! [`cli`](crate::cli) for `experiments`).

use std::path::PathBuf;

use crate::datasets::SourceConfig;
use crate::serve::loadgen::{parse_set, LoadgenConfig};
use crate::serve::proto::MAX_FRAME_DEFAULT;
use crate::serve::server::{ServeConfig, DATASET_SLOTS_DEFAULT};

/// Parsed `sparsepipe-serve` options.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// The daemon's provisioning.
    pub config: ServeConfig,
    /// `--help` was requested.
    pub help: bool,
}

/// Parses `sparsepipe-serve` arguments (without the program name).
///
/// # Errors
///
/// A human-readable message for unknown flags or bad values.
pub fn parse_serve(args: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions {
        config: ServeConfig::default(),
        help: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                opts.config.addr = args
                    .get(i)
                    .ok_or("--addr needs a bind address like 127.0.0.1:7341")?
                    .clone();
            }
            "--workers" => {
                i += 1;
                opts.config.workers = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--workers needs a non-negative integer (0 = all cores)")?;
            }
            "--queue-depth" => {
                i += 1;
                opts.config.queue_depth = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&v: &usize| v > 0)
                    .ok_or("--queue-depth needs a positive integer")?;
            }
            "--cache-bytes" => {
                i += 1;
                opts.config.cache_bytes = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&v: &u64| v > 0)
                        .ok_or("--cache-bytes needs a positive byte budget")?,
                );
            }
            "--max-frame" => {
                i += 1;
                opts.config.max_frame = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&v: &usize| v >= 64)
                    .ok_or("--max-frame needs a byte limit of at least 64")?;
            }
            "--dataset-slots" => {
                i += 1;
                opts.config.dataset_slots = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&v: &usize| v > 0)
                    .ok_or("--dataset-slots needs a positive integer")?;
            }
            "--mtx" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or("--mtx needs a directory of <code>.mtx files")?;
                if opts.config.source != SourceConfig::Synthetic {
                    return Err("--mtx and --slab are exclusive".into());
                }
                opts.config.source = SourceConfig::MatrixMarket(dir.into());
            }
            "--slab" => {
                i += 1;
                let dir = args
                    .get(i)
                    .ok_or("--slab needs a directory of <code>.s<scale>.slab files")?;
                if opts.config.source != SourceConfig::Synthetic {
                    return Err("--mtx and --slab are exclusive".into());
                }
                opts.config.source = SourceConfig::Slab(dir.into());
            }
            "--help" | "-h" => opts.help = true,
            flag => return Err(format!("unknown flag: {flag}")),
        }
        i += 1;
    }
    Ok(opts)
}

/// The `sparsepipe-serve` usage string.
pub fn serve_usage() -> String {
    format!(
        "usage: sparsepipe-serve [--addr HOST:PORT] [--workers N] [--queue-depth N] \
         [--cache-bytes BYTES] [--max-frame BYTES] [--dataset-slots N] \
         [--mtx DIR | --slab DIR]\n\
         defaults: --addr 127.0.0.1:0 (ephemeral; the bound address is printed), \
         --workers 0 (all cores), --queue-depth 64, unbounded cache, \
         --max-frame {MAX_FRAME_DEFAULT}, \
         --dataset-slots {DATASET_SLOTS_DEFAULT} (LRU cap on warm (matrix, scale) datasets), \
         synthetic matrices (--mtx serves MatrixMarket files, --slab serves binary slabs \
         written by `experiments convert`)\n\
         The daemon prints `listening on <addr>` once ready and serves until a wire \
         shutdown request, then drains admitted work and exits."
    )
}

/// Parsed `serve-loadgen` options.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// The replay's shape.
    pub config: LoadgenConfig,
    /// Where to write `BENCH_serve.json`.
    pub out: PathBuf,
    /// `--help` was requested.
    pub help: bool,
}

/// Parses `serve-loadgen` arguments (without the program name).
///
/// # Errors
///
/// A human-readable message for unknown flags or bad values.
pub fn parse_loadgen(args: &[String]) -> Result<LoadgenOptions, String> {
    let mut opts = LoadgenOptions {
        config: LoadgenConfig::default(),
        out: PathBuf::from("BENCH_serve.json"),
        help: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                opts.config.addr = args
                    .get(i)
                    .ok_or("--addr needs the daemon address like 127.0.0.1:7341")?
                    .clone();
            }
            "--clients" => {
                i += 1;
                opts.config.clients = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&v: &usize| v > 0)
                    .ok_or("--clients needs a positive integer")?;
            }
            "--repeat" => {
                i += 1;
                opts.config.repeat = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&v: &usize| v > 0)
                    .ok_or("--repeat needs a positive integer")?;
            }
            "--scale" => {
                i += 1;
                opts.config.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&v: &u64| v > 0)
                    .ok_or("--scale needs a positive integer")?;
            }
            "--matrices" => {
                i += 1;
                opts.config.set =
                    parse_set(args.get(i).ok_or("--matrices needs `quick` or `full`")?)?;
            }
            "--deadline-ms" => {
                i += 1;
                opts.config.deadline_ms = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .ok_or("--deadline-ms needs a millisecond budget")?,
                );
            }
            "--out" => {
                i += 1;
                opts.out = args.get(i).ok_or("--out needs a file path")?.into();
            }
            "--shutdown" => opts.config.shutdown = true,
            "--help" | "-h" => opts.help = true,
            flag => return Err(format!("unknown flag: {flag}")),
        }
        i += 1;
    }
    Ok(opts)
}

/// The `serve-loadgen` usage string.
pub fn loadgen_usage() -> &'static str {
    "usage: serve-loadgen --addr HOST:PORT [--clients N] [--repeat N] [--scale N] \
     [--matrices quick|full] [--deadline-ms N] [--out BENCH_serve.json] [--shutdown]\n\
     Replays the app x matrix workload against a running sparsepipe-serve daemon,\n\
     records p50/p95/p99 latency, throughput, and the daemon's cache hit-rate into\n\
     the --out report, and exits nonzero if any request failed.\n\
     --shutdown asks the daemon to drain and exit after the replay."
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::MatrixSet;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn serve_defaults_and_flags() {
        let d = parse_serve(&args("")).unwrap();
        assert_eq!(d.config.addr, "127.0.0.1:0");
        assert_eq!(d.config.workers, 0);
        assert_eq!(d.config.queue_depth, 64);
        assert_eq!(d.config.cache_bytes, None);
        assert_eq!(d.config.max_frame, MAX_FRAME_DEFAULT);
        assert_eq!(d.config.dataset_slots, DATASET_SLOTS_DEFAULT);
        assert_eq!(d.config.source, SourceConfig::Synthetic);
        assert!(!d.help);
        let o = parse_serve(&args(
            "--addr 0.0.0.0:7341 --workers 3 --queue-depth 16 --cache-bytes 1000000 --max-frame 4096 \
             --dataset-slots 4 --slab /data/slabs",
        ))
        .unwrap();
        assert_eq!(o.config.addr, "0.0.0.0:7341");
        assert_eq!(o.config.workers, 3);
        assert_eq!(o.config.queue_depth, 16);
        assert_eq!(o.config.cache_bytes, Some(1_000_000));
        assert_eq!(o.config.max_frame, 4096);
        assert_eq!(o.config.dataset_slots, 4);
        assert_eq!(o.config.source, SourceConfig::Slab("/data/slabs".into()));
        let m = parse_serve(&args("--mtx /data/mtx")).unwrap();
        assert_eq!(
            m.config.source,
            SourceConfig::MatrixMarket("/data/mtx".into())
        );
        assert!(parse_serve(&args("--help")).unwrap().help);
        assert!(serve_usage().contains("listening on"));
    }

    #[test]
    fn serve_rejects_bad_input() {
        assert!(parse_serve(&args("--addr")).is_err());
        assert!(parse_serve(&args("--workers x")).is_err());
        assert!(parse_serve(&args("--queue-depth 0")).is_err());
        assert!(parse_serve(&args("--cache-bytes 0")).is_err());
        assert!(parse_serve(&args("--max-frame 1")).is_err());
        assert!(parse_serve(&args("--dataset-slots 0")).is_err());
        assert!(parse_serve(&args("--mtx")).is_err());
        assert!(parse_serve(&args("--slab")).is_err());
        assert!(parse_serve(&args("--mtx a --slab b")).is_err());
        assert!(parse_serve(&args("--frobnicate")).is_err());
        assert!(parse_serve(&args("positional")).is_err());
    }

    #[test]
    fn loadgen_defaults_and_flags() {
        let d = parse_loadgen(&args("")).unwrap();
        assert_eq!(d.config.clients, 4);
        assert_eq!(d.config.repeat, 3);
        assert_eq!(d.config.set, MatrixSet::Quick);
        assert_eq!(d.out, PathBuf::from("BENCH_serve.json"));
        assert!(!d.config.shutdown);
        let o = parse_loadgen(&args(
            "--addr 127.0.0.1:9000 --clients 8 --repeat 2 --scale 512 --matrices full \
             --deadline-ms 30000 --out /tmp/serve.json --shutdown",
        ))
        .unwrap();
        assert_eq!(o.config.addr, "127.0.0.1:9000");
        assert_eq!(o.config.clients, 8);
        assert_eq!(o.config.repeat, 2);
        assert_eq!(o.config.scale, 512);
        assert_eq!(o.config.set, MatrixSet::Full);
        assert_eq!(o.config.deadline_ms, Some(30_000));
        assert_eq!(o.out, PathBuf::from("/tmp/serve.json"));
        assert!(o.config.shutdown);
        assert!(loadgen_usage().contains("BENCH_serve.json"));
    }

    #[test]
    fn loadgen_rejects_bad_input() {
        assert!(parse_loadgen(&args("--clients 0")).is_err());
        assert!(parse_loadgen(&args("--repeat 0")).is_err());
        assert!(parse_loadgen(&args("--scale 0")).is_err());
        assert!(parse_loadgen(&args("--matrices smol")).is_err());
        assert!(parse_loadgen(&args("--out")).is_err());
        assert!(parse_loadgen(&args("--deadline-ms x")).is_err());
        assert!(parse_loadgen(&args("wat")).is_err());
    }
}
